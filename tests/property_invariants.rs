//! Property-based tests (proptest) over randomly generated nets: the
//! core invariants every component must satisfy regardless of input.

use buffopt::buffopt::{self as algo3, BuffOptOptions};
use buffopt::{algorithm1, algorithm2, audit, Assignment};
use buffopt_buffers::{BufferLibrary, BufferType};
use buffopt_noise::{metric, NoiseScenario};
use buffopt_sim::referee::{self, RefereeOptions};
use buffopt_tree::{
    elmore, segment, slack, Driver, RoutingTree, SinkSpec, Technology, TreeBuilder,
};
use proptest::prelude::*;

fn single_lib() -> BufferLibrary {
    BufferLibrary::single(BufferType::new("b", 10e-15, 200.0, 20e-12, 0.9))
}

/// Strategy: a random caterpillar tree (trunk with optional teeth) — it
/// covers chains, stars and bushy shapes while staying easy to shrink.
fn arb_net() -> impl Strategy<Value = RoutingTree> {
    (
        2usize..8,                              // trunk segments
        prop::collection::vec(0usize..3, 2..8), // teeth per trunk node
        500.0f64..4_000.0,                      // trunk segment length
        200.0f64..6_000.0,                      // tooth length
        100.0f64..800.0,                        // driver resistance
    )
        .prop_map(|(trunk, teeth, seg_len, tooth_len, rso)| {
            let tech = Technology::global_layer();
            let mut b = TreeBuilder::new(Driver::new(rso, 10e-12));
            let mut prev = b.source();
            let mut sinks = 0;
            for (i, &t) in teeth.iter().take(trunk).enumerate() {
                prev = b.add_internal(prev, tech.wire(seg_len)).expect("trunk");
                for k in 0..t {
                    b.add_sink(
                        prev,
                        tech.wire(tooth_len * (1.0 + 0.3 * k as f64) * (1.0 + i as f64 * 0.1)),
                        SinkSpec::new(15e-15, 1.5e-9, 0.8),
                    )
                    .expect("tooth");
                    sinks += 1;
                }
            }
            if sinks == 0 {
                b.add_sink(
                    prev,
                    tech.wire(tooth_len),
                    SinkSpec::new(15e-15, 1.5e-9, 0.8),
                )
                .expect("fallback sink");
            } else {
                b.add_sink(prev, tech.wire(seg_len), SinkSpec::new(15e-15, 1.5e-9, 0.8))
                    .expect("tip sink");
            }
            b.build().expect("tree")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Devgan metric upper-bounds the transient simulation, always.
    #[test]
    fn metric_bounds_simulation(tree in arb_net(), lambda in 0.1f64..0.9) {
        let s = NoiseScenario::estimation(&tree, lambda, 7.2e9);
        let opts = RefereeOptions { segments_per_wire: 2, steps_per_rise: 50, ..RefereeOptions::default() };
        let sim = referee::net_peak_noise(&tree, &s, &opts).expect("grounded");
        let bound = metric::sink_noise(&tree, &s);
        for (m, b) in sim.iter().zip(&bound) {
            prop_assert!(m.peak <= b.noise * (1.0 + 1e-6) + 1e-12,
                "sim {} exceeds bound {}", m.peak, b.noise);
        }
    }

    /// Algorithm 2 always produces an audit-clean result on these nets,
    /// and never buffers a quiet net.
    #[test]
    fn algorithm2_output_is_clean(tree in arb_net()) {
        let s = NoiseScenario::estimation(&tree, 0.7, 7.2e9);
        let lib = single_lib();
        let sol = algorithm2::avoid_noise(&tree, &s, &lib).expect("fixable");
        let audit = audit::noise(&sol.tree, &sol.scenario, &lib, &sol.assignment).expect("audit");
        prop_assert!(!audit.has_violation(), "worst {}", audit.worst_headroom());
        let before = metric::NoiseReport::analyze(&tree, &s);
        if !before.has_violation() {
            prop_assert_eq!(sol.inserted(), 0, "quiet nets get no buffers");
        }
    }

    /// Wire segmenting changes no total and no Elmore delay.
    #[test]
    fn segmenting_preserves_elmore(tree in arb_net(), max_seg in 150.0f64..2_000.0) {
        let seg = segment::segment_wires(&tree, max_seg).expect("segment");
        prop_assert!((tree.total_capacitance() - seg.tree.total_capacitance()).abs() < 1e-24);
        prop_assert!((tree.total_wire_length() - seg.tree.total_wire_length()).abs() < 1e-6);
        let before = elmore::max_sink_delay(&tree);
        let after = elmore::max_sink_delay(&seg.tree);
        prop_assert!((before - after).abs() / before < 1e-9,
            "Elmore changed: {before} -> {after}");
        let q_before = slack::source_slack(&tree);
        let q_after = slack::source_slack(&seg.tree);
        prop_assert!((q_before - q_after).abs() < 1e-15);
    }

    /// BuffOpt's DP slack always matches the independent delay audit, and
    /// its noise always audits clean.
    #[test]
    fn buffopt_dp_matches_audit(tree in arb_net()) {
        let seg = segment::segment_wires(&tree, 600.0).expect("segment");
        let s = NoiseScenario::estimation(&tree, 0.7, 7.2e9).for_segmented(&seg);
        let lib = single_lib();
        if let Ok(sol) = algo3::optimize(&seg.tree, &s, &lib, &BuffOptOptions::default()) {
            let d = audit::delay(&seg.tree, &lib, &sol.assignment).expect("audit");
            prop_assert!((sol.slack - d.slack).abs() < 1e-13);
            let n = audit::noise(&seg.tree, &s, &lib, &sol.assignment).expect("audit");
            prop_assert!(!n.has_violation());
        }
    }

    /// Allowing more buffers never hurts: the best slack over counts ≤ k
    /// is non-decreasing in k, and the unconstrained optimum equals the
    /// best entry of the per-count table (Lillis indexed lists).
    #[test]
    fn per_count_prefix_best_monotone(tree in arb_net()) {
        use buffopt::delayopt::{self, DelayOptOptions};
        let seg = segment::segment_wires(&tree, 800.0).expect("segment");
        let lib = buffopt_buffers::catalog::ibm_like();
        let per = delayopt::optimize_per_count(&seg.tree, &lib, 5).expect("solves");
        let table_best = per
            .iter()
            .flatten()
            .map(|s| s.slack)
            .fold(f64::NEG_INFINITY, f64::max);
        let free = delayopt::optimize(
            &seg.tree,
            &lib,
            &DelayOptOptions { max_buffers: Some(5), ..Default::default() },
        )
        .expect("solves");
        prop_assert!((free.slack - table_best).abs() < 1e-13,
            "capped optimum {} vs per-count best {}", free.slack, table_best);
        // Prefix best is monotone by construction; spot-check against
        // independent capped runs.
        let mut prefix = f64::NEG_INFINITY;
        for (k, sol) in per.iter().enumerate() {
            if let Some(s) = sol {
                prefix = prefix.max(s.slack);
            }
            let capped = delayopt::optimize(
                &seg.tree,
                &lib,
                &DelayOptOptions { max_buffers: Some(k), ..Default::default() },
            )
            .expect("solves");
            prop_assert!((capped.slack - prefix).abs() < 1e-13,
                "k={k}: capped {} vs prefix best {}", capped.slack, prefix);
        }
    }

    /// Noise slack at the source equals margin minus path noise for every
    /// sink-to-source composition (eq. 12 consistency).
    #[test]
    fn noise_slack_consistency(tree in arb_net(), lambda in 0.1f64..0.9) {
        let s = NoiseScenario::estimation(&tree, lambda, 7.2e9);
        let ns = metric::noise_slack(&tree, &s);
        let report = metric::sink_noise(&tree, &s);
        let currents = metric::downstream_current(&tree, &s);
        let gate = tree.driver().resistance * currents[tree.source().index()];
        // Constraint formulations agree (eq. 11 ⇔ NS(source) ≥ gate noise).
        let by_slack = gate <= ns[tree.source().index()] + 1e-12;
        let by_sinks = !report.iter().any(|sn| sn.noise > sn.margin + 1e-12);
        prop_assert_eq!(by_slack, by_sinks);
    }
}

/// Non-proptest determinism check: Algorithm 1 on a chain equals
/// Algorithm 2 on the same chain for a sweep of lengths (kept out of
/// proptest so failures print the length directly).
#[test]
fn alg1_alg2_agree_on_chain_sweep() {
    let tech = Technology::global_layer();
    let lib = single_lib();
    for i in 1..=20 {
        let len = 2_000.0 * i as f64;
        let mut b = TreeBuilder::new(Driver::new(300.0, 10e-12));
        b.add_sink(b.source(), tech.wire(len), SinkSpec::new(20e-15, 1e-9, 0.8))
            .expect("sink");
        let t = b.build().expect("tree");
        let s = NoiseScenario::estimation(&t, 0.7, 7.2e9);
        let a1 = algorithm1::avoid_noise(&t, &s, &lib).expect("alg1");
        let a2 = algorithm2::avoid_noise(&t, &s, &lib).expect("alg2");
        assert_eq!(a1.inserted(), a2.inserted(), "len {len}");
        let _ = Assignment::empty(&t);
    }
}
