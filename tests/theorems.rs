//! The paper's theorems, checked across crates.

use buffopt::buffopt::{self as algo3, BuffOptOptions};
use buffopt::delayopt::{self, DelayOptOptions};
use buffopt::{algorithm1, algorithm2, audit, Assignment};
use buffopt_buffers::{BufferLibrary, BufferType};
use buffopt_noise::theorem1::{max_unbuffered_length, noise_across, MaxLength};
use buffopt_noise::{metric, NoiseScenario};
use buffopt_tree::{segment, Driver, RoutingTree, SinkSpec, Technology, TreeBuilder};

fn single_lib() -> BufferLibrary {
    BufferLibrary::single(BufferType::new("b", 10e-15, 200.0, 20e-12, 0.9))
}

fn estimation(tree: &RoutingTree) -> NoiseScenario {
    NoiseScenario::estimation(tree, 0.7, 7.2e9)
}

fn two_pin(len: f64, rso: f64, nm: f64) -> RoutingTree {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(rso, 10e-12));
    b.add_sink(b.source(), tech.wire(len), SinkSpec::new(20e-15, 1e-9, nm))
        .expect("sink");
    b.build().expect("tree")
}

/// Theorem 1: a wire exactly at the computed bound meets its constraint
/// with equality, one micron longer violates — verified by the *metric*,
/// not the formula itself.
#[test]
fn theorem1_bound_is_tight_under_the_metric() {
    let tech = Technology::global_layer();
    let rb = 200.0;
    let nm = 0.8;
    let i_per_um = 0.7 * 7.2e9 * tech.capacitance_per_micron;
    let MaxLength::Bounded(lmax) =
        max_unbuffered_length(rb, tech.resistance_per_micron, i_per_um, 0.0, nm)
    else {
        panic!("expected a finite bound");
    };
    for (len, expect_ok) in [(lmax - 1.0, true), (lmax + 1.0, false)] {
        let mut b = TreeBuilder::new(Driver::new(rb, 0.0));
        b.add_sink(b.source(), tech.wire(len), SinkSpec::new(0.0, 1e-9, nm))
            .expect("sink");
        let t = b.build().expect("tree");
        let s = estimation(&t);
        let report = metric::NoiseReport::analyze(&t, &s);
        assert_eq!(
            !report.has_violation(),
            expect_ok,
            "len {len} vs bound {lmax}"
        );
    }
    // And the closed form noise at lmax equals the margin.
    let noise = noise_across(rb, tech.resistance_per_micron, i_per_um, 0.0, lmax);
    assert!((noise - nm).abs() < 1e-9);
}

/// Theorem 2 (constructed counterexample): a net whose delay-optimal
/// buffering still violates noise, while BuffOpt fixes it.
#[test]
fn theorem2_delay_optimal_buffering_can_violate_noise() {
    // Tight sink margin: the Theorem 1 noise spacing near the sink
    // (~850 um at NM = 0.25 V) is far below the delay-optimal spacing on
    // a 6 mm run, so any delay-optimal placement leaves sink noise.
    let t0 = two_pin(6_000.0, 300.0, 0.25);
    let seg = segment::segment_wires(&t0, 500.0).expect("segment");
    let s = estimation(&t0).for_segmented(&seg);
    let t = seg.tree;
    let lib = single_lib();

    let d = delayopt::optimize(&t, &lib, &DelayOptOptions::default()).expect("delay solves");
    let d_noise = audit::noise(&t, &s, &lib, &d.assignment).expect("audit");
    assert!(
        d_noise.has_violation(),
        "delay-optimal solution must violate here (worst headroom {})",
        d_noise.worst_headroom()
    );

    let b = algo3::optimize(&t, &s, &lib, &BuffOptOptions::default()).expect("buffopt solves");
    let b_noise = audit::noise(&t, &s, &lib, &b.assignment).expect("audit");
    assert!(!b_noise.has_violation());
}

/// Theorems 3 & 4: Algorithms 1 and 2 agree on chains, both audit clean,
/// and both match the (finely segmented) DP's minimum buffer count.
#[test]
fn theorem3_4_optimality_cross_check() {
    let tech = Technology::global_layer();
    let lib = single_lib();
    for len in [6_000.0, 14_000.0, 30_000.0] {
        // RAT = +inf: Problem 3 degenerates to pure noise avoidance.
        let mut b = TreeBuilder::new(Driver::new(300.0, 10e-12));
        b.add_sink(
            b.source(),
            tech.wire(len),
            SinkSpec::new(20e-15, f64::INFINITY, 0.8),
        )
        .expect("sink");
        let t = b.build().expect("tree");
        let s = estimation(&t);
        let a1 = algorithm1::avoid_noise(&t, &s, &lib).expect("alg1");
        let a2 = algorithm2::avoid_noise(&t, &s, &lib).expect("alg2");
        assert_eq!(a1.inserted(), a2.inserted(), "len {len}");

        // The discrete DP on a fine grid can use at most one extra buffer.
        let seg = segment::segment_wires(&t, 200.0).expect("segment");
        let s_seg = s.for_segmented(&seg);
        let p3 =
            algo3::min_buffers(&seg.tree, &s_seg, &lib, &BuffOptOptions::default()).expect("dp");
        assert!(p3.buffers >= a1.inserted(), "len {len}: DP beats optimum?");
        assert!(p3.buffers <= a1.inserted() + 1, "len {len}");
    }
}

/// The remark after Theorem 3: with a multi-type library, pure noise
/// avoidance reduces to the smallest-resistance buffer.
#[test]
fn noise_avoidance_library_reduction() {
    let mut lib = single_lib();
    lib.push(BufferType::new("weak", 2e-15, 1500.0, 10e-12, 0.95));
    lib.push(BufferType::new("strong", 40e-15, 90.0, 40e-12, 0.9));
    let reduced = lib.to_noise_avoidance_library();
    assert_eq!(reduced.len(), 1);
    assert!((reduced.iter().next().expect("one").resistance - 90.0).abs() < 1e-9);

    let t = two_pin(20_000.0, 300.0, 0.8);
    let s = estimation(&t);
    let sol = algorithm1::avoid_noise(&t, &s, &lib).expect("alg1");
    assert_eq!(lib.buffer(sol.buffer).name, "strong");
}

/// Theorem 5 premise check: when the buffer's input capacitance exceeds
/// sink capacitance and its margin undercuts the sinks', paper pruning
/// may lose solutions that conservative pruning keeps.
#[test]
fn theorem5_assumptions_matter_for_pruning() {
    let mut lib = BufferLibrary::new();
    lib.push(BufferType::new("fat_fast", 80e-15, 70.0, 8e-12, 0.25));
    lib.push(BufferType::new("lean_clean", 5e-15, 500.0, 30e-12, 0.95));
    let t0 = two_pin(22_000.0, 300.0, 0.8);
    let seg = segment::segment_wires(&t0, 800.0).expect("segment");
    let s = estimation(&t0).for_segmented(&seg);
    let t = seg.tree;
    let conservative = algo3::optimize(
        &t,
        &s,
        &lib,
        &BuffOptOptions {
            conservative_pruning: true,
            ..BuffOptOptions::default()
        },
    )
    .expect("conservative pruning always finds the fix when one exists");
    assert!(!audit::noise(&t, &s, &lib, &conservative.assignment)
        .expect("audit")
        .has_violation());
    // Paper pruning either fails or is no better.
    if let Ok(paper) = algo3::optimize(&t, &s, &lib, &BuffOptOptions::default()) {
        assert!(paper.slack <= conservative.slack + 1e-15);
    }
}

/// Algorithm 1's Step 5: the source fix only triggers when the driver is
/// weaker than the buffer (`Rso > Rb`), as the paper notes.
#[test]
fn source_fix_only_for_weak_drivers() {
    let lib = single_lib(); // Rb = 200
                            // Strong driver (Rso < Rb): never needs the below-source buffer.
    let t = two_pin(2_500.0, 100.0, 0.8);
    let s = estimation(&t);
    let report = metric::NoiseReport::analyze(&t, &s);
    if !report.has_violation() {
        let sol = algorithm1::avoid_noise(&t, &s, &lib).expect("alg1");
        assert_eq!(sol.inserted(), 0);
    }
    // Weak driver on the same wire: violation appears and is fixed with a
    // buffer adjacent to the source.
    let t2 = two_pin(2_500.0, 5_000.0, 0.8);
    let s2 = estimation(&t2);
    assert!(metric::NoiseReport::analyze(&t2, &s2).has_violation());
    let sol2 = algorithm1::avoid_noise(&t2, &s2, &lib).expect("alg1");
    assert!(sol2.inserted() >= 1);
    assert!(
        !audit::noise(&sol2.tree, &sol2.scenario, &lib, &sol2.assignment)
            .expect("audit")
            .has_violation()
    );
}

/// Footnote 5's analogy table: the noise recursion is structurally the
/// Elmore recursion with (C, RAT, q) ↦ (I, NM, NS).
#[test]
fn metric_is_isomorphic_to_elmore() {
    use buffopt_tree::{elmore, slack};
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(250.0, 0.0));
    let j = b.add_internal(b.source(), tech.wire(1_000.0)).expect("j");
    b.add_sink(j, tech.wire(700.0), SinkSpec::new(10e-15, 1e-9, 0.8))
        .expect("s1");
    b.add_sink(j, tech.wire(900.0), SinkSpec::new(14e-15, 2e-9, 0.7))
        .expect("s2");
    let t = b.build().expect("tree");

    // Scale factor between the two domains: make currents numerically
    // equal to capacitances (factor × C_w = C_w ⇒ factor = 1) and compare
    // the recursions with matched boundary conditions.
    let mut s = NoiseScenario::quiet(&t);
    for v in t.node_ids() {
        if t.parent(v).is_some() {
            s.set_factor(v, 1.0);
        }
    }
    let currents = metric::downstream_current(&t, &s);
    let caps = elmore::downstream_capacitance(&t);
    for v in t.node_ids() {
        // I(v) = C(v) − (pin caps below v): currents exclude pins.
        let pins: f64 = t
            .downstream_sinks(v)
            .iter()
            .map(|&sk| t.sink_spec(sk).expect("sink").capacitance)
            .sum();
        assert!(
            (currents[v.index()] - (caps[v.index()] - pins)).abs() < 1e-24,
            "current/cap mismatch at {v}"
        );
    }
    // And with RAT := NM and pins zeroed the slack recursions coincide.
    let mut b2 = TreeBuilder::new(Driver::new(250.0, 0.0));
    let j2 = b2.add_internal(b2.source(), tech.wire(1_000.0)).expect("j");
    b2.add_sink(j2, tech.wire(700.0), SinkSpec::new(0.0, 0.8, 0.8))
        .expect("s1");
    b2.add_sink(j2, tech.wire(900.0), SinkSpec::new(0.0, 0.7, 0.7))
        .expect("s2");
    let t2 = b2.build().expect("tree");
    let mut s2 = NoiseScenario::quiet(&t2);
    for v in t2.node_ids() {
        if t2.parent(v).is_some() {
            s2.set_factor(v, 1.0);
        }
    }
    let ns = metric::noise_slack(&t2, &s2);
    let q = slack::timing_slack(&t2);
    for v in t2.node_ids() {
        assert!(
            (ns[v.index()] - q[v.index()]).abs() < 1e-15,
            "slack isomorphism broken at {v}: NS {} vs q {}",
            ns[v.index()],
            q[v.index()]
        );
    }
}

/// Buffers must not be placed at infeasible sites in any optimizer.
#[test]
fn infeasible_sites_are_respected() {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(300.0, 10e-12));
    let mut prev = b.source();
    let mut blocked = Vec::new();
    for i in 0..16 {
        prev = if i % 2 == 0 {
            let n = b
                .add_infeasible_internal(prev, tech.wire(800.0))
                .expect("blocked");
            blocked.push(n);
            n
        } else {
            b.add_internal(prev, tech.wire(800.0)).expect("open")
        };
    }
    b.add_sink(prev, tech.wire(800.0), SinkSpec::new(20e-15, 2.5e-9, 0.8))
        .expect("sink");
    let t = b.build().expect("tree");
    let s = estimation(&t);
    let lib = single_lib();
    let sol = algo3::min_buffers(&t, &s, &lib, &BuffOptOptions::default()).expect("solves");
    for n in blocked {
        assert!(
            sol.assignment.buffer_at(n).is_none(),
            "buffer at blocked {n}"
        );
    }
    assert!(!audit::noise(&t, &s, &lib, &sol.assignment)
        .expect("audit")
        .has_violation());
    let _ = Assignment::empty(&t);
}
