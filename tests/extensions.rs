//! Exhaustive verification of the beyond-the-paper extensions: polarity
//! tracking, the minimum-cost objective, and simultaneous wire sizing.
//! Each DP is checked against brute-force enumeration on small nets.

use buffopt::buffopt::{self as algo3, BuffOptOptions};
use buffopt::wiresize::{self, WireSizeOptions};
use buffopt::{audit, Assignment};
use buffopt_buffers::{BufferId, BufferLibrary, BufferType};
use buffopt_noise::NoiseScenario;
use buffopt_tree::{segment, Driver, NodeId, RoutingTree, SinkSpec, Technology, TreeBuilder};

fn small_net(len: f64, pieces: usize, rat: f64) -> RoutingTree {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(300.0, 10e-12));
    b.add_sink(b.source(), tech.wire(len), SinkSpec::new(20e-15, rat, 0.8))
        .expect("sink");
    segment::segment_uniform(&b.build().expect("tree"), pieces)
        .expect("segment")
        .tree
}

fn estimation(t: &RoutingTree) -> NoiseScenario {
    NoiseScenario::estimation(t, 0.7, 7.2e9)
}

fn sites(t: &RoutingTree) -> Vec<NodeId> {
    t.node_ids()
        .filter(|&v| t.node(v).kind.is_feasible_site())
        .collect()
}

/// Enumerate all assignments over `sites` with `choices` buffer options
/// (0 = none, i>0 = buffer i−1), calling `f` for each.
fn for_all_assignments(
    t: &RoutingTree,
    sites: &[NodeId],
    choices: usize,
    mut f: impl FnMut(&Assignment),
) {
    let total = (choices + 1).pow(sites.len() as u32);
    for mut code in 0..total {
        let mut a = Assignment::empty(t);
        for &site in sites {
            let pick = code % (choices + 1);
            code /= choices + 1;
            if pick > 0 {
                a.insert(site, BufferId::from_index(pick - 1));
            }
        }
        f(&a);
    }
}

#[test]
fn polarity_dp_matches_exhaustive() {
    // Library: one inverter, one buffer. Exhaustive search over all
    // assignments, keeping only polarity-legal + noise-clean ones.
    let mut lib = BufferLibrary::new();
    lib.push(BufferType::new("inv", 6e-15, 280.0, 15e-12, 0.9).inverting());
    lib.push(BufferType::new("buf", 8e-15, 320.0, 35e-12, 0.9));
    let t = small_net(6_000.0, 5, 1.5e-9);
    let s = estimation(&t);
    let site_list = sites(&t);
    assert!(site_list.len() <= 6);

    let mut best = f64::NEG_INFINITY;
    for_all_assignments(&t, &site_list, lib.len(), |a| {
        if !audit::polarity_legal(&t, &lib, a) {
            return;
        }
        if audit::noise(&t, &s, &lib, a)
            .expect("audit")
            .has_violation()
        {
            return;
        }
        best = best.max(audit::delay(&t, &lib, a).expect("audit").slack);
    });
    assert!(best > f64::NEG_INFINITY, "a legal assignment exists");

    let sol = algo3::optimize(
        &t,
        &s,
        &lib,
        &BuffOptOptions {
            polarity_aware: true,
            conservative_pruning: true, // exactness for the comparison
            ..BuffOptOptions::default()
        },
    )
    .expect("solves");
    assert!(
        (sol.slack - best).abs() < 1e-14,
        "DP {} vs exhaustive {}",
        sol.slack,
        best
    );
    assert!(audit::polarity_legal(&t, &lib, &sol.assignment));
}

#[test]
fn min_cost_matches_exhaustive() {
    let mut lib = BufferLibrary::new();
    lib.push(BufferType::new("small", 5e-15, 600.0, 25e-12, 0.9).with_cost(1.0));
    lib.push(BufferType::new("big", 20e-15, 150.0, 35e-12, 0.9).with_cost(4.0));
    let t = small_net(7_000.0, 5, 1.5e-9);
    let s = estimation(&t);
    let site_list = sites(&t);

    let mut best_cost = f64::INFINITY;
    for_all_assignments(&t, &site_list, lib.len(), |a| {
        if audit::noise(&t, &s, &lib, a)
            .expect("audit")
            .has_violation()
        {
            return;
        }
        if audit::delay(&t, &lib, a).expect("audit").slack < 0.0 {
            return;
        }
        best_cost = best_cost.min(a.total_cost(&lib));
    });
    assert!(best_cost < f64::INFINITY, "a feasible assignment exists");

    let sol = algo3::min_cost(
        &t,
        &s,
        &lib,
        &BuffOptOptions {
            conservative_pruning: true,
            ..BuffOptOptions::default()
        },
    )
    .expect("solves");
    assert!(
        (sol.cost - best_cost).abs() < 1e-9,
        "DP cost {} vs exhaustive {}",
        sol.cost,
        best_cost
    );
    assert!(sol.slack >= 0.0);
}

#[test]
fn wiresize_dp_matches_exhaustive() {
    // Tiny instance: 3 segments × widths {1, 2} × buffer/no-buffer at 2
    // sites, exhaustive over everything.
    let lib = BufferLibrary::single(BufferType::new("b", 10e-15, 250.0, 20e-12, 0.9));
    let t = small_net(5_000.0, 3, 1.2e-9);
    let s0 = estimation(&t);
    let site_list = sites(&t);
    let widths = [1.0, 2.0];
    let alpha = 0.6;

    // Every node with a parent wire can pick a width.
    let wire_nodes: Vec<NodeId> = t.node_ids().filter(|&v| t.parent(v).is_some()).collect();
    let mut best = f64::NEG_INFINITY;
    let combos = widths.len().pow(wire_nodes.len() as u32);
    for code in 0..combos {
        let mut c = code;
        let mut table = vec![1.0; t.len()];
        for &v in &wire_nodes {
            table[v.index()] = widths[c % widths.len()];
            c /= widths.len();
        }
        let resized = wiresize::resize_tree(&t, &table, alpha);
        let mut s1 = NoiseScenario::quiet(&resized);
        for v in resized.node_ids() {
            s1.set_factor(v, s0.factor(v));
        }
        for_all_assignments(&resized, &site_list, lib.len(), |a| {
            if audit::noise(&resized, &s1, &lib, a)
                .expect("audit")
                .has_violation()
            {
                return;
            }
            best = best.max(audit::delay(&resized, &lib, a).expect("audit").slack);
        });
    }
    assert!(best > f64::NEG_INFINITY);

    let sol = wiresize::optimize(
        &t,
        &s0,
        &lib,
        &WireSizeOptions {
            widths: widths.to_vec(),
            fringe_fraction: alpha,
            ..WireSizeOptions::default()
        },
    )
    .expect("solves");
    assert!(
        (sol.slack - best).abs() < 1e-14,
        "DP {} vs exhaustive {}",
        sol.slack,
        best
    );
}

#[test]
fn polarity_strictness_ordering() {
    // free ≥ polarity-aware ≥ non-inverting-only: each is a restriction
    // of the previous feasible set... (the last uses 6 of 11 buffers, so
    // only the first inequality is a theorem; check both directions that
    // do hold).
    use buffopt_buffers::catalog;
    let t = small_net(15_000.0, 12, 2e-9);
    let s = estimation(&t);
    let lib = catalog::ibm_like();
    let free = algo3::optimize(&t, &s, &lib, &BuffOptOptions::default()).expect("free");
    let polar = algo3::optimize(
        &t,
        &s,
        &lib,
        &BuffOptOptions {
            polarity_aware: true,
            ..BuffOptOptions::default()
        },
    )
    .expect("polar");
    assert!(polar.slack <= free.slack + 1e-15);
    // Non-inverting-only is a legal polarity-aware solution space, so the
    // polarity-aware optimum is at least as good.
    let ni = algo3::optimize(&t, &s, &lib.non_inverting(), &BuffOptOptions::default())
        .expect("non-inverting");
    assert!(polar.slack >= ni.slack - 1e-13);
}

#[test]
fn cost_and_count_objectives_are_consistent() {
    use buffopt_buffers::catalog;
    let t = small_net(18_000.0, 14, 3e-9);
    let s = estimation(&t);
    let lib = catalog::ibm_like();
    let by_count = algo3::min_buffers(&t, &s, &lib, &BuffOptOptions::default()).expect("count");
    let by_cost = algo3::min_cost(&t, &s, &lib, &BuffOptOptions::default()).expect("cost");
    // Cost optimum may use more (smaller) buffers but never costs more.
    assert!(by_cost.cost <= by_count.cost + 1e-9);
    for sol in [&by_count, &by_cost] {
        assert!(!audit::noise(&t, &s, &lib, &sol.assignment)
            .expect("audit")
            .has_violation());
        assert!(sol.slack >= 0.0);
    }
}
