//! Differential suite: the kernel-backed analyses versus inline copies
//! of the pre-kernel (seed) implementations.
//!
//! The analysis-kernel refactor re-expressed five hand-rolled sweeps —
//! Elmore loads/arrivals, Devgan currents/noise-slack/sink-noise, the
//! buffered-tree audit, and the moment passes — as [`AdditiveMetric`]
//! instances over one propagation engine. The contract is *bitwise*
//! output equality: the kernel fixes the same floating-point operation
//! order the seed code used. This file carries verbatim copies of the
//! seed computations and demands `to_bits()` equality over the `data/`
//! corpus (segmented at two granularities), hand-built nets, and
//! proptest-generated random trees, under empty and non-trivial buffer
//! assignments.
//!
//! One documented exception: the seed *moment* down-pass folded the node
//! weight first (`acc = w[v]; acc += down[c]`), while the kernel folds
//! children first and adds the injection last. On chains the two orders
//! are identical (bitwise asserted); at branch nodes the single
//! reassociated addition can differ by ≤ 1 ulp, so branch trees assert
//! relative agreement at 1e-12 instead.

use buffopt::audit;
use buffopt::Assignment;
use buffopt_buffers::{catalog, BufferId, BufferLibrary};
use buffopt_netlist::parse;
use buffopt_noise::{metric, NoiseScenario};
use buffopt_sim::moments::moments;
use buffopt_tree::{
    elmore, segment, Driver, NodeId, RoutingTree, SinkSpec, Technology, TreeBuilder,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Inline seed implementations (pre-kernel, copied from the last commit
// before the refactor).
// ---------------------------------------------------------------------

fn seed_downstream_capacitance(tree: &RoutingTree) -> Vec<f64> {
    let mut cap = vec![0.0; tree.len()];
    for v in tree.postorder() {
        let own = tree.sink_spec(v).map_or(0.0, |s| s.capacitance);
        let below: f64 = tree
            .children(v)
            .iter()
            .map(|&c| {
                let w = tree.parent_wire(c).expect("non-source child has a wire");
                w.capacitance + cap[c.index()]
            })
            .sum();
        cap[v.index()] = own + below;
    }
    cap
}

fn seed_arrival_times(tree: &RoutingTree) -> Vec<f64> {
    let cap = seed_downstream_capacitance(tree);
    let mut t = vec![0.0; tree.len()];
    let d = tree.driver();
    for v in tree.preorder() {
        if v == tree.source() {
            t[v.index()] = d.intrinsic_delay + d.resistance * cap[v.index()];
        } else {
            let p = tree.parent(v).expect("non-source has parent");
            let w = tree.parent_wire(v).expect("non-source has wire");
            t[v.index()] = t[p.index()] + w.resistance * (w.capacitance / 2.0 + cap[v.index()]);
        }
    }
    t
}

fn seed_downstream_current(tree: &RoutingTree, scenario: &NoiseScenario) -> Vec<f64> {
    let mut current = vec![0.0; tree.len()];
    for v in tree.postorder() {
        let below: f64 = tree
            .children(v)
            .iter()
            .map(|&c| scenario.wire_current(tree, c) + current[c.index()])
            .sum();
        current[v.index()] = below;
    }
    current
}

fn seed_wire_noise(
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    v: NodeId,
    currents: &[f64],
) -> f64 {
    match tree.parent_wire(v) {
        Some(w) => {
            let i_w = scenario.wire_current(tree, v);
            w.resistance * (i_w / 2.0 + currents[v.index()])
        }
        None => 0.0,
    }
}

fn seed_noise_slack(tree: &RoutingTree, scenario: &NoiseScenario) -> Vec<f64> {
    let currents = seed_downstream_current(tree, scenario);
    let mut ns = vec![f64::INFINITY; tree.len()];
    for v in tree.postorder() {
        if let Some(s) = tree.sink_spec(v) {
            ns[v.index()] = s.noise_margin;
        } else {
            let mut best = f64::INFINITY;
            for &c in tree.children(v) {
                let w_noise = seed_wire_noise(tree, scenario, c, &currents);
                best = best.min(ns[c.index()] - w_noise);
            }
            ns[v.index()] = best;
        }
    }
    ns
}

/// Seed sink noise from a restoring gate at `u` (eq. 9).
fn seed_sink_noise_from(
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    u: NodeId,
    gate_resistance: f64,
) -> Vec<(NodeId, f64)> {
    let currents = seed_downstream_current(tree, scenario);
    let gate_term = gate_resistance * currents[u.index()];
    let mut acc = vec![f64::NAN; tree.len()];
    acc[u.index()] = gate_term;
    let mut out = Vec::new();
    let mut stack = vec![u];
    while let Some(v) = stack.pop() {
        if v != u {
            let p = tree.parent(v).expect("below u");
            acc[v.index()] = acc[p.index()] + seed_wire_noise(tree, scenario, v, &currents);
        }
        if tree.sink_spec(v).is_some() {
            out.push((v, acc[v.index()]));
        }
        for &c in tree.children(v) {
            stack.push(c);
        }
    }
    out.sort_by_key(|&(sn, _)| sn);
    out
}

fn seed_buffered_loads(
    tree: &RoutingTree,
    lib: &BufferLibrary,
    assignment: &Assignment,
) -> (Vec<f64>, Vec<f64>) {
    let mut below = vec![0.0; tree.len()];
    let mut presented = vec![0.0; tree.len()];
    for v in tree.postorder() {
        let own = tree.sink_spec(v).map_or(0.0, |s| s.capacitance);
        let sum: f64 = tree
            .children(v)
            .iter()
            .map(|&c| {
                let w = tree.parent_wire(c).expect("child has wire");
                w.capacitance + presented[c.index()]
            })
            .sum();
        below[v.index()] = own + sum;
        presented[v.index()] = match assignment.buffer_at(v) {
            Some(b) => lib.buffer(b).input_capacitance,
            None => below[v.index()],
        };
    }
    (below, presented)
}

fn seed_buffered_currents(
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    assignment: &Assignment,
) -> (Vec<f64>, Vec<f64>) {
    let mut below = vec![0.0; tree.len()];
    let mut reported = vec![0.0; tree.len()];
    for v in tree.postorder() {
        let sum: f64 = tree
            .children(v)
            .iter()
            .map(|&c| scenario.wire_current(tree, c) + reported[c.index()])
            .sum();
        below[v.index()] = sum;
        reported[v.index()] = if assignment.buffer_at(v).is_some() {
            0.0
        } else {
            sum
        };
    }
    (below, reported)
}

/// Seed buffered-delay audit: arrival table and worst slack.
fn seed_audit_delay(
    tree: &RoutingTree,
    lib: &BufferLibrary,
    assignment: &Assignment,
) -> (Vec<f64>, f64) {
    let (below, presented) = seed_buffered_loads(tree, lib, assignment);
    let mut arrival = vec![0.0; tree.len()];
    let d = tree.driver();
    for v in tree.preorder() {
        if v == tree.source() {
            arrival[v.index()] = d.intrinsic_delay + d.resistance * below[v.index()];
            continue;
        }
        let p = tree.parent(v).expect("non-source");
        let w = tree.parent_wire(v).expect("non-source");
        let mut t =
            arrival[p.index()] + w.resistance * (w.capacitance / 2.0 + presented[v.index()]);
        if let Some(b) = assignment.buffer_at(v) {
            let buf = lib.buffer(b);
            t += buf.delay(below[v.index()]);
        }
        arrival[v.index()] = t;
    }
    let slack = tree
        .sinks()
        .iter()
        .map(|&s| tree.sink_spec(s).expect("is sink").required_arrival_time - arrival[s.index()])
        .fold(f64::INFINITY, f64::min);
    (arrival, slack)
}

/// Seed buffered-noise audit: sorted `(node, noise, margin, is_buffer)`.
fn seed_audit_noise(
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    lib: &BufferLibrary,
    assignment: &Assignment,
) -> Vec<(NodeId, f64, f64, bool)> {
    let (below, reported) = seed_buffered_currents(tree, scenario, assignment);
    let mut checks = Vec::new();
    let mut gates: Vec<(NodeId, f64)> = vec![(tree.source(), tree.driver().resistance)];
    for (v, b) in assignment.iter() {
        gates.push((v, lib.buffer(b).resistance));
    }
    for (root, gate_r) in gates {
        let gate_term = gate_r * below[root.index()];
        let mut stack = vec![(root, gate_term)];
        while let Some((v, acc)) = stack.pop() {
            for &c in tree.children(v) {
                let w = tree.parent_wire(c).expect("child has wire");
                let i_w = scenario.wire_current(tree, c);
                let acc_c = acc + w.resistance * (i_w / 2.0 + reported[c.index()]);
                if let Some(b) = assignment.buffer_at(c) {
                    checks.push((c, acc_c, lib.buffer(b).noise_margin, true));
                } else if let Some(spec) = tree.sink_spec(c) {
                    checks.push((c, acc_c, spec.noise_margin, false));
                } else {
                    stack.push((c, acc_c));
                }
            }
        }
    }
    checks.sort_by_key(|c| c.0);
    checks
}

/// Seed moment pass: `acc = w[v]; acc += down[c]` fold order.
fn seed_moment_pass(tree: &RoutingTree, weights: &[f64]) -> Vec<f64> {
    let mut down = vec![0.0; tree.len()];
    for v in tree.postorder() {
        let mut acc = weights[v.index()];
        for &c in tree.children(v) {
            acc += down[c.index()];
        }
        down[v.index()] = acc;
    }
    let rso = tree.driver().resistance;
    let mut s = vec![0.0; tree.len()];
    for v in tree.preorder() {
        if v == tree.source() {
            s[v.index()] = rso * down[tree.source().index()];
        } else {
            let p = tree.parent(v).expect("non-source");
            let w = tree.parent_wire(v).expect("non-source");
            s[v.index()] = s[p.index()] + w.resistance * down[v.index()];
        }
    }
    s
}

fn seed_moments(tree: &RoutingTree) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut cap = vec![0.0; tree.len()];
    for v in tree.node_ids() {
        if let Some(spec) = tree.sink_spec(v) {
            cap[v.index()] += spec.capacitance;
        }
        if let Some(w) = tree.parent_wire(v) {
            cap[v.index()] += w.capacitance / 2.0;
            let p = tree.parent(v).expect("has wire so has parent");
            cap[p.index()] += w.capacitance / 2.0;
        }
    }
    let m1 = seed_moment_pass(tree, &cap);
    let w2: Vec<f64> = cap.iter().zip(&m1).map(|(c, m)| c * m).collect();
    let m2 = seed_moment_pass(tree, &w2);
    let w3: Vec<f64> = cap.iter().zip(&m2).map(|(c, m)| c * m).collect();
    let m3 = seed_moment_pass(tree, &w3);
    (m1, m2, m3)
}

// ---------------------------------------------------------------------
// Comparison driver
// ---------------------------------------------------------------------

fn assert_bitwise(seed: &[f64], kernel: &[f64], what: &str, tag: &str) {
    assert_eq!(seed.len(), kernel.len(), "{tag}: {what} length");
    for (i, (s, k)) in seed.iter().zip(kernel).enumerate() {
        assert_eq!(
            s.to_bits(),
            k.to_bits(),
            "{tag}: {what}[{i}] seed {s:.17e} vs kernel {k:.17e}"
        );
    }
}

/// Every node has at most one child: the moment fold order is identical.
fn is_chain(tree: &RoutingTree) -> bool {
    tree.node_ids().all(|v| tree.children(v).len() <= 1)
}

/// Buffer assignments to audit under: empty, plus every-`stride`-th
/// feasible site with cycling buffer types.
fn assignments_for(tree: &RoutingTree, lib: &BufferLibrary) -> Vec<Assignment> {
    let mut out = vec![Assignment::empty(tree)];
    let sites: Vec<NodeId> = tree
        .node_ids()
        .filter(|&v| tree.node(v).kind.is_feasible_site())
        .collect();
    for stride in [2usize, 3] {
        let mut a = Assignment::empty(tree);
        for (i, &v) in sites.iter().step_by(stride).enumerate() {
            a.insert(v, BufferId::from_index(i % lib.len()));
        }
        if a.count() > 0 {
            out.push(a);
        }
    }
    out
}

/// Runs every seed-vs-kernel comparison over one net.
fn check_net(tree: &RoutingTree, scenario: &NoiseScenario, tag: &str) {
    let lib = catalog::ibm_like();

    // Elmore: loads and arrivals.
    assert_bitwise(
        &seed_downstream_capacitance(tree),
        &elmore::downstream_capacitance(tree),
        "downstream_capacitance",
        tag,
    );
    assert_bitwise(
        &seed_arrival_times(tree),
        &elmore::arrival_times(tree),
        "arrival_times",
        tag,
    );

    // Devgan: currents, per-wire noise, noise slack, sink noise.
    let seed_cur = seed_downstream_current(tree, scenario);
    let cur = metric::downstream_current(tree, scenario);
    assert_bitwise(&seed_cur, &cur, "downstream_current", tag);
    for v in tree.node_ids() {
        let s = seed_wire_noise(tree, scenario, v, &seed_cur);
        let k = metric::wire_noise(tree, scenario, v, &cur).expect("tables match");
        assert_eq!(s.to_bits(), k.to_bits(), "{tag}: wire_noise[{v:?}]");
    }
    assert_bitwise(
        &seed_noise_slack(tree, scenario),
        &metric::noise_slack(tree, scenario),
        "noise_slack",
        tag,
    );
    let seed_sn = seed_sink_noise_from(tree, scenario, tree.source(), tree.driver().resistance);
    let sn = metric::sink_noise(tree, scenario);
    assert_eq!(seed_sn.len(), sn.len(), "{tag}: sink_noise count");
    for (s, k) in seed_sn.iter().zip(&sn) {
        assert_eq!(s.0, k.sink, "{tag}: sink_noise node");
        assert_eq!(s.1.to_bits(), k.noise.to_bits(), "{tag}: sink_noise value");
    }

    // Buffered audit under several assignments.
    for (ai, assignment) in assignments_for(tree, &lib).iter().enumerate() {
        let atag = format!("{tag}/assignment{ai}");
        let (sb, sp) = seed_buffered_loads(tree, &lib, assignment);
        let (kb, kp) = audit::buffered_loads(tree, &lib, assignment);
        assert_bitwise(&sb, &kb, "buffered_loads.below", &atag);
        assert_bitwise(&sp, &kp, "buffered_loads.presented", &atag);

        let (scb, scr) = seed_buffered_currents(tree, scenario, assignment);
        let (kcb, kcr) = audit::buffered_currents(tree, scenario, assignment);
        assert_bitwise(&scb, &kcb, "buffered_currents.below", &atag);
        assert_bitwise(&scr, &kcr, "buffered_currents.reported", &atag);

        let (sa, ss) = seed_audit_delay(tree, &lib, assignment);
        let da = audit::delay(tree, &lib, assignment).expect("assignment matches");
        assert_bitwise(&sa, &da.arrival, "audit arrival", &atag);
        assert_eq!(ss.to_bits(), da.slack.to_bits(), "{atag}: audit slack");

        let s_checks = seed_audit_noise(tree, scenario, &lib, assignment);
        let na = audit::noise(tree, scenario, &lib, assignment).expect("matches");
        assert_eq!(s_checks.len(), na.checks.len(), "{atag}: noise check count");
        for (s, k) in s_checks.iter().zip(&na.checks) {
            assert_eq!(s.0, k.node, "{atag}: check node");
            assert_eq!(s.1.to_bits(), k.noise.to_bits(), "{atag}: check noise");
            assert_eq!(s.2.to_bits(), k.margin.to_bits(), "{atag}: check margin");
            assert_eq!(s.3, k.is_buffer_input, "{atag}: check kind");
        }
    }

    // Moments: bitwise on chains, ≤1e-12 relative at branch nodes (the
    // kernel reassociates one addition per branch node).
    let (sm1, sm2, sm3) = seed_moments(tree);
    let m = moments(tree);
    if is_chain(tree) {
        assert_bitwise(&sm1, &m.m1, "m1", tag);
        assert_bitwise(&sm2, &m.m2, "m2", tag);
        assert_bitwise(&sm3, &m.m3, "m3", tag);
    } else {
        for (what, seed, kernel) in [
            ("m1", &sm1, &m.m1),
            ("m2", &sm2, &m.m2),
            ("m3", &sm3, &m.m3),
        ] {
            for (i, (s, k)) in seed.iter().zip(kernel).enumerate() {
                let scale = s.abs().max(k.abs()).max(1e-300);
                assert!(
                    ((s - k) / scale).abs() <= 1e-12,
                    "{tag}: {what}[{i}] seed {s:.17e} vs kernel {k:.17e}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Inputs
// ---------------------------------------------------------------------

#[test]
fn corpus_nets_match_seed_bitwise() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(dir).expect("data/ corpus present") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "net") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable net file");
        let net = parse(&text).expect("valid corpus net");
        for seg_len in [500.0, 1500.0] {
            let seg = segment::segment_wires(&net.tree, seg_len).expect("segment");
            let scenario = net.scenario.for_segmented(&seg);
            let tag = format!("{}@{seg_len}", path.file_name().unwrap().to_string_lossy());
            check_net(&seg.tree, &scenario, &tag);
        }
        seen += 1;
    }
    assert!(seen >= 2, "expected the corpus to hold at least two nets");
}

#[test]
fn hand_built_nets_match_seed_bitwise() {
    let tech = Technology::global_layer();

    // A long chain (exercises the bitwise moment path).
    let mut b = TreeBuilder::new(Driver::new(150.0, 30e-12));
    b.add_sink(
        b.source(),
        tech.wire(6000.0),
        SinkSpec::new(20e-15, 1.2e-9, 0.8),
    )
    .expect("sink");
    let chain = segment::segment_wires(&b.build().expect("tree"), 500.0)
        .expect("segment")
        .tree;
    assert!(is_chain(&chain));
    check_net(
        &chain,
        &NoiseScenario::estimation(&chain, 0.7, 7.2e9),
        "chain",
    );

    // A branching comb.
    let mut b = TreeBuilder::new(Driver::new(300.0, 20e-12));
    let mut trunk = b.source();
    for i in 0..5 {
        trunk = b.add_internal(trunk, tech.wire(800.0)).expect("trunk");
        b.add_sink(
            trunk,
            tech.wire(600.0 + 150.0 * i as f64),
            SinkSpec::new(15e-15, 1.5e-9, 0.8),
        )
        .expect("tooth");
    }
    let comb = segment::segment_wires(&b.build().expect("tree"), 400.0)
        .expect("segment")
        .tree;
    assert!(!is_chain(&comb));
    check_net(&comb, &NoiseScenario::estimation(&comb, 0.7, 7.2e9), "comb");
}

/// Instructions for one random binary tree, mirroring the core
/// differential suite's generator.
fn build_random_tree(steps: &[(u8, bool, f64, f64)]) -> Option<RoutingTree> {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(250.0, 20e-12));
    let mut open = vec![(b.source(), 2usize)];
    let mut childless = Vec::new();
    for &(sel, branch, len, rat_ns) in steps {
        if open.is_empty() {
            break;
        }
        let slot = sel as usize % open.len();
        let (parent, free) = open[slot];
        if free == 1 {
            open.swap_remove(slot);
        } else {
            open[slot].1 -= 1;
        }
        if branch {
            let id = b.add_internal(parent, tech.wire(len)).ok()?;
            open.push((id, 2));
            childless.push(id);
        } else {
            b.add_sink(
                parent,
                tech.wire(len),
                SinkSpec::new(25e-15, rat_ns * 1e-9, 0.8),
            )
            .ok()?;
        }
        childless.retain(|&n| n != parent);
    }
    for n in childless {
        b.add_sink(n, tech.wire(900.0), SinkSpec::new(25e-15, 2.0e-9, 0.8))
            .ok()?;
    }
    if b.len() < 2 {
        return None;
    }
    let t = b.build().ok()?;
    Some(segment::segment_wires(&t, 800.0).ok()?.tree)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_trees_match_seed_bitwise(
        steps in prop::collection::vec(
            (0u8..16, prop::bool::ANY, 400.0f64..4000.0, 0.8f64..4.0),
            1..14,
        )
    ) {
        if let Some(tree) = build_random_tree(&steps) {
            let scenario = NoiseScenario::estimation(&tree, 0.7, 7.2e9);
            check_net(&tree, &scenario, "random");
        }
    }
}
