//! End-to-end integration: workload generation → Steiner estimation →
//! segmenting → optimization → independent audit → simulation referee.

use buffopt::buffopt::{self as algo3, BuffOptOptions};
use buffopt::delayopt::{self, DelayOptOptions};
use buffopt::{audit, Assignment};
use buffopt_bench::{net_has_referee_violation, prepare, ExperimentSetup};
use buffopt_buffers::catalog;
use buffopt_sim::RefereeOptions;

fn small_setup(net_count: usize) -> ExperimentSetup {
    let mut s = ExperimentSetup::default();
    s.config.net_count = net_count;
    s
}

#[test]
fn buffopt_fixes_every_net_and_referee_confirms() {
    let setup = small_setup(30);
    let nets = prepare(&setup).expect("prepare");
    let lib = &setup.library;
    let ropts = RefereeOptions {
        segments_per_wire: 2,
        steps_per_rise: 60,
        ..RefereeOptions::default()
    };
    let mut fixed_any = false;
    for net in &nets {
        let empty = Assignment::empty(&net.tree);
        let before = audit::noise(&net.tree, &net.scenario, lib, &empty).expect("audit");
        let sol = algo3::min_buffers(&net.tree, &net.scenario, lib, &BuffOptOptions::default())
            .expect("every population net is fixable");
        let after = audit::noise(&net.tree, &net.scenario, lib, &sol.assignment).expect("audit");
        assert!(!after.has_violation(), "net {} still violates", net.id);
        if before.has_violation() {
            fixed_any = true;
            assert!(sol.buffers > 0);
        }
        // The detailed simulation must agree that the net is clean.
        assert!(
            !net_has_referee_violation(&net.tree, &net.scenario, lib, &sol.assignment, &ropts),
            "referee disagrees on net {}",
            net.id
        );
    }
    assert!(fixed_any, "the sample should contain violating nets");
}

#[test]
fn delay_only_optimization_leaves_noise_violations() {
    // The empirical side of Theorem 2, on the population.
    let setup = small_setup(40);
    let nets = prepare(&setup).expect("prepare");
    let lib = &setup.library;
    let mut left_over = 0;
    for net in &nets {
        // The paper's Table III setting: DelayOpt capped at two buffers
        // (uncapped DelayOpt happens to scatter enough strong buffers to
        // also fix most noise on this sample — the point of Theorem 2 is
        // that nothing *guarantees* it).
        let sol = delayopt::optimize(
            &net.tree,
            lib,
            &DelayOptOptions {
                max_buffers: Some(2),
                ..Default::default()
            },
        )
        .expect("delay-only always solves");
        if audit::noise(&net.tree, &net.scenario, lib, &sol.assignment)
            .expect("audit")
            .has_violation()
        {
            left_over += 1;
        }
    }
    assert!(
        left_over > 0,
        "DelayOpt(2) should leave at least one noisy net in 40"
    );
}

#[test]
fn buffopt_slack_never_exceeds_delayopt_slack() {
    // DelayOpt is an unconstrained upper bound (paper Section V-C).
    let setup = small_setup(25);
    let nets = prepare(&setup).expect("prepare");
    let lib = &setup.library;
    for net in &nets {
        let d = delayopt::optimize(&net.tree, lib, &DelayOptOptions::default())
            .expect("delay-only solves");
        let b = algo3::optimize(&net.tree, &net.scenario, lib, &BuffOptOptions::default())
            .expect("buffopt solves");
        assert!(
            b.slack <= d.slack + 1e-15,
            "net {}: noise-constrained slack {} beats unconstrained {}",
            net.id,
            b.slack,
            d.slack
        );
    }
}

#[test]
fn audits_match_dp_bookkeeping_across_population() {
    let setup = small_setup(25);
    let nets = prepare(&setup).expect("prepare");
    let lib = &setup.library;
    for net in &nets {
        let sol = algo3::optimize(&net.tree, &net.scenario, lib, &BuffOptOptions::default())
            .expect("solves");
        let audit = audit::delay(&net.tree, lib, &sol.assignment).expect("audit");
        assert!(
            (sol.slack - audit.slack).abs() < 1e-13,
            "net {}: DP slack {} vs audit {}",
            net.id,
            sol.slack,
            audit.slack
        );
    }
}

#[test]
fn problem3_uses_at_most_problem2_buffers() {
    let setup = small_setup(25);
    let nets = prepare(&setup).expect("prepare");
    let lib = &setup.library;
    for net in &nets {
        let p2 = algo3::optimize(&net.tree, &net.scenario, lib, &BuffOptOptions::default())
            .expect("solves");
        let p3 = algo3::min_buffers(&net.tree, &net.scenario, lib, &BuffOptOptions::default())
            .expect("solves");
        assert!(p3.buffers <= p2.buffers, "net {}", net.id);
        if p3.slack >= 0.0 {
            // When timing is met, frugality is the whole point.
            assert!(
                p3.buffers <= p2.buffers,
                "net {}: {} vs {}",
                net.id,
                p3.buffers,
                p2.buffers
            );
        }
    }
}

#[test]
fn inverting_library_subset_is_sufficient() {
    // The non-inverting half of the library alone must also fix
    // everything (fewer choices, same feasibility).
    let setup = small_setup(15);
    let nets = prepare(&setup).expect("prepare");
    let lib = catalog::ibm_like().non_inverting();
    for net in &nets {
        let sol = algo3::min_buffers(&net.tree, &net.scenario, &lib, &BuffOptOptions::default())
            .expect("non-inverting subset suffices");
        assert!(
            !audit::noise(&net.tree, &net.scenario, &lib, &sol.assignment)
                .expect("audit")
                .has_violation()
        );
    }
}
