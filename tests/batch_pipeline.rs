//! The headline robustness scenario: a batch over a directory holding a
//! valid net, a malformed net, a noise-infeasible net, and a
//! budget-busting net must complete all four with per-net outcome
//! records — no panic, no hang — and the budget must be honored with
//! typed errors while the default budget changes nothing.

use std::time::Duration;

use buffopt::buffopt::{min_buffers, BuffOptOptions};
use buffopt::{CoreError, RunBudget};
use buffopt_buffers::catalog;
use buffopt_netlist::{parse, write, ParsedNet};
use buffopt_pipeline::{run_batch, NetInput, Outcome, PipelineConfig, Rung};
use buffopt_workload::{adversarial, WorkloadConfig};

/// Round-trips a constructed net through the text format, as the CLI's
/// `--batch` directory scan would.
fn via_format(
    name: &str,
    tree: buffopt_tree::RoutingTree,
    scenario: buffopt_noise::NoiseScenario,
) -> String {
    let node_names = (0..tree.len()).map(|_| None).collect();
    write(&ParsedNet {
        name: Some(name.to_string()),
        tree,
        scenario,
        node_names,
    })
}

/// Builds the four-net directory on disk, scans it back like the CLI
/// does, and runs the batch.
#[test]
fn four_net_batch_completes_with_records() {
    let cfg = WorkloadConfig::default();
    let dir = std::env::temp_dir().join(format!("buffopt-batch-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let (vt, vs) = adversarial::valid_net(&cfg);
    let (nt, ns) = adversarial::noise_infeasible_net(&cfg);
    let (bt, bs) = adversarial::budget_busting_net(&cfg, 60);
    std::fs::write(dir.join("a_valid.net"), via_format("valid", vt, vs)).expect("write");
    std::fs::write(
        dir.join("b_malformed.net"),
        adversarial::malformed_net_text(),
    )
    .expect("write");
    std::fs::write(dir.join("c_noise.net"), via_format("noisy", nt, ns)).expect("write");
    std::fs::write(dir.join("d_budget.net"), via_format("buster", bt, bs)).expect("write");

    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    let inputs: Vec<NetInput> = paths
        .iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            match parse(&std::fs::read_to_string(p).expect("readable")) {
                Ok(net) => NetInput::Parsed {
                    name,
                    tree: net.tree,
                    scenario: net.scenario,
                },
                Err(e) => NetInput::Failed {
                    name,
                    error: e.to_string(),
                },
            }
        })
        .collect();
    assert_eq!(inputs.len(), 4);

    let pipeline_cfg = PipelineConfig {
        // Admits the other nets (the valid net segments to ~17 nodes, the
        // noisy one to ~13) but not the buster, whose chain segments to
        // ~123 nodes for the DP rungs.
        max_tree_nodes: Some(70),
        time_limit: Some(Duration::from_secs(60)),
        ..PipelineConfig::new(catalog::ibm_like())
    };
    let report = run_batch(&inputs, &pipeline_cfg);

    assert_eq!(report.outcomes.len(), 4, "every net gets a record");
    let by_name = |n: &str| {
        report
            .outcomes
            .iter()
            .find(|o| o.name.starts_with(n))
            .unwrap_or_else(|| panic!("record for {n}"))
    };
    let valid = by_name("a_valid");
    assert_eq!(valid.outcome, Outcome::Optimized);
    assert_eq!(valid.rung, Some(Rung::Problem3));
    assert!(valid.solution.is_some());

    let malformed = by_name("b_malformed");
    assert_eq!(malformed.outcome, Outcome::ParseError);
    assert!(malformed.error.as_deref().unwrap().contains("line"));

    let noisy = by_name("c_noise");
    assert_eq!(noisy.outcome, Outcome::Infeasible);
    assert_eq!(noisy.rung, Some(Rung::Unbuffered));
    assert!(
        noisy.worst_headroom.unwrap() < 0.0,
        "diagnosis shows the violation"
    );

    let buster = by_name("d_budget");
    assert_ne!(buster.outcome, Outcome::Optimized);
    assert!(
        buster
            .attempts
            .iter()
            .any(|a| a.error.contains("tree nodes")),
        "budget rejection is recorded: {:?}",
        buster.attempts
    );

    // The JSONL report serializes one line per net and the summary adds up.
    let jsonl = report.to_jsonl();
    assert_eq!(jsonl.lines().count(), 4);
    let s = report.summary();
    assert_eq!(
        s.optimized + s.degraded + s.infeasible + s.parse_errors + s.failed,
        4
    );
    assert_eq!(report.exit_code(), 3, "parse error dominates the exit code");

    std::fs::remove_dir_all(&dir).ok();
}

/// Tiny caps produce the typed errors; the unlimited default reproduces
/// the unbudgeted result exactly.
#[test]
fn budgets_yield_typed_errors_and_default_is_identity() {
    let cfg = WorkloadConfig::default();
    let (tree, scenario) = adversarial::valid_net(&cfg);
    let seg = buffopt_tree::segment::segment_wires(&tree, 500.0).expect("segment");
    let scenario = scenario.for_segmented(&seg);
    let tree = seg.tree;
    let lib = catalog::ibm_like();

    let squeezed = BuffOptOptions {
        budget: RunBudget::default().with_max_candidates(1),
        ..BuffOptOptions::default()
    };
    assert!(matches!(
        min_buffers(&tree, &scenario, &lib, &squeezed),
        Err(CoreError::BudgetExceeded { .. })
    ));

    let expired = BuffOptOptions {
        budget: RunBudget::default().with_time_limit(Duration::ZERO),
        ..BuffOptOptions::default()
    };
    assert!(matches!(
        min_buffers(&tree, &scenario, &lib, &expired),
        Err(CoreError::DeadlineExceeded)
    ));

    let unbudgeted =
        min_buffers(&tree, &scenario, &lib, &BuffOptOptions::default()).expect("solves");
    let roomy = BuffOptOptions {
        budget: RunBudget::default()
            .with_time_limit(Duration::from_secs(600))
            .with_max_candidates(1_000_000)
            .with_max_tree_nodes(1_000_000),
        ..BuffOptOptions::default()
    };
    let budgeted = min_buffers(&tree, &scenario, &lib, &roomy).expect("solves");
    assert_eq!(unbudgeted.buffers, budgeted.buffers);
    assert_eq!(unbudgeted.slack, budgeted.slack);
    assert_eq!(unbudgeted.assignment, budgeted.assignment);
}
