//! Root crate of the BuffOpt reproduction: re-exports for examples/tests.
pub use buffopt as core;
pub use buffopt_buffers as buffers;
pub use buffopt_noise as noise;
pub use buffopt_sim as sim;
pub use buffopt_steiner as steiner;
pub use buffopt_tree as tree;
pub use buffopt_workload as workload;
