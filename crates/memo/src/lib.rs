//! Cross-request structural subtree memoization.
//!
//! The server's solution cache (`buffopt-server::SolutionCache`) only hits
//! on byte-identical `(net, config)` pairs, but incremental-design traffic
//! is *near*-duplicate: an engineering change order jitters one sink's
//! load, resegments one route, grafts one tap — and every untouched branch
//! of the routing tree reappears verbatim. This crate caches the dynamic
//! program's intermediate state at those untouched branches, the DP
//! analogue of prefix caching in a serving stack:
//!
//! * [`SubtreeDigests`] — per-node structural digests of a routing tree: a
//!   **canonical** 128-bit digest invariant under sink relabeling and
//!   branch-child reordering (the memo key), and an **evaluation-order**
//!   64-bit signature over the exact left-to-right layout (the seeding
//!   guard; see the module docs of [`digest`] for why both exist);
//! * [`MemoTable`] — a sharded, byte-budgeted, LRU-evicting map from
//!   subtree digests to pruned candidate frontiers ([`FrontierRow`]
//!   snapshots), safe to share across worker threads;
//! * [`MemoStats`] — an atomic counter snapshot (hits, misses, seeded
//!   merges, evictions, byte gauge) surfaced through the server's `stats`
//!   response.
//!
//! The DP integration lives in `buffopt::buffopt` (the optimizer consults
//! the table at merge points and falls back to full computation on miss);
//! this crate is deliberately mechanism-only so that the digest and table
//! can be tested in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
mod table;

pub use digest::{Hasher128, Hasher64, SubtreeDigests};
pub use table::{FrontierRow, MemoStats, MemoTable};
