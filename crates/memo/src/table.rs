//! The sharded, byte-budgeted memo table.
//!
//! Same shape as the server's `SolutionCache` (sharded `Mutex` maps with a
//! logical-tick LRU and linear-scan eviction — shards are small enough
//! that a scan beats an intrusive list), but budgeted in **bytes** rather
//! than entries: frontier snapshots vary by orders of magnitude, and the
//! operator's knob (`--memo-budget-mb`) is a memory bound.

use std::collections::HashMap;
use std::fmt;
use std::mem;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use buffopt_integrity::Crc64;

/// One pruned DP candidate, snapshotted in a host-independent form.
///
/// The electrical fields mirror the DP's candidate 5-tuple plus the Lillis
/// extensions; `insertions` holds the partial solution as
/// `(subtree-relative postorder position, buffer index)` pairs in sorted
/// order, so the snapshot is meaningful in any tree containing an
/// evaluation-identical copy of the subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRow {
    /// Downstream load capacitance (farads).
    pub cap: f64,
    /// Timing slack (seconds).
    pub q: f64,
    /// Downstream coupled current (amperes).
    pub cur: f64,
    /// Noise slack (volts).
    pub ns: f64,
    /// Inserted-buffer count.
    pub count: u32,
    /// Total inserted-buffer cost.
    pub cost: f64,
    /// Signal parity (number of inversions mod 2).
    pub parity: bool,
    /// Partial solution: `(postorder position within the subtree, buffer
    /// library index)`, sorted ascending.
    pub insertions: Vec<(u32, u32)>,
}

/// Counter snapshot of a [`MemoTable`], surfaced through the server's
/// `stats` response and the memo benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Lookups that returned a seedable frontier.
    pub hits: u64,
    /// Lookups that found nothing usable (including signature conflicts).
    pub misses: u64,
    /// Canonical-key hits rejected because the evaluation signature
    /// differed (counted within `misses` as well).
    pub sig_conflicts: u64,
    /// Merge points actually seeded from the table by the DP.
    pub seeded: u64,
    /// Frontier snapshots stored.
    pub stores: u64,
    /// Entries evicted to stay inside the byte budget.
    pub evictions: u64,
    /// Current estimated bytes held across all shards.
    pub bytes: usize,
    /// Current entry count across all shards.
    pub entries: usize,
    /// Configured byte budget (0 = table disabled).
    pub budget_bytes: usize,
    /// Verify-on-hit checksum validations performed.
    pub integrity_checks: u64,
    /// Entries evicted because their checksum no longer matched
    /// (each is also a miss — corrupt frontiers never seed a DP).
    pub corrupt_evictions: u64,
}

struct Entry {
    sig: u64,
    rows: Arc<Vec<FrontierRow>>,
    bytes: usize,
    tick: u64,
    /// CRC-64 of the frontier rows at store time, re-checked on every
    /// signature-matching hit before the rows may seed a DP.
    crc: u64,
}

/// Streaming CRC-64 over every field of every row (floats by bit
/// pattern), so any single-bit corruption of a stored frontier is
/// detected at the next hit.
fn rows_crc(rows: &[FrontierRow]) -> u64 {
    let mut h = Crc64::new();
    h.update_u64(rows.len() as u64);
    for r in rows {
        h.update_u64(r.cap.to_bits());
        h.update_u64(r.q.to_bits());
        h.update_u64(r.cur.to_bits());
        h.update_u64(r.ns.to_bits());
        h.update_u64(u64::from(r.count));
        h.update_u64(r.cost.to_bits());
        h.update_u64(u64::from(r.parity));
        h.update_u64(r.insertions.len() as u64);
        for &(pos, buf) in &r.insertions {
            h.update_u64((u64::from(pos) << 32) | u64::from(buf));
        }
    }
    h.finish()
}

#[derive(Default)]
struct Shard {
    map: HashMap<u128, Entry>,
    tick: u64,
    bytes: usize,
}

/// A sharded, byte-budgeted, LRU-evicting map from canonical subtree
/// digests to pruned candidate frontiers.
///
/// Thread-safe and meant to be shared (`Arc`) across engine workers; all
/// operations take a shard lock only. A table built with budget `0` is
/// disabled: every lookup misses without counting and stores are dropped.
///
/// `Debug` is intentionally *configuration-only* (budget and shard count,
/// never contents): the pipeline's config digest — which keys the server's
/// solution cache — is derived from `Debug` output, so table state must
/// not leak into it.
pub struct MemoTable {
    shards: Vec<Mutex<Shard>>,
    budget: usize,
    per_shard: usize,
    bytes: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    sig_conflicts: AtomicU64,
    seeded: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    integrity_checks: AtomicU64,
    corrupt_evictions: AtomicU64,
}

impl fmt::Debug for MemoTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoTable")
            .field("budget_bytes", &self.budget)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// Fixed per-entry overhead estimate: key, signature, map slot, ticks.
const ENTRY_OVERHEAD: usize = 96;

fn entry_bytes(rows: &[FrontierRow]) -> usize {
    ENTRY_OVERHEAD
        + mem::size_of_val(rows)
        + rows
            .iter()
            .map(|r| r.insertions.len() * mem::size_of::<(u32, u32)>())
            .sum::<usize>()
}

impl MemoTable {
    /// Creates a table with a total byte budget spread over `shards`
    /// shards (shard count is clamped to at least 1). A zero budget
    /// disables the table entirely.
    pub fn new(budget_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        MemoTable {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            budget: budget_bytes,
            per_shard: budget_bytes.div_ceil(shards),
            bytes: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            sig_conflicts: AtomicU64::new(0),
            seeded: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            integrity_checks: AtomicU64::new(0),
            corrupt_evictions: AtomicU64::new(0),
        }
    }

    /// Whether the table can ever hold an entry.
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    fn shard_of(&self, key: u128) -> &Mutex<Shard> {
        let folded = (key as u64) ^ ((key >> 64) as u64);
        &self.shards[(folded % self.shards.len() as u64) as usize]
    }

    /// Looks up the frontier stored for `key`, provided its evaluation
    /// signature matches `sig`. A canonical hit with a differing signature
    /// is a miss (the frontier of a reordered twin cannot seed this run
    /// bitwise-exactly) and is additionally counted in
    /// [`MemoStats::sig_conflicts`].
    pub fn lookup(&self, key: u128, sig: u64) -> Option<Arc<Vec<FrontierRow>>> {
        if !self.enabled() {
            return None;
        }
        let mut shard = self.shard_of(key).lock().expect("memo shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        let corrupt = match shard.map.get_mut(&key) {
            Some(e) if e.sig == sig => {
                // Verify-on-hit: a frontier that fails its store-time
                // checksum must never seed a DP — evict it and miss.
                self.integrity_checks.fetch_add(1, Ordering::Relaxed);
                if rows_crc(&e.rows) == e.crc {
                    e.tick = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(Arc::clone(&e.rows));
                }
                true
            }
            Some(_) => {
                self.sig_conflicts.fetch_add(1, Ordering::Relaxed);
                false
            }
            None => false,
        };
        if corrupt {
            let evicted = shard.map.remove(&key).expect("entry just observed");
            shard.bytes -= evicted.bytes;
            self.bytes.fetch_sub(evicted.bytes, Ordering::Relaxed);
            self.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores (or replaces) the frontier for `key`, evicting
    /// least-recently-used entries from the shard until the snapshot fits
    /// its byte budget. A snapshot larger than a whole shard's budget is
    /// dropped rather than stored.
    pub fn store(&self, key: u128, sig: u64, rows: Vec<FrontierRow>) {
        if !self.enabled() {
            return;
        }
        let new_bytes = entry_bytes(&rows);
        if new_bytes > self.per_shard {
            return;
        }
        let mut shard = self.shard_of(key).lock().expect("memo shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.bytes;
            self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        while shard.bytes + new_bytes > self.per_shard {
            // Linear scan for the stalest entry; shards stay small enough
            // that this beats maintaining an intrusive LRU list.
            let Some((&stale, _)) = shard.map.iter().min_by_key(|(_, e)| e.tick) else {
                break;
            };
            let evicted = shard.map.remove(&stale).expect("key just observed");
            shard.bytes -= evicted.bytes;
            self.bytes.fetch_sub(evicted.bytes, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.bytes += new_bytes;
        self.bytes.fetch_add(new_bytes, Ordering::Relaxed);
        self.stores.fetch_add(1, Ordering::Relaxed);
        let crc = rows_crc(&rows);
        shard.map.insert(
            key,
            Entry {
                sig,
                rows: Arc::new(rows),
                bytes: new_bytes,
                tick,
                crc,
            },
        );
    }

    /// Test hook: silently bit-flips one stored frontier row (keeping
    /// the recorded checksum), simulating in-memory corruption. Returns
    /// false when the table holds no entries. The next
    /// signature-matching lookup of the damaged key must detect the
    /// mismatch, evict the entry, and miss.
    #[doc(hidden)]
    pub fn corrupt_any(&self) -> bool {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("memo shard poisoned");
            if let Some(entry) = shard.map.values_mut().next() {
                let mut rows: Vec<FrontierRow> = entry.rows.as_ref().clone();
                if let Some(row) = rows.first_mut() {
                    row.q = f64::from_bits(row.q.to_bits() ^ (1 << 51));
                } else {
                    return false;
                }
                entry.rows = Arc::new(rows);
                return true;
            }
        }
        false
    }

    /// Records that the DP seeded one merge point from a hit. Kept
    /// separate from [`lookup`](MemoTable::lookup) because hit planning
    /// happens before the DP runs and a cancelled run may seed fewer
    /// merges than it looked up.
    pub fn note_seeded(&self) {
        self.seeded.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough counter snapshot (entry count sums shard sizes
    /// under their locks; counters are relaxed atomics).
    pub fn stats(&self) -> MemoStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").map.len())
            .sum();
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sig_conflicts: self.sig_conflicts.load(Ordering::Relaxed),
            seeded: self.seeded.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            entries,
            budget_bytes: self.budget,
            integrity_checks: self.integrity_checks.load(Ordering::Relaxed),
            corrupt_evictions: self.corrupt_evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(tag: u32, insertions: usize) -> FrontierRow {
        FrontierRow {
            cap: f64::from(tag),
            q: 1.0,
            cur: 0.0,
            ns: 0.5,
            count: insertions as u32,
            cost: 0.0,
            parity: false,
            insertions: (0..insertions as u32).map(|i| (i, 0)).collect(),
        }
    }

    #[test]
    fn lookup_roundtrip_and_sig_guard() {
        let t = MemoTable::new(1 << 20, 4);
        assert!(t.lookup(7, 1).is_none());
        t.store(7, 1, vec![row(1, 2)]);
        let hit = t.lookup(7, 1).expect("stored entry hits");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].insertions, vec![(0, 0), (1, 0)]);
        // Same canonical key, different evaluation order: miss.
        assert!(t.lookup(7, 2).is_none());
        let s = t.stats();
        assert_eq!((s.hits, s.misses, s.sig_conflicts), (1, 2, 1));
        assert_eq!(s.entries, 1);
        assert!(s.bytes > 0 && s.bytes <= s.budget_bytes);
    }

    #[test]
    fn replacement_updates_bytes_not_duplicates() {
        let t = MemoTable::new(1 << 20, 1);
        t.store(9, 1, vec![row(1, 8)]);
        let b1 = t.stats().bytes;
        t.store(9, 2, vec![row(1, 1)]);
        let s = t.stats();
        assert_eq!(s.entries, 1);
        assert!(s.bytes < b1, "smaller replacement shrinks the gauge");
        assert!(t.lookup(9, 1).is_none(), "old signature replaced");
        assert!(t.lookup(9, 2).is_some());
    }

    #[test]
    fn byte_budget_is_respected_via_lru_eviction() {
        let t = MemoTable::new(4096, 2);
        for k in 0..256u128 {
            t.store(k, 0, vec![row(k as u32, 4)]);
            assert!(
                t.stats().bytes <= t.budget_bytes(),
                "gauge exceeds budget after store {k}"
            );
        }
        let s = t.stats();
        assert!(s.evictions > 0, "budget pressure must evict");
        assert!(s.entries < 256);
        // Recently-touched entries are the survivors: refresh one key,
        // then push until eviction happens again and check it survived.
        let survivor = (0..256u128)
            .find(|&k| t.lookup(k, 0).is_some())
            .expect("some entry survives");
        for k in 1000..1016u128 {
            t.store(k, 0, vec![row(0, 4)]);
        }
        assert!(
            t.lookup(survivor, 0).is_some(),
            "freshly-touched entry outlives LRU pressure"
        );
    }

    #[test]
    fn zero_budget_disables_everything() {
        let t = MemoTable::new(0, 4);
        assert!(!t.enabled());
        t.store(1, 1, vec![row(1, 1)]);
        assert!(t.lookup(1, 1).is_none());
        let s = t.stats();
        assert_eq!(
            (s.hits, s.misses, s.stores, s.entries, s.bytes),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn oversized_snapshot_is_dropped() {
        let t = MemoTable::new(512, 1);
        t.store(1, 0, vec![row(0, 4000)]);
        assert!(t.lookup(1, 0).is_none());
        assert_eq!(t.stats().bytes, 0);
    }

    #[test]
    fn hits_are_integrity_checked() {
        let t = MemoTable::new(1 << 20, 4);
        t.store(7, 1, vec![row(1, 2)]);
        t.lookup(7, 1).expect("clean hit");
        let s = t.stats();
        assert_eq!(s.integrity_checks, 1);
        assert_eq!(s.corrupt_evictions, 0);
        // Signature conflicts and absent keys never reach the checker.
        t.lookup(7, 99);
        t.lookup(8, 1);
        assert_eq!(t.stats().integrity_checks, 1);
    }

    #[test]
    fn corrupt_entry_is_detected_evicted_and_missed() {
        let t = MemoTable::new(1 << 20, 4);
        t.store(7, 1, vec![row(1, 2)]);
        assert!(t.corrupt_any(), "one entry to damage");
        assert!(
            t.lookup(7, 1).is_none(),
            "a corrupt frontier must never seed a DP"
        );
        let s = t.stats();
        assert_eq!(s.corrupt_evictions, 1);
        assert_eq!(s.entries, 0, "the damaged entry is gone");
        assert_eq!(s.bytes, 0, "the byte gauge is released");
        assert_eq!((s.hits, s.misses), (0, 1), "corruption is a miss");
        // The table heals: a fresh store for the same key works again.
        t.store(7, 1, vec![row(1, 2)]);
        assert!(t.lookup(7, 1).is_some());
        assert_eq!(t.stats().corrupt_evictions, 1);
    }

    #[test]
    fn rows_crc_sees_every_field() {
        let base = vec![row(1, 2)];
        let reference = rows_crc(&base);
        let variants: Vec<Vec<FrontierRow>> = vec![
            {
                let mut v = base.clone();
                v[0].cap = f64::from_bits(v[0].cap.to_bits() ^ 1);
                v
            },
            {
                let mut v = base.clone();
                v[0].q = f64::from_bits(v[0].q.to_bits() ^ 1);
                v
            },
            {
                let mut v = base.clone();
                v[0].parity = true;
                v
            },
            {
                let mut v = base.clone();
                v[0].count += 1;
                v
            },
            {
                let mut v = base.clone();
                v[0].insertions[1] = (1, 1);
                v
            },
            {
                let mut v = base.clone();
                v.push(row(2, 0));
                v
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(rows_crc(v), reference, "variant {i} must change the crc");
        }
    }

    #[test]
    fn debug_output_is_configuration_only() {
        let t = MemoTable::new(1 << 20, 4);
        let before = format!("{t:?}");
        t.store(1, 0, vec![row(1, 1)]);
        t.lookup(1, 0);
        assert_eq!(before, format!("{t:?}"), "state must not leak into Debug");
        assert!(before.contains("budget_bytes"));
    }
}
