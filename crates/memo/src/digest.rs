//! Structural digests of routing-tree subtrees.
//!
//! Two digests are computed for every node, and both are needed:
//!
//! * The **canonical digest** (128-bit) identifies the subtree up to
//!   *RC isomorphism*: sink names are excluded and the children of every
//!   branch are folded in a sorted order, so relabeling sinks or swapping
//!   the branches of a Steiner point leaves it unchanged. It is the memo
//!   table's key — structurally equal subtrees from different nets (or
//!   differently-ordered parses of the same net) share an entry.
//! * The **evaluation signature** (64-bit) folds the children in their
//!   actual left-to-right order. The DP's candidate frontier is *not*
//!   invariant under child reordering — a merged candidate inherits the
//!   left child's parity, and exact sort-key ties are broken by generation
//!   order — so a frontier may only be re-used when the evaluation order
//!   matches bit for bit. A canonical hit whose signature differs is
//!   treated as a miss; the table key stays order-invariant (satisfying
//!   the isomorphism contract) while seeding stays bitwise-exact.
//!
//! What is folded per node: sinks contribute their electrical triple
//! (capacitance, required arrival time, noise margin); branch points
//! contribute their buffer-site feasibility flag; every child edge
//! contributes the wire's `(R, C)` and the scenario's coupled current for
//! that wire (length is *excluded* — it does not enter the DP). A
//! caller-supplied 64-bit seed is folded first, so frontiers computed
//! under different optimizer configurations can never collide.
//!
//! Digests are FNV-1a with per-write length prefixes — fast, dependency
//! free, and deterministic across platforms. They are not cryptographic:
//! an adversary could construct colliding subtrees, which is acceptable
//! for a performance cache whose inputs are design data (a collision
//! sanity test over the shipped corpus backs this up).

use buffopt_noise::NoiseScenario;
use buffopt_tree::{NodeId, NodeKind, RoutingTree};

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental FNV-1a 64 with a length prefix per [`write`](Hasher64::write),
/// so concatenation ambiguities cannot alias two part sequences.
#[derive(Debug, Clone, Copy)]
pub struct Hasher64(u64);

impl Hasher64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Hasher64(FNV64_OFFSET)
    }

    /// Folds one length-prefixed part.
    pub fn write(&mut self, part: &[u8]) {
        for b in (part.len() as u64).to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV64_PRIME);
        }
        for &b in part {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV64_PRIME);
        }
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Hasher64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Incremental FNV-1a 128, the canonical-digest counterpart of
/// [`Hasher64`].
#[derive(Debug, Clone, Copy)]
pub struct Hasher128(u128);

impl Hasher128 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Hasher128(FNV128_OFFSET)
    }

    /// Folds one length-prefixed part.
    pub fn write(&mut self, part: &[u8]) {
        for b in (part.len() as u64).to_le_bytes() {
            self.0 = (self.0 ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
        }
        for &b in part {
            self.0 = (self.0 ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
        }
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

impl Default for Hasher128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-node structural digests of one routing tree, plus the postorder
/// position tables the DP integration uses to translate between
/// subtree-relative insertion coordinates and host-tree node ids.
#[derive(Debug, Clone)]
pub struct SubtreeDigests {
    /// Canonical (isomorphism-invariant) digest per node index.
    canon: Vec<u128>,
    /// Evaluation-order signature per node index.
    eval: Vec<u64>,
    /// Subtree node count (including the node itself) per node index.
    size: Vec<u32>,
    /// The tree's nodes in DFS postorder (subtrees are contiguous).
    postorder: Vec<NodeId>,
    /// Postorder position per node index.
    pos: Vec<u32>,
}

/// The payload bytes of one child edge: wire R, wire C, and the coupled
/// current injected along the wire. Wire *length* is excluded — the DP
/// never reads it.
fn edge_bytes(tree: &RoutingTree, scenario: Option<&NoiseScenario>, child: NodeId) -> [u8; 24] {
    let wire = tree
        .parent_wire(child)
        .expect("non-source child has a wire");
    let current = scenario.map_or(0.0, |s| s.wire_current(tree, child));
    let mut out = [0u8; 24];
    out[0..8].copy_from_slice(&wire.resistance.to_bits().to_le_bytes());
    out[8..16].copy_from_slice(&wire.capacitance.to_bits().to_le_bytes());
    out[16..24].copy_from_slice(&current.to_bits().to_le_bytes());
    out
}

impl SubtreeDigests {
    /// Computes digests for every node of `tree` in one postorder pass.
    ///
    /// `scenario` supplies the coupled current per wire (`None` folds zero
    /// everywhere, matching a noise-free DP run); `seed` is folded into
    /// every digest and should bind the full optimizer configuration.
    ///
    /// # Panics
    ///
    /// Panics if `scenario` was built for a different tree.
    pub fn compute(tree: &RoutingTree, scenario: Option<&NoiseScenario>, seed: u64) -> Self {
        let n = tree.len();
        let mut canon = vec![0u128; n];
        let mut eval = vec![0u64; n];
        let mut size = vec![0u32; n];
        let mut postorder = Vec::with_capacity(n);
        let mut pos = vec![0u32; n];
        let seed_bytes = seed.to_le_bytes();
        // (edge bytes, child canon, child eval) scratch; trees are binary.
        let mut kids: Vec<([u8; 24], u128, u64)> = Vec::with_capacity(2);
        for v in tree.postorder() {
            let mut hc = Hasher128::new();
            let mut he = Hasher64::new();
            hc.write(&seed_bytes);
            he.write(&seed_bytes);
            match &tree.node(v).kind {
                NodeKind::Sink(spec) => {
                    let mut payload = [0u8; 25];
                    payload[0] = 0;
                    payload[1..9].copy_from_slice(&spec.capacitance.to_bits().to_le_bytes());
                    payload[9..17]
                        .copy_from_slice(&spec.required_arrival_time.to_bits().to_le_bytes());
                    payload[17..25].copy_from_slice(&spec.noise_margin.to_bits().to_le_bytes());
                    hc.write(&payload);
                    he.write(&payload);
                }
                kind @ (NodeKind::Source(_) | NodeKind::Internal { .. }) => {
                    // Only buffer-site feasibility matters to the DP; the
                    // driver is applied above the subtree and so stays out.
                    let payload = [1u8, u8::from(kind.is_feasible_site())];
                    hc.write(&payload);
                    he.write(&payload);
                }
            }
            kids.clear();
            let mut nodes = 1u32;
            for &c in tree.children(v) {
                kids.push((
                    edge_bytes(tree, scenario, c),
                    canon[c.index()],
                    eval[c.index()],
                ));
                nodes += size[c.index()];
            }
            // Evaluation signature: children in tree (left-to-right) order.
            for &(edge, _, child_eval) in kids.iter() {
                he.write(&edge);
                he.write(&child_eval.to_le_bytes());
            }
            // Canonical digest: children sorted by (digest, edge), so any
            // permutation of structurally-tagged children folds alike.
            kids.sort_unstable_by_key(|&(edge, child_canon, _)| (child_canon, edge));
            for &(edge, child_canon, _) in kids.iter() {
                hc.write(&edge);
                hc.write(&child_canon.to_le_bytes());
            }
            canon[v.index()] = hc.finish();
            eval[v.index()] = he.finish();
            size[v.index()] = nodes;
            pos[v.index()] = postorder.len() as u32;
            postorder.push(v);
        }
        SubtreeDigests {
            canon,
            eval,
            size,
            postorder,
            pos,
        }
    }

    /// The canonical (relabel/reorder-invariant) digest of the subtree
    /// rooted at `v`.
    #[inline]
    pub fn canonical(&self, v: NodeId) -> u128 {
        self.canon[v.index()]
    }

    /// The evaluation-order signature of the subtree rooted at `v`.
    #[inline]
    pub fn eval_sig(&self, v: NodeId) -> u64 {
        self.eval[v.index()]
    }

    /// Number of nodes in the subtree rooted at `v`, including `v`.
    #[inline]
    pub fn subtree_nodes(&self, v: NodeId) -> u32 {
        self.size[v.index()]
    }

    /// Postorder position of `v` within the whole tree.
    #[inline]
    pub fn position(&self, v: NodeId) -> u32 {
        self.pos[v.index()]
    }

    /// The nodes of the subtree rooted at `v` in postorder (`v` last).
    ///
    /// DFS postorder visits subtrees contiguously, so this is a slice of
    /// the whole-tree postorder; index `i` of the slice is the
    /// subtree-relative coordinate the memo table stores for insertions.
    pub fn subtree_slice(&self, v: NodeId) -> &[NodeId] {
        let end = self.pos[v.index()] as usize;
        let start = end + 1 - self.size[v.index()] as usize;
        &self.postorder[start..=end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffopt_tree::{Driver, SinkSpec, TreeBuilder, Wire};
    use proptest::prelude::*;

    /// A buildable tree description; `mirror` flips child order without
    /// touching electricals, `relabel` renames sinks.
    #[derive(Debug, Clone)]
    enum Spec {
        Sink(f64, f64, f64),
        Branch(bool, Vec<(Wire, Spec)>),
    }

    impl Spec {
        fn mirror(&self) -> Spec {
            match self {
                Spec::Sink(c, q, m) => Spec::Sink(*c, *q, *m),
                Spec::Branch(f, kids) => Spec::Branch(
                    *f,
                    kids.iter().rev().map(|(w, s)| (*w, s.mirror())).collect(),
                ),
            }
        }
    }

    fn build(spec: &Spec, namer: &mut dyn FnMut() -> String) -> RoutingTree {
        fn attach(
            b: &mut TreeBuilder,
            parent: buffopt_tree::NodeId,
            wire: Wire,
            spec: &Spec,
            namer: &mut dyn FnMut() -> String,
        ) {
            match spec {
                Spec::Sink(c, q, m) => {
                    b.add_sink(parent, wire, SinkSpec::new(*c, *q, *m).with_name(namer()))
                        .expect("sink attaches");
                }
                Spec::Branch(feasible, kids) => {
                    let v = if *feasible {
                        b.add_internal(parent, wire).expect("internal attaches")
                    } else {
                        b.add_infeasible_internal(parent, wire)
                            .expect("internal attaches")
                    };
                    for (w, s) in kids {
                        attach(b, v, *w, s, namer);
                    }
                }
            }
        }
        let mut b = TreeBuilder::new(Driver::new(100.0, 1e-12));
        let src = b.source();
        match spec {
            Spec::Sink(..) => attach(&mut b, src, Wire::from_rc(10.0, 1e-15, 10.0), spec, namer),
            Spec::Branch(_, kids) => {
                for (w, s) in kids {
                    attach(&mut b, src, *w, s, namer);
                }
            }
        }
        b.build().expect("tree builds")
    }

    /// SplitMix64: a tiny deterministic generator for spec construction.
    fn split_mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn gen_spec(state: &mut u64, depth: usize) -> Spec {
        let r = split_mix(state);
        if depth == 0 || r.is_multiple_of(3) {
            Spec::Sink(
                1e-15 * ((r >> 8) % 40) as f64,
                1e-10 * ((r >> 16) % 30) as f64,
                0.1 * (1 + (r >> 24) % 9) as f64,
            )
        } else {
            let nkids = 1 + (r >> 32) % 2;
            let kids = (0..nkids)
                .map(|_| {
                    let w = split_mix(state);
                    let wire = Wire::from_rc(
                        1.0 + (w % 100) as f64,
                        1e-16 * ((w >> 8) % 50) as f64,
                        (w >> 16) as f64 % 300.0,
                    );
                    (wire, gen_spec(state, depth - 1))
                })
                .collect();
            Spec::Branch(!r.is_multiple_of(5), kids)
        }
    }

    fn scenario_for(tree: &RoutingTree) -> NoiseScenario {
        NoiseScenario::estimation(tree, 0.7, 7.2e9)
    }

    fn counting_namer(prefix: &'static str) -> impl FnMut() -> String {
        let mut i = 0usize;
        move || {
            i += 1;
            format!("{prefix}{i}")
        }
    }

    #[test]
    fn hashers_are_prefix_sensitive() {
        let mut a = Hasher64::new();
        a.write(b"ab");
        a.write(b"c");
        let mut b = Hasher64::new();
        b.write(b"a");
        b.write(b"bc");
        assert_ne!(a.finish(), b.finish(), "length prefixes separate parts");
        let mut c = Hasher128::new();
        c.write(b"ab");
        c.write(b"c");
        let mut d = Hasher128::new();
        d.write(b"a");
        d.write(b"bc");
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn subtree_slices_are_consistent() {
        let mut state = 77u64;
        let spec = gen_spec(&mut state, 4);
        let tree = build(&spec, &mut counting_namer("s"));
        let d = SubtreeDigests::compute(&tree, None, 0);
        for v in tree.node_ids() {
            let slice = d.subtree_slice(v);
            assert_eq!(*slice.last().expect("nonempty"), v);
            assert_eq!(slice.len() as u32, d.subtree_nodes(v));
            for (i, &u) in slice.iter().enumerate() {
                assert_eq!(
                    d.position(u) as usize,
                    d.position(*slice.first().expect("nonempty")) as usize + i
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Renaming sinks changes neither digest; mirroring children
        /// preserves the canonical digest at every node pair related by the
        /// mirror (checked at the root, where the correspondence is free).
        #[test]
        fn prop_digests_invariant_under_relabel_and_reorder(seed in 0u64..u64::MAX) {
            let mut state = seed;
            let spec = gen_spec(&mut state, 4);
            let base = build(&spec, &mut counting_namer("a"));
            let renamed = build(&spec, &mut counting_namer("zz"));
            let mirrored = build(&spec.mirror(), &mut counting_namer("a"));
            let cfg_seed = seed ^ 0xdead_beef;
            let db = SubtreeDigests::compute(&base, Some(&scenario_for(&base)), cfg_seed);
            let dr = SubtreeDigests::compute(&renamed, Some(&scenario_for(&renamed)), cfg_seed);
            let dm = SubtreeDigests::compute(&mirrored, Some(&scenario_for(&mirrored)), cfg_seed);
            let root = base.source();
            // Sink names are not part of the structure: bitwise equal.
            prop_assert_eq!(db.canonical(root), dr.canonical(renamed.source()));
            prop_assert_eq!(db.eval_sig(root), dr.eval_sig(renamed.source()));
            // Child order is canonicalized away in the key digest.
            prop_assert_eq!(db.canonical(root), dm.canonical(mirrored.source()));
        }

        /// The config seed and the electricals are load-bearing: changing
        /// either changes the canonical digest.
        #[test]
        fn prop_digest_sensitive_to_seed_and_payload(seed in 0u64..u64::MAX) {
            let mut state = seed;
            let spec = gen_spec(&mut state, 3);
            let tree = build(&spec, &mut counting_namer("a"));
            let s = scenario_for(&tree);
            let d1 = SubtreeDigests::compute(&tree, Some(&s), 1);
            let d2 = SubtreeDigests::compute(&tree, Some(&s), 2);
            prop_assert_ne!(d1.canonical(tree.source()), d2.canonical(tree.source()));
            // Perturb one sink's capacitance through a rebuilt spec.
            fn bump_first_sink(spec: &Spec) -> (Spec, bool) {
                match spec {
                    Spec::Sink(c, q, m) => (Spec::Sink(c + 1e-15, *q, *m), true),
                    Spec::Branch(f, kids) => {
                        let mut done = false;
                        let kids = kids
                            .iter()
                            .map(|(w, s)| {
                                if done {
                                    (*w, s.clone())
                                } else {
                                    let (s2, hit) = bump_first_sink(s);
                                    done = hit;
                                    (*w, s2)
                                }
                            })
                            .collect();
                        (Spec::Branch(*f, kids), done)
                    }
                }
            }
            let (bumped, _) = bump_first_sink(&spec);
            let t2 = build(&bumped, &mut counting_namer("a"));
            let d3 = SubtreeDigests::compute(&t2, Some(&scenario_for(&t2)), 1);
            prop_assert_ne!(d1.canonical(tree.source()), d3.canonical(t2.source()));
        }
    }
}
