//! Pooled analysis scratch, mirroring the DP workspace pattern.

use crate::incremental::IncrementalSweep;

/// Reusable tables for the kernel sweeps.
///
/// Batch pipelines and server workers analyse thousands of nets; the
/// sweeps themselves are cheap, so table allocation dominates their cost.
/// An `AnalysisWorkspace` owns one set of tables plus two incremental
/// sweeps (one for the load-like metric, one for the current-like
/// metric); thread it through the `*_with` audit entry points and
/// steady-state analysis allocates nothing beyond the largest net seen.
///
/// Like the DP workspace, this is plain mutable state — give each worker
/// thread its own. Every entry point fully overwrites the tables it
/// uses, so a workspace is safe to reuse after an error or panic.
#[derive(Debug, Default)]
pub struct AnalysisWorkspace {
    /// Postorder accumulation (downstream load or current), full subtree.
    pub below: Vec<f64>,
    /// Cut-aware presented values (what each node shows its parent).
    pub presented: Vec<f64>,
    /// Preorder accumulation (arrival times or stage noise).
    pub up: Vec<f64>,
    /// Min-merged requirements (timing or noise slack).
    pub slack: Vec<f64>,
    /// Incremental sweep carrying the load-like metric.
    pub loads: IncrementalSweep,
    /// Incremental sweep carrying the current-like metric.
    pub currents: IncrementalSweep,
}

impl AnalysisWorkspace {
    /// Creates an empty workspace; capacity grows to the largest net
    /// processed and is retained across runs.
    pub fn new() -> Self {
        Self::default()
    }
}
