//! The propagation kernel: topology and metric traits plus the sweeps.
//!
//! Bitwise-equality contract: downstream crates re-express their seed
//! analyses as [`AdditiveMetric`] instances and demand the kernel produce
//! *bitwise identical* tables. Every accumulation below therefore fixes
//! the floating-point operation order — child terms fold left-to-right
//! from `-0.0` (the IEEE additive identity `Iterator::sum` uses, which
//! childless nodes expose in the output), the injection is added last as
//! `injection + below` *only when the metric reports one* (a forced
//! `0.0 + below` would flip a childless node's `-0.0` to `+0.0`), the
//! π-model term is `r * (q / 2.0 + below)`, and optional gate terms are
//! likewise only applied when present.

use crate::cancel::CancelToken;
use crate::error::AnalysisError;

/// The rooted-tree shape the sweeps operate on.
///
/// Nodes are dense `u32` indices in `0..node_count()`. The trait is
/// deliberately minimal — parent/child navigation only — so the kernel
/// crate stays dependency-free and `RoutingTree` (or any test fixture)
/// can implement it without adapters.
///
/// Implementations must describe a tree: exactly one root (the node whose
/// [`Topology::parent_of`] is `None`), every other node reachable from it,
/// and `parent_of(child_of(v, i)) == Some(v)`.
pub trait Topology {
    /// Number of nodes; valid ids are `0..node_count()` as `u32`.
    fn node_count(&self) -> usize;
    /// The root node (the source of a routing tree).
    fn root_node(&self) -> u32;
    /// Parent of `v`, or `None` when `v` is the root.
    fn parent_of(&self, v: u32) -> Option<u32>;
    /// Number of children of `v`.
    fn child_count(&self, v: u32) -> usize;
    /// The `i`-th child of `v` (`i < child_count(v)`); order is fixed and
    /// determines the floating-point fold order at branches.
    fn child_of(&self, v: u32, i: usize) -> u32;
}

/// One additively-propagated metric over a [`Topology`].
///
/// The kernel understands four ingredients, each queried per node `v`
/// (with "the edge of `v`" meaning the wire from `v`'s parent to `v`):
///
/// * [`node_injection`](Self::node_injection) — quantity introduced at
///   `v` itself (sink pin capacitance; `None` for coupling current,
///   which injects nothing anywhere).
/// * [`edge_quantity`](Self::edge_quantity) / [`edge_resistance`](Self::edge_resistance)
///   — the series quantity and resistance of `v`'s edge (wire capacitance
///   and resistance; injected coupling current and wire resistance).
/// * [`cut`](Self::cut) — if `v` is a restoring gate (an inserted
///   buffer), the value it *presents* upstream instead of its subtree
///   accumulation (buffer input capacitance; zero current).
/// * [`gate_extra`](Self::gate_extra) — extra series term a gate at `v`
///   adds on the way down (the buffer's load-dependent delay), and
/// * [`requirement`](Self::requirement) — the leaf requirement that seeds
///   a min-merge (required arrival time; noise margin).
pub trait AdditiveMetric<T: Topology + ?Sized> {
    /// Quantity injected at node `v` itself, or `None` when the metric
    /// has no per-node source at all. `None` differs from `Some(0.0)`
    /// only in the sign of zero: a childless node's accumulation is
    /// `-0.0`, and an injectionless metric must report it unchanged
    /// (bitwise) where `0.0 + -0.0` would yield `+0.0`.
    fn node_injection(&self, t: &T, v: u32) -> Option<f64>;
    /// Series quantity of the edge above `v`; never queried at the root.
    fn edge_quantity(&self, t: &T, v: u32) -> f64;
    /// Resistance of the edge above `v`; never queried at the root.
    fn edge_resistance(&self, t: &T, v: u32) -> f64;
    /// Presented value when `v` is a cut point (restoring gate), else
    /// `None`. The default metric has no cuts.
    fn cut(&self, t: &T, v: u32) -> Option<f64> {
        let _ = (t, v);
        None
    }
    /// Extra series term added below a gate at `v` driving `below`, else
    /// `None`. The default metric has no gates.
    fn gate_extra(&self, t: &T, v: u32, below: f64) -> Option<f64> {
        let _ = (t, v, below);
        None
    }
    /// Requirement at leaf `v` seeding the min-merge, else `None`.
    fn requirement(&self, t: &T, v: u32) -> Option<f64> {
        let _ = (t, v);
        None
    }
}

/// The π-model wire term `R·(X/2 + X_below)`.
///
/// One half of the wire's own series quantity plus everything presented
/// below it, scaled by the wire resistance. This is eq. 2 (Elmore) and
/// eq. 8 (Devgan) of the paper and the *single* implementation both
/// `elmore::wire_delay` and `noise::wire_noise` now call.
#[inline]
pub fn pi_wire_term(resistance: f64, quantity: f64, below: f64) -> f64 {
    resistance * (quantity / 2.0 + below)
}

/// Checks a caller-supplied table length against the topology.
pub(crate) fn check_table(
    table: &'static str,
    expected: usize,
    got: usize,
) -> Result<(), AnalysisError> {
    if expected == got {
        Ok(())
    } else {
        Err(AnalysisError::TableMismatch {
            table,
            expected,
            got,
        })
    }
}

/// Drives `f` over every node of the subtree of `root` in postorder
/// (children before parents).
pub(crate) fn for_each_postorder<T: Topology + ?Sized>(t: &T, root: u32, mut f: impl FnMut(u32)) {
    let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
    while let Some(top) = stack.last_mut() {
        let (v, i) = *top;
        if i < t.child_count(v) {
            top.1 += 1;
            stack.push((t.child_of(v, i), 0));
        } else {
            stack.pop();
            f(v);
        }
    }
}

/// Visit stride between cancellation polls in the cancellable walkers:
/// one relaxed atomic load per this many nodes, so the poll overhead is
/// unmeasurable while an abort still lands within a few hundred visits.
const CANCEL_STRIDE: u32 = 256;

/// The post-order walk, polling `cancel` every `CANCEL_STRIDE` (256)
/// visits. A tripped token aborts the walk with
/// [`AnalysisError::Cancelled`]; whatever `f` wrote so far stays written,
/// so callers must treat their output tables as garbage on `Err`.
pub fn for_each_postorder_cancellable<T: Topology + ?Sized>(
    t: &T,
    root: u32,
    cancel: &CancelToken,
    mut f: impl FnMut(u32),
) -> Result<(), AnalysisError> {
    let mut tick = 0u32;
    let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
    while let Some(top) = stack.last_mut() {
        let (v, i) = *top;
        if i < t.child_count(v) {
            top.1 += 1;
            stack.push((t.child_of(v, i), 0));
        } else {
            stack.pop();
            tick += 1;
            if tick.is_multiple_of(CANCEL_STRIDE) {
                if let Some(reason) = cancel.cancelled() {
                    return Err(AnalysisError::Cancelled { reason });
                }
            }
            f(v);
        }
    }
    Ok(())
}

/// Drives `f` over every node of the subtree of `root` in preorder
/// (parents before children).
pub(crate) fn for_each_preorder<T: Topology + ?Sized>(t: &T, root: u32, mut f: impl FnMut(u32)) {
    let mut stack: Vec<u32> = vec![root];
    while let Some(v) = stack.pop() {
        f(v);
        for i in (0..t.child_count(v)).rev() {
            stack.push(t.child_of(v, i));
        }
    }
}

/// Postorder accumulation without cut points:
/// `down[v] = injection(v) + Σ_children (edge_quantity(c) + down[c])`.
///
/// This is downstream capacitance (eq. 1) when the metric carries wire
/// capacitance and sink loads, and downstream coupling current (eq. 7)
/// when it carries injected current. `out` is cleared and refilled.
pub fn sweep_down<T, M>(t: &T, m: &M, out: &mut Vec<f64>)
where
    T: Topology + ?Sized,
    M: AdditiveMetric<T> + ?Sized,
{
    let n = t.node_count();
    out.clear();
    out.resize(n, 0.0);
    for_each_postorder(t, t.root_node(), |v| {
        let mut below = -0.0;
        for i in 0..t.child_count(v) {
            let c = t.child_of(v, i);
            below += m.edge_quantity(t, c) + out[c as usize];
        }
        out[v as usize] = match m.node_injection(t, v) {
            Some(inj) => inj + below,
            None => below,
        };
    });
}

/// Postorder accumulation *with* cut points, producing two tables:
/// `below[v]` is the full subtree accumulation (what a gate at `v` would
/// drive), `presented[v]` is what `v` shows its parent — the metric's
/// [`AdditiveMetric::cut`] value at gates, `below[v]` elsewhere.
///
/// This is the audit path's buffered-loads/buffered-currents sweep: an
/// inserted buffer decouples its subtree, presenting its input
/// capacitance (or zero current) upstream.
pub fn sweep_down_cut<T, M>(t: &T, m: &M, below: &mut Vec<f64>, presented: &mut Vec<f64>)
where
    T: Topology + ?Sized,
    M: AdditiveMetric<T> + ?Sized,
{
    let n = t.node_count();
    below.clear();
    below.resize(n, 0.0);
    presented.clear();
    presented.resize(n, 0.0);
    for_each_postorder(t, t.root_node(), |v| {
        let mut acc = -0.0;
        for i in 0..t.child_count(v) {
            let c = t.child_of(v, i) as usize;
            acc += m.edge_quantity(t, c as u32) + presented[c];
        }
        let b = match m.node_injection(t, v) {
            Some(inj) => inj + acc,
            None => acc,
        };
        below[v as usize] = b;
        presented[v as usize] = match m.cut(t, v) {
            Some(p) => p,
            None => b,
        };
    });
}

/// [`sweep_down_cut`] with cooperative cancellation: identical tables
/// (same fold order, bitwise) when the sweep completes, or
/// [`AnalysisError::Cancelled`] if `cancel` trips mid-walk (the output
/// tables are then partially written and must be discarded).
pub fn sweep_down_cut_cancellable<T, M>(
    t: &T,
    m: &M,
    below: &mut Vec<f64>,
    presented: &mut Vec<f64>,
    cancel: &CancelToken,
) -> Result<(), AnalysisError>
where
    T: Topology + ?Sized,
    M: AdditiveMetric<T> + ?Sized,
{
    let n = t.node_count();
    below.clear();
    below.resize(n, 0.0);
    presented.clear();
    presented.resize(n, 0.0);
    for_each_postorder_cancellable(t, t.root_node(), cancel, |v| {
        let mut acc = -0.0;
        for i in 0..t.child_count(v) {
            let c = t.child_of(v, i) as usize;
            acc += m.edge_quantity(t, c as u32) + presented[c];
        }
        let b = match m.node_injection(t, v) {
            Some(inj) => inj + acc,
            None => acc,
        };
        below[v as usize] = b;
        presented[v as usize] = match m.cut(t, v) {
            Some(p) => p,
            None => b,
        };
    })
}

/// Preorder accumulation from the root:
/// `up[root] = root_term`, and for every other node
/// `up[v] = up[parent] + π(edge_r(v), edge_q(v), presented[v])`, plus the
/// metric's [`AdditiveMetric::gate_extra`] when `v` carries a gate.
///
/// With the capacitance metric and `root_term` the driver's gate delay
/// this is the Elmore arrival-time sweep (eq. 3–4); with the buffered
/// metrics it is the audit's stage-aware arrival sweep.
pub fn sweep_up<T, M>(
    t: &T,
    m: &M,
    below: &[f64],
    presented: &[f64],
    root_term: f64,
    out: &mut Vec<f64>,
) -> Result<(), AnalysisError>
where
    T: Topology + ?Sized,
    M: AdditiveMetric<T> + ?Sized,
{
    let n = t.node_count();
    check_table("below table", n, below.len())?;
    check_table("presented table", n, presented.len())?;
    out.clear();
    out.resize(n, 0.0);
    let root = t.root_node();
    for_each_preorder(t, root, |v| {
        if v == root {
            out[v as usize] = root_term;
        } else {
            let p = t.parent_of(v).expect("non-root node has a parent") as usize;
            let mut a = out[p]
                + pi_wire_term(
                    m.edge_resistance(t, v),
                    m.edge_quantity(t, v),
                    presented[v as usize],
                );
            if let Some(g) = m.gate_extra(t, v, below[v as usize]) {
                a += g;
            }
            out[v as usize] = a;
        }
    });
    Ok(())
}

/// Preorder accumulation over the *stage* rooted at `from`, visiting each
/// node with its accumulated value and letting the visitor decide whether
/// to descend (return `true`) or treat the node as a stage boundary.
///
/// `visit(from, from_term)` is called first; for a child `c` of a visited
/// node with value `acc`, the child's value is
/// `acc + π(edge_r(c), edge_q(c), presented[c])`. This is the Devgan
/// noise walk from a restoring gate (eq. 9–12): the audit stops at
/// inserted buffers, the sink-noise report walks the whole tree.
pub fn accumulate_from<T, M>(
    t: &T,
    m: &M,
    presented: &[f64],
    from: u32,
    from_term: f64,
    mut visit: impl FnMut(u32, f64) -> bool,
) -> Result<(), AnalysisError>
where
    T: Topology + ?Sized,
    M: AdditiveMetric<T> + ?Sized,
{
    check_table("presented table", t.node_count(), presented.len())?;
    let mut stack: Vec<(u32, f64)> = Vec::new();
    if visit(from, from_term) {
        stack.push((from, from_term));
    }
    while let Some((v, acc)) = stack.pop() {
        for i in (0..t.child_count(v)).rev() {
            let c = t.child_of(v, i);
            let a = acc
                + pi_wire_term(
                    m.edge_resistance(t, c),
                    m.edge_quantity(t, c),
                    presented[c as usize],
                );
            if visit(c, a) {
                stack.push((c, a));
            }
        }
    }
    Ok(())
}

/// Postorder min-merge: leaves take the metric's requirement, and every
/// internal node takes
/// `min_children ((q[c] − gate_extra(c)) − π(edge_r(c), edge_q(c), presented[c]))`,
/// folding from `+∞` in child order.
///
/// With the capacitance metric this is the timing-slack sweep; with the
/// coupling-current metric it is Devgan noise slack (eq. 12). Leaves
/// without a requirement keep `+∞`, matching the seed fold.
pub fn sweep_slack<T, M>(
    t: &T,
    m: &M,
    below: &[f64],
    presented: &[f64],
    out: &mut Vec<f64>,
) -> Result<(), AnalysisError>
where
    T: Topology + ?Sized,
    M: AdditiveMetric<T> + ?Sized,
{
    let n = t.node_count();
    check_table("below table", n, below.len())?;
    check_table("presented table", n, presented.len())?;
    out.clear();
    out.resize(n, 0.0);
    for_each_postorder(t, t.root_node(), |v| {
        out[v as usize] = merge_node(t, m, below, presented, out, v);
    });
    Ok(())
}

/// The per-node min-merge used by [`sweep_slack`] and the incremental
/// refresh — one definition so both produce bitwise-identical tables.
pub(crate) fn merge_node<T, M>(
    t: &T,
    m: &M,
    below: &[f64],
    presented: &[f64],
    q: &[f64],
    v: u32,
) -> f64
where
    T: Topology + ?Sized,
    M: AdditiveMetric<T> + ?Sized,
{
    if let Some(req) = m.requirement(t, v) {
        return req;
    }
    let mut best = f64::INFINITY;
    for i in 0..t.child_count(v) {
        let c = t.child_of(v, i);
        let mut qc = q[c as usize];
        if let Some(g) = m.gate_extra(t, c, below[c as usize]) {
            qc -= g;
        }
        best = best.min(
            qc - pi_wire_term(
                m.edge_resistance(t, c),
                m.edge_quantity(t, c),
                presented[c as usize],
            ),
        );
    }
    best
}
