//! Cooperative cancellation for long-running sweeps and optimizer runs.
//!
//! A [`CancelToken`] is a shared atomic flag plus a [`CancelReason`]. The
//! party that wants a run stopped (a server noticing a dead client, a
//! supervisor killing a stuck worker, a deadline firing) calls
//! [`CancelToken::cancel`] from any thread; the computation polls
//! [`CancelToken::cancelled`] at its inner-loop checkpoints — merge rows,
//! probe sites, postorder strides — and unwinds with a typed error within
//! microseconds instead of running to the next coarse boundary.
//!
//! The token is a single `Arc<AtomicU8>`: zero means *live*, any other
//! value encodes the first reason delivered. Cancellation is therefore
//! idempotent and first-reason-wins, and polling is one relaxed atomic
//! load — cheap enough for per-row stride checks. A default-constructed
//! token is never cancelled, so carrying one unconditionally costs
//! nothing on the happy path.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a run was cancelled. Carried in the token and surfaced in the
/// typed error so records and metrics can attribute the abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CancelReason {
    /// The per-request deadline expired while the run was in flight.
    Deadline,
    /// The serving process is shutting down.
    Shutdown,
    /// The client that asked for the result went away.
    Disconnect,
    /// A supervisor (or an injected fault standing in for one) killed
    /// the run.
    Supervisor,
}

impl CancelReason {
    /// Stable lower-snake identifier for records and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelReason::Deadline => "deadline",
            CancelReason::Shutdown => "shutdown",
            CancelReason::Disconnect => "disconnect",
            CancelReason::Supervisor => "supervisor",
        }
    }

    /// Every reason, in encoding order (metrics iterate this).
    pub const ALL: [CancelReason; 4] = [
        CancelReason::Deadline,
        CancelReason::Shutdown,
        CancelReason::Disconnect,
        CancelReason::Supervisor,
    ];

    fn code(self) -> u8 {
        match self {
            CancelReason::Deadline => 1,
            CancelReason::Shutdown => 2,
            CancelReason::Disconnect => 3,
            CancelReason::Supervisor => 4,
        }
    }

    fn from_code(code: u8) -> Option<CancelReason> {
        match code {
            1 => Some(CancelReason::Deadline),
            2 => Some(CancelReason::Shutdown),
            3 => Some(CancelReason::Disconnect),
            4 => Some(CancelReason::Supervisor),
            _ => None,
        }
    }
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Shared cancellation flag. Clones observe the same flag; see the
/// module docs for the polling contract.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, live token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. The first reason delivered wins; later
    /// calls are no-ops, so racing cancellers agree on one attribution.
    /// Returns whether *this* call delivered the winning reason, so a
    /// metrics layer can count each cancellation exactly once.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        self.flag
            .compare_exchange(0, reason.code(), Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// The reason this token was cancelled with, if it was.
    pub fn cancelled(&self) -> Option<CancelReason> {
        CancelReason::from_code(self.flag.load(Ordering::Relaxed))
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.cancelled(), None);
    }

    #[test]
    fn first_reason_wins() {
        let t = CancelToken::new();
        assert!(t.cancel(CancelReason::Disconnect), "first delivery wins");
        assert!(!t.cancel(CancelReason::Shutdown), "later calls lose");
        assert_eq!(t.cancelled(), Some(CancelReason::Disconnect));
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel(CancelReason::Deadline);
        assert_eq!(t.cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn reasons_round_trip_their_codes() {
        for r in CancelReason::ALL {
            assert_eq!(CancelReason::from_code(r.code()), Some(r));
            assert!(!r.as_str().is_empty());
        }
        assert_eq!(CancelReason::from_code(0), None);
        assert_eq!(CancelReason::from_code(200), None);
    }
}
