//! Generic additive-metric propagation kernel.
//!
//! The paper's central structural insight is that the Devgan noise metric
//! (eq. 7–12) is the *same additive postorder propagation* as Elmore delay
//! (eq. 1–4) — it just carries coupling current instead of capacitance.
//! Before this crate existed the workspace re-implemented that propagation
//! five times (`elmore.rs`, `metric.rs`, `theorem1.rs`, `audit.rs`,
//! `moments.rs`), each with its own postorder sweep, π-model wire term,
//! and panic-on-mismatch table checks.
//!
//! This crate collapses all of them onto one kernel:
//!
//! * [`Topology`] — the minimal rooted-tree shape the sweeps need. The
//!   crate is dependency-free; `buffopt_tree::RoutingTree` implements the
//!   trait downstream, which keeps the crate graph acyclic.
//! * [`AdditiveMetric`] — what a metric contributes per node (injection),
//!   per wire (series quantity and resistance), at a restoring gate
//!   (cut value and extra series term), and at a leaf (requirement).
//! * [`sweep_down`] / [`sweep_down_cut`] — postorder accumulation
//!   (downstream capacitance, downstream coupling current, buffered
//!   loads/currents with buffer-boundary cut points).
//! * [`sweep_up`] / [`accumulate_from`] — preorder accumulation (arrival
//!   times, Devgan noise from a restoring gate).
//! * [`sweep_slack`] — postorder min-merge (timing slack, noise slack).
//! * [`pi_wire_term`] — the single implementation of the π-model wire
//!   term `R·(X/2 + X_below)` shared by every instance.
//! * [`CancelToken`] / [`CancelReason`] — a shared atomic cancellation
//!   flag polled by the cancellable walkers ([`sweep_down_cut_cancellable`],
//!   [`for_each_postorder_cancellable`]) and, downstream, by the DP merge
//!   loops, so a doomed run aborts in microseconds.
//! * [`IncrementalSweep`] — dirty-subtree re-analysis: after
//!   [`IncrementalSweep::mark_dirty`], only the path to the root (with
//!   early exit on bitwise-unchanged values) is recomputed, so an
//!   optimizer probing one buffer site pays `O(depth)` instead of `O(n)`.
//! * [`AnalysisWorkspace`] — pooled tables in the spirit of the DP
//!   workspace, so batch pipelines and server workers keep per-request
//!   allocations flat.
//!
//! Every sweep reproduces the seed implementations' floating-point
//! operation order exactly; the differential suites in the downstream
//! crates prove bitwise equality over the corpus and proptest trees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod error;
mod incremental;
mod kernel;
mod workspace;

pub use cancel::{CancelReason, CancelToken};
pub use error::AnalysisError;
pub use incremental::IncrementalSweep;
pub use kernel::{
    accumulate_from, for_each_postorder_cancellable, pi_wire_term, sweep_down, sweep_down_cut,
    sweep_down_cut_cancellable, sweep_slack, sweep_up, AdditiveMetric, Topology,
};
pub use workspace::AnalysisWorkspace;
