//! Dirty-subtree incremental re-analysis.
//!
//! All three tables a metric maintains are *bottom-up*: `below[v]`,
//! `presented[v]`, and the min-merged `slack[v]` depend only on the
//! subtree of `v` (through the metric's local ingredients). Editing the
//! metric at one node — probing a buffer site, say — therefore
//! invalidates only the path from that node to the root. The refresh
//! walks exactly that path, recomputing each node with the *same*
//! per-node expressions as the full sweeps. It always steps at least to
//! the dirty node's parent (a node's edge attributes are read by its
//! parent's accumulation, so an edge-only edit leaves the node itself
//! unchanged), then stops early as soon as
//! all three recomputed values are bitwise-unchanged: from that node up,
//! every input to every ancestor recomputation is identical, so the
//! stored values already equal a from-scratch sweep. That early exit is
//! what makes a probe `O(depth)` in practice, and the bitwise test is
//! what keeps refreshed tables *exactly* equal to full resweeps (proved
//! by proptest in this crate and over real routing trees downstream).
//!
//! Probing is transactional: [`IncrementalSweep::begin_probe`] starts an
//! undo log, [`IncrementalSweep::rollback`] replays it in reverse (so a
//! rejected trial is free), and [`IncrementalSweep::commit`] drops it.

use crate::kernel::{merge_node, AdditiveMetric, Topology};

/// Overwritten table entries for one node, replayed on rollback.
#[derive(Debug, Clone, Copy)]
struct Undo {
    node: u32,
    below: f64,
    presented: f64,
    slack: f64,
}

/// Incrementally-maintained `below`/`presented`/`slack` tables for one
/// metric over one topology. See the module docs for the algorithm.
///
/// The tables are rebuilt with [`rebuild`](Self::rebuild) (a full
/// postorder pass) and then kept current with
/// [`mark_dirty`](Self::mark_dirty) + [`refresh`](Self::refresh) as the
/// metric changes at individual nodes. Capacity is retained across
/// rebuilds, so a pooled sweep allocates only on the largest net it has
/// ever seen.
#[derive(Debug, Default, Clone)]
pub struct IncrementalSweep {
    below: Vec<f64>,
    presented: Vec<f64>,
    slack: Vec<f64>,
    track_slack: bool,
    dirty: Vec<u32>,
    undo: Vec<Undo>,
    recording: bool,
}

impl IncrementalSweep {
    /// Creates an empty sweep; call [`rebuild`](Self::rebuild) before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes in the last rebuilt topology.
    pub fn len(&self) -> usize {
        self.below.len()
    }

    /// True when no topology has been rebuilt yet.
    pub fn is_empty(&self) -> bool {
        self.below.is_empty()
    }

    /// The subtree accumulation table.
    pub fn below(&self) -> &[f64] {
        &self.below
    }

    /// The cut-aware presented table.
    pub fn presented(&self) -> &[f64] {
        &self.presented
    }

    /// The min-merged requirement table; empty unless `rebuild` was asked
    /// to track it.
    pub fn slack(&self) -> &[f64] {
        &self.slack
    }

    /// Full rebuild: postorder over the whole topology, computing every
    /// node with the same expressions the kernel sweeps use. Clears any
    /// pending dirty marks and the undo log.
    pub fn rebuild<T, M>(&mut self, t: &T, m: &M, track_slack: bool)
    where
        T: Topology + ?Sized,
        M: AdditiveMetric<T> + ?Sized,
    {
        let n = t.node_count();
        self.track_slack = track_slack;
        self.below.clear();
        self.below.resize(n, 0.0);
        self.presented.clear();
        self.presented.resize(n, 0.0);
        self.slack.clear();
        self.slack.resize(if track_slack { n } else { 0 }, 0.0);
        self.dirty.clear();
        self.undo.clear();
        self.recording = false;
        crate::kernel::for_each_postorder(t, t.root_node(), |v| {
            let (b, p, s) = self.compute(t, m, v);
            self.store(v, b, p, s);
        });
    }

    /// Marks the metric as changed at `v`; the next
    /// [`refresh`](Self::refresh) recomputes `v` and its ancestors.
    pub fn mark_dirty(&mut self, v: u32) {
        self.dirty.push(v);
    }

    /// Recomputes every dirty node and its ancestors, stopping each walk
    /// as soon as a node's recomputed values are bitwise-unchanged.
    pub fn refresh<T, M>(&mut self, t: &T, m: &M)
    where
        T: Topology + ?Sized,
        M: AdditiveMetric<T> + ?Sized,
    {
        while let Some(d) = self.dirty.pop() {
            let mut cursor = Some(d);
            let mut at_dirty_node = true;
            while let Some(v) = cursor {
                let (b, p, s) = self.compute(t, m, v);
                let i = v as usize;
                let unchanged = b.to_bits() == self.below[i].to_bits()
                    && p.to_bits() == self.presented[i].to_bits()
                    && (!self.track_slack || s.to_bits() == self.slack[i].to_bits());
                // The dirty node's *edge* attributes feed its parent's
                // accumulation, so the walk must always take one step up
                // even when the node's own values are unchanged.
                if unchanged && !at_dirty_node {
                    break;
                }
                if !unchanged {
                    if self.recording {
                        self.undo.push(Undo {
                            node: v,
                            below: self.below[i],
                            presented: self.presented[i],
                            slack: if self.track_slack { self.slack[i] } else { 0.0 },
                        });
                    }
                    self.store(v, b, p, s);
                }
                at_dirty_node = false;
                cursor = t.parent_of(v);
            }
        }
    }

    /// Starts recording table overwrites so the next
    /// [`rollback`](Self::rollback) can undo them.
    pub fn begin_probe(&mut self) {
        self.undo.clear();
        self.recording = true;
    }

    /// Replays the undo log in reverse, restoring the tables to their
    /// state at [`begin_probe`](Self::begin_probe), and stops recording.
    pub fn rollback(&mut self) {
        while let Some(u) = self.undo.pop() {
            let i = u.node as usize;
            self.below[i] = u.below;
            self.presented[i] = u.presented;
            if self.track_slack {
                self.slack[i] = u.slack;
            }
        }
        self.recording = false;
        self.dirty.clear();
    }

    /// Keeps the refreshed tables and drops the undo log.
    pub fn commit(&mut self) {
        self.undo.clear();
        self.recording = false;
    }

    /// Per-node recomputation — the same expressions as
    /// [`sweep_down_cut`](crate::sweep_down_cut) and
    /// [`sweep_slack`](crate::sweep_slack), reading current child values.
    fn compute<T, M>(&self, t: &T, m: &M, v: u32) -> (f64, f64, f64)
    where
        T: Topology + ?Sized,
        M: AdditiveMetric<T> + ?Sized,
    {
        let mut acc = -0.0;
        for i in 0..t.child_count(v) {
            let c = t.child_of(v, i);
            acc += m.edge_quantity(t, c) + self.presented[c as usize];
        }
        let b = match m.node_injection(t, v) {
            Some(inj) => inj + acc,
            None => acc,
        };
        let p = match m.cut(t, v) {
            Some(cut) => cut,
            None => b,
        };
        let s = if self.track_slack {
            merge_node(t, m, &self.below, &self.presented, &self.slack, v)
        } else {
            0.0
        };
        (b, p, s)
    }

    fn store(&mut self, v: u32, b: f64, p: f64, s: f64) {
        let i = v as usize;
        self.below[i] = b;
        self.presented[i] = p;
        if self.track_slack {
            self.slack[i] = s;
        }
    }
}
