//! Typed analysis failures.

use std::fmt;

use crate::cancel::CancelReason;

/// What went wrong inside a kernel sweep.
///
/// The seed implementations `assert_eq!`-panicked on mismatched table
/// lengths, killing the calling worker; kernel-backed paths surface the
/// same conditions as values so the pipeline's degradation ladder can
/// handle them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A caller-supplied table does not match the topology's node count.
    TableMismatch {
        /// Which table was wrong (e.g. `"current table"`).
        table: &'static str,
        /// The topology's node count.
        expected: usize,
        /// The supplied table's length.
        got: usize,
    },
    /// The run's [`crate::cancel::CancelToken`] was tripped mid-sweep.
    Cancelled {
        /// Why the run was cancelled.
        reason: CancelReason,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::TableMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "{table} does not match the tree: expected {expected} entries, got {got}"
            ),
            AnalysisError::Cancelled { reason } => write!(f, "cancelled: {reason}"),
        }
    }
}

impl std::error::Error for AnalysisError {}
