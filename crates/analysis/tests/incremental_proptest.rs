//! Property tests for the incremental sweep: after any sequence of
//! metric edits, `mark_dirty` + `refresh` must leave the tables *bitwise*
//! equal to a from-scratch rebuild, and a probe (`begin_probe` … edit …
//! `rollback`) must restore them bitwise. These are the guarantees the
//! optimizer probes in the core crate lean on.

use buffopt_analysis::{sweep_down_cut, sweep_slack, AdditiveMetric, IncrementalSweep, Topology};
use proptest::prelude::*;

/// A random rooted tree: node 0 is the root, `parent[i] < i`.
#[derive(Debug, Clone)]
struct Fixture {
    parent: Vec<Option<u32>>,
    children: Vec<Vec<u32>>,
}

impl Fixture {
    /// Builds a tree of `selectors.len() + 1` nodes; selector `i` picks
    /// the parent of node `i + 1` among the nodes created before it.
    fn from_selectors(selectors: &[u8]) -> Self {
        let n = selectors.len() + 1;
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        for (i, &sel) in selectors.iter().enumerate() {
            let v = (i + 1) as u32;
            let p = u32::from(sel) % (i as u32 + 1);
            parent[v as usize] = Some(p);
            children[p as usize].push(v);
        }
        Fixture { parent, children }
    }
}

impl Topology for Fixture {
    fn node_count(&self) -> usize {
        self.parent.len()
    }
    fn root_node(&self) -> u32 {
        0
    }
    fn parent_of(&self, v: u32) -> Option<u32> {
        self.parent[v as usize]
    }
    fn child_count(&self, v: u32) -> usize {
        self.children[v as usize].len()
    }
    fn child_of(&self, v: u32, i: usize) -> u32 {
        self.children[v as usize][i]
    }
}

/// A fully table-driven metric, so proptest can edit any ingredient at
/// any node between refreshes.
#[derive(Debug, Clone)]
struct TableMetric {
    injection: Vec<f64>,
    edge_q: Vec<f64>,
    edge_r: Vec<f64>,
    cut: Vec<Option<f64>>,
    gate_r: Vec<Option<f64>>,
    requirement: Vec<Option<f64>>,
}

impl AdditiveMetric<Fixture> for TableMetric {
    fn node_injection(&self, _t: &Fixture, v: u32) -> Option<f64> {
        Some(self.injection[v as usize])
    }
    fn edge_quantity(&self, _t: &Fixture, v: u32) -> f64 {
        self.edge_q[v as usize]
    }
    fn edge_resistance(&self, _t: &Fixture, v: u32) -> f64 {
        self.edge_r[v as usize]
    }
    fn cut(&self, _t: &Fixture, v: u32) -> Option<f64> {
        self.cut[v as usize]
    }
    fn gate_extra(&self, _t: &Fixture, v: u32, below: f64) -> Option<f64> {
        self.gate_r[v as usize].map(|r| r * below)
    }
    fn requirement(&self, t: &Fixture, v: u32) -> Option<f64> {
        if t.child_count(v) == 0 {
            self.requirement[v as usize]
        } else {
            None
        }
    }
}

/// One random instance: tree selectors, per-node metric ingredients, and
/// a list of edits to apply.
type Instance = (Vec<u8>, Vec<(f64, f64, f64, u8, f64)>, Vec<(u8, u8, f64)>);

fn metric_for(fix: &Fixture, rows: &[(f64, f64, f64, u8, f64)]) -> TableMetric {
    let n = fix.node_count();
    let row = |i: usize| rows[i % rows.len().max(1)];
    let mut m = TableMetric {
        injection: Vec::with_capacity(n),
        edge_q: Vec::with_capacity(n),
        edge_r: Vec::with_capacity(n),
        cut: vec![None; n],
        gate_r: vec![None; n],
        requirement: vec![None; n],
    };
    for i in 0..n {
        let (inj, q, r, flags, aux) = if rows.is_empty() {
            (1.0, 0.5, 2.0, 0, 1.0)
        } else {
            row(i)
        };
        m.injection.push(inj);
        m.edge_q.push(q);
        m.edge_r.push(r);
        // Bit 0: cut point (never at the root); bit 1: gate term.
        if i != 0 && flags & 1 != 0 {
            m.cut[i] = Some(aux);
            m.gate_r[i] = Some(aux * 0.25);
        }
        m.requirement[i] = Some(aux + 3.0);
    }
    m
}

/// Applies one edit in place; `kind` selects the edited ingredient.
fn apply_edit(m: &mut TableMetric, node: usize, kind: u8, value: f64) {
    match kind % 4 {
        0 => m.injection[node] = value,
        1 => m.edge_q[node] = value.abs(),
        2 => {
            // Toggle the cut/gate pair, as a buffer probe would.
            if m.cut[node].is_some() {
                m.cut[node] = None;
                m.gate_r[node] = None;
            } else {
                m.cut[node] = Some(value.abs());
                m.gate_r[node] = Some(value.abs() * 0.5);
            }
        }
        _ => m.requirement[node] = Some(value),
    }
}

fn assert_tables_bitwise(a: &IncrementalSweep, b: &IncrementalSweep, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: table length");
    for i in 0..a.len() {
        assert_eq!(
            a.below()[i].to_bits(),
            b.below()[i].to_bits(),
            "{what}: below[{i}] {} vs {}",
            a.below()[i],
            b.below()[i]
        );
        assert_eq!(
            a.presented()[i].to_bits(),
            b.presented()[i].to_bits(),
            "{what}: presented[{i}]"
        );
        assert_eq!(
            a.slack()[i].to_bits(),
            b.slack()[i].to_bits(),
            "{what}: slack[{i}]"
        );
    }
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec(0u8..=255, 1..40),
        prop::collection::vec(
            (0.1f64..5.0, 0.0f64..2.0, 0.1f64..4.0, 0u8..=3, 0.2f64..3.0),
            1..40,
        ),
        prop::collection::vec((0u8..=255, 0u8..=255, -2.0f64..6.0), 1..12),
    )
}

proptest! {
    /// A rebuilt sweep agrees bitwise with the kernel's one-shot sweeps.
    #[test]
    fn rebuild_matches_kernel_sweeps(inst in instance_strategy()) {
        let (selectors, rows, _) = inst;
        let fix = Fixture::from_selectors(&selectors);
        let metric = metric_for(&fix, &rows);
        let mut sweep = IncrementalSweep::new();
        sweep.rebuild(&fix, &metric, true);
        let (mut below, mut presented, mut slack) = (Vec::new(), Vec::new(), Vec::new());
        sweep_down_cut(&fix, &metric, &mut below, &mut presented);
        sweep_slack(&fix, &metric, &below, &presented, &mut slack)
            .expect("tables sized by sweep_down_cut");
        for i in 0..fix.node_count() {
            prop_assert_eq!(sweep.below()[i].to_bits(), below[i].to_bits());
            prop_assert_eq!(sweep.presented()[i].to_bits(), presented[i].to_bits());
            prop_assert_eq!(sweep.slack()[i].to_bits(), slack[i].to_bits());
        }
    }

    /// After any edit sequence, dirty-path refresh equals a from-scratch
    /// rebuild of the edited metric — bitwise, all three tables.
    #[test]
    fn refresh_matches_rebuild(inst in instance_strategy()) {
        let (selectors, rows, edits) = inst;
        let fix = Fixture::from_selectors(&selectors);
        let mut metric = metric_for(&fix, &rows);
        let mut incremental = IncrementalSweep::new();
        incremental.rebuild(&fix, &metric, true);
        for (node_sel, kind, value) in edits {
            let node = usize::from(node_sel) % fix.node_count();
            apply_edit(&mut metric, node, kind, value);
            incremental.mark_dirty(node as u32);
            incremental.refresh(&fix, &metric);
        }
        let mut scratch = IncrementalSweep::new();
        scratch.rebuild(&fix, &metric, true);
        assert_tables_bitwise(&incremental, &scratch, "refresh vs rebuild");
    }

    /// A probe that edits, refreshes, and rolls back restores every table
    /// entry bitwise — rejected trials are exactly free.
    #[test]
    fn rollback_restores_tables_bitwise(inst in instance_strategy()) {
        let (selectors, rows, edits) = inst;
        let fix = Fixture::from_selectors(&selectors);
        let mut metric = metric_for(&fix, &rows);
        let mut sweep = IncrementalSweep::new();
        sweep.rebuild(&fix, &metric, true);
        let reference = sweep.clone();
        for (node_sel, kind, value) in edits {
            let node = usize::from(node_sel) % fix.node_count();
            let saved = metric.clone();
            sweep.begin_probe();
            apply_edit(&mut metric, node, kind, value);
            sweep.mark_dirty(node as u32);
            sweep.refresh(&fix, &metric);
            sweep.rollback();
            metric = saved;
            assert_tables_bitwise(&sweep, &reference, "rollback");
        }
    }
}
