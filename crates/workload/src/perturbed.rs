//! Perturbed net families for the subtree-memo benchmarks.
//!
//! A memo table earns its keep when a stream of nets *shares structure*:
//! ECO iterations, repeated macro placements, incremental re-optimization.
//! This module manufactures that stream deterministically: take a base
//! routing tree and emit a family of variants, each differing by a few
//! **local** edits while the rest of the tree — and therefore most of its
//! canonical subtree digests — is untouched:
//!
//! * **sink-cap jitter** — scale one sink's load capacitance (a cell swap
//!   or a re-characterized pin);
//! * **wire resegmenting** — split one edge in two at its midpoint (a
//!   router detour that preserves total RC);
//! * **subtree graft** — split an edge and hang a short stub with a new
//!   non-critical sink off the midpoint (an ECO tap).
//!
//! Every edit invalidates only the digests on the edited node's
//! root path; sibling subtrees keep their keys and stay warm in the
//! [`buffopt::MemoTable`](../buffopt/struct.MemoTable.html).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use buffopt_tree::{NodeId, NodeKind, RoutingTree, TreeBuilder, Wire};

/// Knobs for [`perturbed_family`]. All randomness flows through `seed`,
/// so a family is bit-for-bit reproducible.
#[derive(Debug, Clone)]
pub struct PerturbationConfig {
    /// Seed for the family's edit stream.
    pub seed: u64,
    /// Number of variants to emit (the base tree is not included).
    pub variants: usize,
    /// Local edits applied to each variant.
    pub edits_per_variant: usize,
    /// Relative sink-capacitance jitter: a jittered sink's load scales by
    /// a factor drawn from `[1 - cap_jitter, 1 + cap_jitter]`.
    pub cap_jitter: f64,
    /// Load capacitance of grafted stub sinks, in farads.
    pub stub_cap: f64,
}

impl Default for PerturbationConfig {
    fn default() -> Self {
        PerturbationConfig {
            seed: 0xFA41_17EC,
            variants: 8,
            edits_per_variant: 2,
            cap_jitter: 0.2,
            stub_cap: 5e-15,
        }
    }
}

/// The edit plan for one variant, keyed by base-tree node.
#[derive(Default)]
struct EditPlan {
    /// Sink → capacitance scale factor.
    jitter: HashMap<NodeId, f64>,
    /// Non-source node → split the edge above it at its midpoint.
    resegment: HashMap<NodeId, bool>,
    /// Non-source node → split the edge above it and graft a stub sink
    /// (with this name) at the midpoint. Implies the split of `resegment`.
    graft: HashMap<NodeId, String>,
}

/// Emits `cfg.variants` deterministic local-edit variants of `base`.
///
/// Each variant is a fresh [`RoutingTree`] rebuilt from `base` with
/// `cfg.edits_per_variant` edits applied; sink names, feasibility flags,
/// and child order are preserved everywhere an edit does not touch.
///
/// # Panics
///
/// Panics if `base` is degenerate (no sinks) or `cfg.cap_jitter >= 1`
/// (which could drive a sink capacitance negative).
pub fn perturbed_family(base: &RoutingTree, cfg: &PerturbationConfig) -> Vec<RoutingTree> {
    assert!(!base.sinks().is_empty(), "base tree must have sinks");
    assert!(
        cfg.cap_jitter < 1.0,
        "cap_jitter must stay below 1 to keep capacitances positive"
    );
    let editable: Vec<NodeId> = base
        .node_ids()
        .filter(|&v| base.parent(v).is_some())
        .collect();
    (0..cfg.variants)
        .map(|i| {
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut plan = EditPlan::default();
            for e in 0..cfg.edits_per_variant {
                match rng.gen_range(0..3u8) {
                    0 => {
                        let sink = base.sinks()[rng.gen_range(0..base.sinks().len())];
                        let factor = 1.0 + cfg.cap_jitter * rng.gen_range(-1.0..1.0);
                        plan.jitter.insert(sink, factor);
                    }
                    1 => {
                        let v = editable[rng.gen_range(0..editable.len())];
                        plan.resegment.insert(v, true);
                    }
                    _ => {
                        let v = editable[rng.gen_range(0..editable.len())];
                        plan.graft.insert(v, format!("stub_v{i}_e{e}"));
                    }
                }
            }
            rebuild(base, cfg, &plan)
        })
        .collect()
}

/// Rebuilds `base` with `plan` applied: a preorder walk that re-attaches
/// every node, inserting midpoints and stubs where the plan says so.
fn rebuild(base: &RoutingTree, cfg: &PerturbationConfig, plan: &EditPlan) -> RoutingTree {
    let stub_margin = base
        .sink_spec(base.sinks()[0])
        .expect("sink ids carry specs")
        .noise_margin;
    let mut b = TreeBuilder::new(*base.driver());
    let mut map: Vec<Option<NodeId>> = vec![None; base.len()];
    map[base.source().index()] = Some(b.source());
    for v in base.preorder() {
        let Some(p) = base.parent(v) else { continue };
        let new_parent = map[p.index()].expect("preorder visits parents first");
        let wire = *base.parent_wire(v).expect("non-source nodes carry wires");
        // Edge edits: split the edge above `v`, optionally grafting a
        // stub sink (non-critical: infinite required arrival time) at the
        // fresh midpoint. Graft subsumes a plain resegment of the same
        // edge.
        let grafted = plan.graft.get(&v);
        let attach_at = if grafted.is_some() || plan.resegment.contains_key(&v) {
            let mid = b
                .add_internal(new_parent, wire.split(2))
                .expect("midpoint attaches below a live parent");
            if let Some(name) = grafted {
                let stub = Wire::from_rc(
                    wire.resistance / 4.0,
                    wire.capacitance / 4.0,
                    wire.length / 4.0,
                );
                b.add_sink(
                    mid,
                    stub,
                    buffopt_tree::SinkSpec::new(cfg.stub_cap, f64::INFINITY, stub_margin)
                        .with_name(name.clone()),
                )
                .expect("stub attaches below the midpoint");
            }
            mid
        } else {
            new_parent
        };
        let half = if attach_at == new_parent {
            wire
        } else {
            wire.split(2)
        };
        let new_v = match &base.node(v).kind {
            NodeKind::Source(_) => unreachable!("source has no parent"),
            NodeKind::Sink(spec) => {
                let mut spec = spec.clone();
                if let Some(f) = plan.jitter.get(&v) {
                    spec.capacitance *= f;
                }
                b.add_sink(attach_at, half, spec)
            }
            NodeKind::Internal { feasible: true } => b.add_internal(attach_at, half),
            NodeKind::Internal { feasible: false } => b.add_infeasible_internal(attach_at, half),
        }
        .expect("rebuild re-attaches every base node");
        map[v.index()] = Some(new_v);
    }
    b.build().expect("base had sinks, so does every variant")
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffopt_tree::{Driver, SinkSpec, Technology};

    /// A three-level, four-sink base with named sinks.
    fn base_tree() -> RoutingTree {
        let tech = Technology::global_layer();
        let mut b = TreeBuilder::new(Driver::new(200.0, 2e-11));
        let trunk = b.add_internal(b.source(), tech.wire(2_000.0)).unwrap();
        let left = b.add_internal(trunk, tech.wire(1_500.0)).unwrap();
        let right = b.add_internal(trunk, tech.wire(1_200.0)).unwrap();
        for (i, (at, len)) in [
            (left, 900.0),
            (left, 700.0),
            (right, 1_100.0),
            (right, 600.0),
        ]
        .into_iter()
        .enumerate()
        {
            b.add_sink(
                at,
                tech.wire(len),
                SinkSpec::new(18e-15, 2.2e-9, 0.8).with_name(format!("s{i}")),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn family_is_deterministic() {
        let base = base_tree();
        let cfg = PerturbationConfig::default();
        let a = perturbed_family(&base, &cfg);
        let b = perturbed_family(&base, &cfg);
        assert_eq!(a.len(), cfg.variants);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_families() {
        let base = base_tree();
        let a = perturbed_family(&base, &PerturbationConfig::default());
        let b = perturbed_family(
            &base,
            &PerturbationConfig {
                seed: 1,
                ..PerturbationConfig::default()
            },
        );
        assert!(a.iter().zip(&b).any(|(x, y)| x != y));
    }

    #[test]
    fn variants_are_well_formed_and_keep_every_base_sink() {
        let base = base_tree();
        let base_names: Vec<String> = base
            .sinks()
            .iter()
            .filter_map(|&s| base.sink_spec(s).and_then(|sp| sp.name.clone()))
            .collect();
        for tree in perturbed_family(&base, &PerturbationConfig::default()) {
            assert!(tree.check_invariants().is_empty());
            assert!(tree.sinks().len() >= base.sinks().len());
            let names: Vec<Option<&String>> = tree
                .sinks()
                .iter()
                .map(|&s| tree.sink_spec(s).and_then(|sp| sp.name.as_ref()))
                .collect();
            for n in &base_names {
                assert!(names.contains(&Some(n)), "base sink {n} lost");
            }
        }
    }

    #[test]
    fn edits_change_trees_but_preserve_edge_totals() {
        let base = base_tree();
        let family = perturbed_family(&base, &PerturbationConfig::default());
        assert!(
            family.iter().any(|t| *t != base),
            "default config must actually edit something"
        );
        for tree in &family {
            // Splits conserve wire RC; only grafted stubs add length.
            assert!(tree.total_wire_length() >= base.total_wire_length() - 1e-9);
        }
    }

    #[test]
    fn zero_edits_reproduces_the_base_structure() {
        let base = base_tree();
        let cfg = PerturbationConfig {
            edits_per_variant: 0,
            variants: 2,
            ..PerturbationConfig::default()
        };
        for tree in perturbed_family(&base, &cfg) {
            assert_eq!(tree.len(), base.len());
            assert_eq!(tree.sinks().len(), base.sinks().len());
            assert!((tree.total_capacitance() - base.total_capacitance()).abs() < 1e-24);
            assert!((tree.total_wire_length() - base.total_wire_length()).abs() < 1e-9);
        }
    }
}
