use buffopt_tree::Technology;

/// The sink-count distribution of the population, as count buckets.
///
/// The paper's Table I reports the distribution of the 500 test nets'
/// sink counts; the preset below reproduces its shape (the overwhelming
/// majority of large-capacitance global nets have one or two sinks, with
/// a thin tail beyond ten).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkDistribution {
    /// `(min_sinks, max_sinks, net_count)` buckets; sink counts are drawn
    /// uniformly within a bucket.
    pub buckets: Vec<(usize, usize, usize)>,
}

impl SinkDistribution {
    /// The Table I shape: 500 nets, dominated by 1–2 sink nets.
    pub fn paper_table1() -> Self {
        SinkDistribution {
            buckets: vec![
                (1, 1, 324),
                (2, 2, 113),
                (3, 3, 31),
                (4, 4, 11),
                (5, 5, 8),
                (6, 10, 9),
                (11, 18, 4),
            ],
        }
    }

    /// Total net count across buckets.
    pub fn total(&self) -> usize {
        self.buckets.iter().map(|&(_, _, n)| n).sum()
    }

    /// A flat list of sink counts (bucket order; the generator shuffles).
    pub(crate) fn expand(&self, mut pick: impl FnMut(usize, usize) -> usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.total());
        for &(lo, hi, n) in &self.buckets {
            for _ in 0..n {
                out.push(pick(lo, hi));
            }
        }
        out
    }
}

/// Configuration of the synthetic population and the estimation-mode
/// noise environment.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// RNG seed; the whole population is a pure function of the config.
    pub seed: u64,
    /// Number of nets (`500` in the paper). When this differs from the
    /// distribution's total, sink counts are sampled proportionally.
    pub net_count: usize,
    /// Sink-count distribution.
    pub distribution: SinkDistribution,
    /// Die edge length (µm); pins are placed inside this square.
    pub die_size: f64,
    /// Minimum net half-perimeter (µm) — the paper keeps only the
    /// largest-capacitance nets, i.e. long global routes.
    pub min_half_perimeter: f64,
    /// Maximum net half-perimeter (µm).
    pub max_half_perimeter: f64,
    /// Wire technology.
    pub technology: Technology,
    /// Coupling-to-total-capacitance ratio λ (paper: 0.7).
    pub coupling_ratio: f64,
    /// Supply voltage (paper: 1.8 V).
    pub vdd: f64,
    /// Aggressor rise time (paper: 0.25 ns).
    pub rise_time: f64,
    /// Noise margin for every gate (paper: 0.8 V).
    pub noise_margin: f64,
    /// Required arrival time at every sink (s); the paper's tables use
    /// equal slacks, which makes slack maximization equal to minimizing
    /// the worst source-to-sink delay (footnote 6).
    pub required_arrival_time: f64,
    /// Driver catalog as `(resistance Ω, intrinsic delay s)` power levels.
    pub drivers: Vec<(f64, f64)>,
    /// Sink input-capacitance range (F).
    pub sink_cap_range: (f64, f64),
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0xB0FF_0997,
            net_count: 500,
            distribution: SinkDistribution::paper_table1(),
            die_size: 15_000.0,
            min_half_perimeter: 1_200.0,
            max_half_perimeter: 9_000.0,
            technology: Technology::global_layer(),
            coupling_ratio: 0.7,
            vdd: 1.8,
            rise_time: 0.25e-9,
            noise_margin: 0.8,
            required_arrival_time: 1.2e-9,
            drivers: vec![
                (150.0, 25.0e-12),
                (250.0, 30.0e-12),
                (400.0, 35.0e-12),
                (650.0, 40.0e-12),
            ],
            sink_cap_range: (5.0e-15, 30.0e-15),
        }
    }
}

impl WorkloadConfig {
    /// The estimation-mode aggressor slope `µ = V_dd / t_rise` (V/s).
    pub fn slope(&self) -> f64 {
        self.vdd / self.rise_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_500() {
        assert_eq!(SinkDistribution::paper_table1().total(), 500);
    }

    #[test]
    fn expand_respects_buckets() {
        let d = SinkDistribution {
            buckets: vec![(1, 1, 3), (5, 7, 2)],
        };
        let counts = d.expand(|lo, hi| (lo + hi) / 2);
        assert_eq!(counts, vec![1, 1, 1, 6, 6]);
    }

    #[test]
    fn default_slope_is_7_2_v_per_ns() {
        let cfg = WorkloadConfig::default();
        assert!((cfg.slope() - 7.2e9).abs() < 1.0);
    }
}
