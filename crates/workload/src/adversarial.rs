//! Adversarial nets for exercising the fault-isolated pipeline.
//!
//! The generated population (`population.rs`) is deliberately benign —
//! every net is optimizable. Robustness testing needs the opposite:
//! nets engineered to defeat each layer of defence, so batch drivers can
//! prove that one bad net degrades *that net only*. Each constructor
//! documents which defence it attacks.

use buffopt_noise::NoiseScenario;
use buffopt_tree::{Driver, RoutingTree, SinkSpec, Technology, TreeBuilder, Wire};

use crate::estimation_scenario;
use crate::WorkloadConfig;

/// A healthy single-sink global net: long enough to carry a noise
/// violation, relaxed enough in timing that BuffOpt's Problem 3 serves
/// it. The batch-pipeline control case.
pub fn valid_net(config: &WorkloadConfig) -> (RoutingTree, NoiseScenario) {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(300.0, 1e-11));
    b.add_sink(
        b.source(),
        tech.wire(8_000.0),
        SinkSpec::new(2e-14, 3e-9, config.noise_margin),
    )
    .expect("one sink under the source");
    let tree = b.build().expect("two-node tree");
    let scenario = estimation_scenario(&tree, config);
    (tree, scenario)
}

/// A net whose timing cannot be met by any buffering: the required
/// arrival time is below the pure flight time of the wire. Attacks the
/// ladder's first rung — Problem 3 must fall through to Problem 2 (or
/// further), not loop or panic.
pub fn timing_infeasible_net(config: &WorkloadConfig) -> (RoutingTree, NoiseScenario) {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(500.0, 1e-11));
    b.add_sink(
        b.source(),
        tech.wire(20_000.0),
        SinkSpec::new(2e-14, 1e-12, config.noise_margin),
    )
    .expect("one sink under the source");
    let tree = b.build().expect("two-node tree");
    let scenario = estimation_scenario(&tree, config);
    (tree, scenario)
}

/// A net no buffering can quiet. On distributed wires Algorithm 2 can
/// always rescue a positive margin by sliding a buffer arbitrarily close
/// to the sink, so true infeasibility needs a **lumped** load: a
/// zero-length wire (a pre-routed macro pin, say) whose own coupled
/// noise `Rb·I_w + R_w·I_w/2` exceeds every buffer's input margin. No
/// insertion point exists inside it, so every ladder rung fails and only
/// the unbuffered diagnosis remains. Attacks the ladder's bottom — the
/// pipeline must classify it infeasible, not loop.
pub fn noise_infeasible_net(config: &WorkloadConfig) -> (RoutingTree, NoiseScenario) {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(300.0, 1e-11));
    let elbow = b
        .add_internal(b.source(), tech.wire(5_000.0))
        .expect("stem under the source");
    // 2 pF of lumped coupling through 100 Ω: ~1.2 V of unavoidable noise
    // against sub-volt margins, for any buffer in the catalog.
    b.add_sink(
        elbow,
        Wire::from_rc(100.0, 2e-12, 0.0),
        SinkSpec::new(2e-14, 2e-9, config.noise_margin),
    )
    .expect("lumped sink under the elbow");
    let tree = b.build().expect("three-node tree");
    let scenario = estimation_scenario(&tree, config);
    (tree, scenario)
}

/// A long many-node chain that busts small tree-node budgets on every
/// rung (the DP rungs see it segmented, Algorithm 2 sees it raw, and
/// both must report `buffopt::CoreError::BudgetExceeded` rather than
/// grind). Under an unlimited budget it is just a big valid net.
pub fn budget_busting_net(
    config: &WorkloadConfig,
    internal_nodes: usize,
) -> (RoutingTree, NoiseScenario) {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(300.0, 1e-11));
    let mut at = b.source();
    for _ in 0..internal_nodes {
        at = b
            .add_internal(at, tech.wire(1_000.0))
            .expect("chain extends");
    }
    b.add_sink(
        at,
        tech.wire(1_000.0),
        SinkSpec::new(2e-14, 1e-7, config.noise_margin),
    )
    .expect("sink terminates the chain");
    let tree = b.build().expect("chain tree");
    let scenario = estimation_scenario(&tree, config);
    (tree, scenario)
}

/// Malformed net-format text (a cycle plus a bad number) for parser
/// paths: `buffopt_netlist::parse` must reject it with a typed error,
/// and a batch must carry it as a parse-error record.
pub fn malformed_net_text() -> &'static str {
    "driver 300 oops\nwire a b 1 1e-15 1\nwire b a 1 1e-15 1\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_consistent_pairs() {
        let cfg = WorkloadConfig::default();
        for (tree, scenario) in [
            valid_net(&cfg),
            timing_infeasible_net(&cfg),
            noise_infeasible_net(&cfg),
            budget_busting_net(&cfg, 40),
        ] {
            assert!(tree.check_invariants().is_empty());
            assert_eq!(scenario.len(), tree.len());
        }
    }

    #[test]
    fn budget_buster_has_the_requested_size() {
        let cfg = WorkloadConfig::default();
        let (tree, _) = budget_busting_net(&cfg, 40);
        // source + 40 internals + 1 sink
        assert_eq!(tree.len(), 42);
    }

    #[test]
    fn noise_infeasible_really_is() {
        let cfg = WorkloadConfig::default();
        let (tree, scenario) = noise_infeasible_net(&cfg);
        let sink = tree.sinks()[0];
        let wire = tree.parent_wire(sink).expect("lumped wire");
        let i_w = scenario.factor(sink) * wire.capacitance;
        // Even the strongest (lowest-resistance) buffer in the catalog,
        // placed right above the lumped wire, leaves more noise at the
        // sink than any margin in the library allows.
        let lib = buffopt_buffers::catalog::ibm_like();
        let best = lib.buffer(lib.min_resistance().expect("catalog"));
        let floor = best.resistance * i_w + wire.resistance * i_w / 2.0;
        let most_tolerant = lib.iter().map(|b| b.noise_margin).fold(0.0, f64::max);
        assert!(floor > most_tolerant.max(cfg.noise_margin));
    }

    #[test]
    fn timing_infeasible_really_is() {
        let cfg = WorkloadConfig::default();
        let (tree, _) = timing_infeasible_net(&cfg);
        // RAT is below even the zero-resistance flight time, so no
        // buffering can save it.
        assert!(buffopt_tree::slack::source_slack(&tree) < 0.0);
    }
}
