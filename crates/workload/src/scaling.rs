//! Large-net generator for the DP scaling benches.
//!
//! The paper's population (Table I) is dominated by one- and two-sink
//! global nets — useless for probing how the DP's merge pressure grows
//! with fan-out. This module generates single nets with an exact sink
//! count (64–512 in the bench tier), a configurable branching shape
//! between a caterpillar chain and a balanced binary tree, and
//! log-uniform wire lengths, all deterministic from one seed so the
//! scaling tier in `BENCH_dp.json` and any future serve bench draw
//! bit-identical inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use buffopt_tree::{segment, Driver, NodeId, RoutingTree, SinkSpec, Technology, TreeBuilder};

/// Configuration for [`scaling_net`].
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Seed for the single `StdRng` all randomness flows through.
    pub seed: u64,
    /// Exact number of sinks in the generated net.
    pub sinks: usize,
    /// Branching shape: `0.0` degenerates to a caterpillar chain (every
    /// split peels off one sink), `1.0` to a balanced binary tree (every
    /// split halves the remainder); values between interpolate the split
    /// point, which is then jittered ±1 to avoid perfectly regular trees.
    pub branch_balance: f64,
    /// Lower bound of the log-uniform per-edge wire length (µm).
    pub min_wire_um: f64,
    /// Upper bound of the log-uniform per-edge wire length (µm).
    pub max_wire_um: f64,
    /// Sink pin capacitance (farads).
    pub sink_cap: f64,
    /// Sink required arrival times are uniform in this range (ns).
    pub rat_ns: (f64, f64),
    /// Noise margin at every sink (volts, normalized) — the paper uses a
    /// uniform 0.8 V.
    pub noise_margin: f64,
    /// Maximum wire-segment length handed to the segmenter (µm); shorter
    /// segments mean more feasible buffer sites.
    pub segment_um: f64,
    /// The net's driver.
    pub driver: Driver,
}

impl Default for ScalingConfig {
    /// 64 sinks, a mildly unbalanced tree, global-layer route lengths
    /// comparable to the population generator's long nets.
    fn default() -> Self {
        ScalingConfig {
            seed: 0x5ca1ab1e,
            sinks: 64,
            branch_balance: 0.7,
            min_wire_um: 200.0,
            max_wire_um: 2_000.0,
            sink_cap: 25e-15,
            rat_ns: (1.5, 4.0),
            noise_margin: 0.8,
            segment_um: 400.0,
            driver: Driver::new(250.0, 20e-12),
        }
    }
}

/// Generates one deterministic large net from `config`.
///
/// The tree is built by recursive binary splits: a subtree that owes `n`
/// sinks attaches an internal node and divides the remainder per
/// `branch_balance`, bottoming out in sinks. Every edge length is drawn
/// log-uniform from the configured range; the finished tree is run
/// through the wire segmenter so the DP sees realistic buffer-site
/// density.
///
/// # Panics
///
/// Panics if `sinks` is zero, the wire-length range is not positive and
/// ordered, or `branch_balance` is outside `[0, 1]`.
pub fn scaling_net(config: &ScalingConfig) -> RoutingTree {
    assert!(config.sinks > 0, "sink count must be positive");
    assert!(
        config.min_wire_um > 0.0 && config.max_wire_um >= config.min_wire_um,
        "wire-length range must be positive and ordered"
    );
    assert!(
        (0.0..=1.0).contains(&config.branch_balance),
        "branch_balance must lie in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(config.driver);
    let (lo, hi) = (config.min_wire_um.ln(), config.max_wire_um.ln());
    let edge = |rng: &mut StdRng| tech.wire(rng.gen_range(lo..=hi).exp());
    // Explicit worklist instead of recursion: a caterpillar at 512 sinks
    // would otherwise nest 500+ frames.
    let mut work: Vec<(NodeId, usize)> = vec![(b.source(), config.sinks)];
    while let Some((parent, n)) = work.pop() {
        if n == 1 {
            let rat = rng.gen_range(config.rat_ns.0..=config.rat_ns.1) * 1e-9;
            let w = edge(&mut rng);
            b.add_sink(
                parent,
                w,
                SinkSpec::new(config.sink_cap, rat, config.noise_margin),
            )
            .expect("builder accepts sinks");
            continue;
        }
        let w = edge(&mut rng);
        let node = b
            .add_internal(parent, w)
            .expect("builder accepts internals");
        // Interpolate the split between "peel one off" and "halve", then
        // jitter so the shape is not perfectly regular.
        let half = n / 2;
        let mut left = 1 + ((half.saturating_sub(1)) as f64 * config.branch_balance) as usize;
        if left > 1 && left < n - 1 && rng.gen_bool(0.5) {
            left += if rng.gen_bool(0.5) { 1 } else { 0 };
        }
        let left = left.clamp(1, n - 1);
        work.push((node, n - left));
        work.push((node, left));
    }
    let tree = b.build().expect("split trees are well-formed");
    segment::segment_wires(&tree, config.segment_um)
        .expect("positive segment length")
        .tree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fingerprint(t: &RoutingTree) -> (usize, usize, u64) {
        let total: f64 = (0..t.len())
            .filter_map(|i| t.parent_wire(NodeId::from_index(i)))
            .map(|w| w.length)
            .sum();
        (t.len(), t.sinks().len(), total.to_bits())
    }

    #[test]
    fn exact_sink_count_and_deterministic() {
        for sinks in [1, 2, 64, 257] {
            let cfg = ScalingConfig {
                sinks,
                ..ScalingConfig::default()
            };
            let a = scaling_net(&cfg);
            let b = scaling_net(&cfg);
            assert_eq!(a.sinks().len(), sinks);
            assert_eq!(fingerprint(&a), fingerprint(&b), "same seed, same net");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = scaling_net(&ScalingConfig::default());
        let b = scaling_net(&ScalingConfig {
            seed: 1,
            ..ScalingConfig::default()
        });
        assert_ne!(fingerprint(&a).2, fingerprint(&b).2);
    }

    #[test]
    fn balance_controls_depth() {
        let depth = |t: &RoutingTree| {
            (0..t.len())
                .map(|i| {
                    let mut d = 0;
                    let mut n = NodeId::from_index(i);
                    while let Some(p) = t.parent(n) {
                        d += 1;
                        n = p;
                    }
                    d
                })
                .max()
                .unwrap_or(0)
        };
        let mk = |balance: f64| {
            scaling_net(&ScalingConfig {
                sinks: 128,
                branch_balance: balance,
                // One segment per edge keeps depth comparable across shapes.
                segment_um: 2_000.0,
                ..ScalingConfig::default()
            })
        };
        assert!(
            depth(&mk(0.0)) > 4 * depth(&mk(1.0)),
            "caterpillar must be much deeper than balanced"
        );
    }
}
