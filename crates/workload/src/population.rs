use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use buffopt_steiner::{steiner_tree, NetGeometry, Point};
use buffopt_tree::{Driver, RoutingTree, SinkSpec};

use crate::config::WorkloadConfig;

/// One generated net: its geometry and the Steiner-estimated routing
/// tree.
#[derive(Debug, Clone)]
pub struct GeneratedNet {
    /// Stable index within the population.
    pub id: usize,
    /// Pin locations and driver.
    pub geometry: NetGeometry,
    /// The routing tree built by the Steiner estimator.
    pub tree: RoutingTree,
}

impl GeneratedNet {
    /// Number of sinks.
    pub fn sink_count(&self) -> usize {
        self.tree.sinks().len()
    }
}

/// Generates the deterministic net population described by `config`.
///
/// Each net draws a sink count from the configured distribution, places
/// its source uniformly on the die, spreads sinks inside a bounding box
/// whose half-perimeter is log-uniform between the configured limits
/// (biasing toward the long global routes the paper selects), and runs
/// the Steiner estimator.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no drivers, zero nets, or
/// an empty distribution).
pub fn generate(config: &WorkloadConfig) -> Vec<GeneratedNet> {
    assert!(config.net_count > 0, "net count must be positive");
    assert!(
        !config.drivers.is_empty(),
        "driver catalog must be non-empty"
    );
    assert!(
        config.distribution.total() > 0,
        "sink distribution must be non-empty"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Draw sink counts: expand the distribution, shuffle, and resize to
    // net_count by cycling (exact when net_count == distribution total).
    let mut counts = config.distribution.expand(|lo, hi| rng.gen_range(lo..=hi));
    counts.shuffle(&mut rng);
    while counts.len() < config.net_count {
        let idx = rng.gen_range(0..counts.len());
        let c = counts[idx];
        counts.push(c);
    }
    counts.truncate(config.net_count);

    let mut nets = Vec::with_capacity(config.net_count);
    for (id, &sink_count) in counts.iter().enumerate() {
        // Log-uniform half-perimeter: long nets dominate but the lower
        // decade is represented (those are the ~15 % that pass noise).
        let log_lo = config.min_half_perimeter.ln();
        let log_hi = config.max_half_perimeter.ln();
        let hp = (rng.gen_range(log_lo..log_hi)).exp();
        // Aspect ratio of the net bounding box.
        let aspect: f64 = rng.gen_range(0.25..0.75);
        let w = hp * aspect;
        let h = hp - w;
        // Source placed somewhere on the die such that the box fits.
        let sx = rng.gen_range(0.0..(config.die_size - w).max(1.0));
        let sy = rng.gen_range(0.0..(config.die_size - h).max(1.0));
        // Source at a box corner (global nets run away from the driver).
        let source = Point::new(sx, sy);
        let (rso, dso) = config.drivers[rng.gen_range(0..config.drivers.len())];

        let mut sinks = Vec::with_capacity(sink_count);
        for i in 0..sink_count {
            // The first sink pins the far corner so the half-perimeter is
            // exact; the rest scatter inside the box.
            let (px, py) = if i == 0 {
                (sx + w, sy + h)
            } else {
                (
                    sx + rng.gen_range(0.2..1.0) * w,
                    sy + rng.gen_range(0.2..1.0) * h,
                )
            };
            let cap = rng.gen_range(config.sink_cap_range.0..=config.sink_cap_range.1);
            sinks.push((
                Point::new(px, py),
                SinkSpec::new(cap, config.required_arrival_time, config.noise_margin)
                    .with_name(format!("net{id}_s{i}")),
            ));
        }
        let geometry = NetGeometry {
            source,
            driver: Driver::new(rso, dso),
            sinks,
        };
        let tree =
            steiner_tree(&geometry, &config.technology).expect("generated nets always have sinks");
        nets.push(GeneratedNet { id, geometry, tree });
    }
    nets
}

/// Histogram of sink counts: `(bucket label, count)` using the paper's
/// Table I buckets.
pub fn sink_histogram(nets: &[GeneratedNet]) -> Vec<(String, usize)> {
    let buckets: [(usize, usize, &str); 7] = [
        (1, 1, "1"),
        (2, 2, "2"),
        (3, 3, "3"),
        (4, 4, "4"),
        (5, 5, "5"),
        (6, 10, "6-10"),
        (11, usize::MAX, ">10"),
    ];
    buckets
        .iter()
        .map(|&(lo, hi, label)| {
            let n = nets
                .iter()
                .filter(|net| {
                    let s = net.sink_count();
                    s >= lo && s <= hi
                })
                .count();
            (label.to_string(), n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SinkDistribution;

    #[test]
    fn population_is_deterministic() {
        let cfg = WorkloadConfig {
            net_count: 25,
            ..WorkloadConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), 25);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tree, y.tree);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WorkloadConfig {
            net_count: 10,
            ..WorkloadConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&WorkloadConfig {
            seed: 1,
            ..cfg.clone()
        });
        assert!(a.iter().zip(&b).any(|(x, y)| x.tree != y.tree));
    }

    #[test]
    fn full_population_matches_table1_histogram() {
        let cfg = WorkloadConfig::default();
        let nets = generate(&cfg);
        assert_eq!(nets.len(), 500);
        let hist = sink_histogram(&nets);
        let expect = [324, 113, 31, 11, 8, 9, 4];
        for ((label, got), want) in hist.iter().zip(expect) {
            assert_eq!(*got, want, "bucket {label}");
        }
    }

    #[test]
    fn half_perimeters_within_bounds() {
        let cfg = WorkloadConfig {
            net_count: 100,
            ..WorkloadConfig::default()
        };
        for net in generate(&cfg) {
            let hp = net.geometry.half_perimeter();
            assert!(
                hp >= cfg.min_half_perimeter * 0.99 && hp <= cfg.max_half_perimeter * 1.01,
                "half-perimeter {hp} outside [{}, {}]",
                cfg.min_half_perimeter,
                cfg.max_half_perimeter
            );
        }
    }

    #[test]
    fn trees_are_well_formed() {
        let cfg = WorkloadConfig {
            net_count: 60,
            ..WorkloadConfig::default()
        };
        for net in generate(&cfg) {
            assert!(net.tree.check_invariants().is_empty());
            assert!(net.sink_count() >= 1);
            assert!(net.tree.total_capacitance() > 0.0);
        }
    }

    #[test]
    fn custom_distribution_respected() {
        let cfg = WorkloadConfig {
            net_count: 12,
            distribution: SinkDistribution {
                buckets: vec![(3, 3, 12)],
            },
            ..WorkloadConfig::default()
        };
        for net in generate(&cfg) {
            assert_eq!(net.sink_count(), 3);
        }
    }

    #[test]
    fn most_nets_violate_noise_in_estimation_mode() {
        // The population is calibrated so the large majority of nets have
        // estimation-mode violations (paper: 423/500 by the metric).
        use buffopt_noise::metric::NoiseReport;
        let cfg = WorkloadConfig::default();
        let nets = generate(&cfg);
        let violating = nets
            .iter()
            .filter(|net| {
                let s = crate::estimation_scenario(&net.tree, &cfg);
                NoiseReport::analyze(&net.tree, &s).has_violation()
            })
            .count();
        assert!(
            (300..=490).contains(&violating),
            "violating nets = {violating} of 500; population calibration drifted"
        );
    }
}
