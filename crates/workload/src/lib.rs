//! Synthetic microprocessor workload for the paper's experiments.
//!
//! The paper evaluates on "a set of 500 nets from a modern PowerPC
//! microprocessor design … the 500 nets with largest total capacitances
//! were chosen for analysis, since these nets were most likely to have
//! noise violations" (Section V). That design data is proprietary, so
//! this crate generates a **deterministic, seeded population** with the
//! same observable characteristics:
//!
//! * the sink-count distribution of Table I (skewed heavily toward one-
//!   and two-sink global nets);
//! * long, high-capacitance routes (millimetres of global wiring) so that
//!   the large majority of nets carry estimation-mode noise violations,
//!   matching Table II's 423-of-500 rate;
//! * drivers drawn from a small power-level catalog, sink pins with
//!   library-like capacitances and a uniform noise margin (the paper uses
//!   0.8 V for every gate).
//!
//! All randomness flows through a single seeded `StdRng`, so the
//! population (and therefore every table in the bench crate) is
//! bit-for-bit reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
mod config;
pub mod perturbed;
mod population;
pub mod scaling;

pub use config::{SinkDistribution, WorkloadConfig};
pub use perturbed::{perturbed_family, PerturbationConfig};
pub use population::{generate, sink_histogram, GeneratedNet};
pub use scaling::{scaling_net, ScalingConfig};

use buffopt_noise::NoiseScenario;
use buffopt_tree::RoutingTree;

/// The estimation-mode noise scenario of the paper's experiments:
/// a single aggressor on every wire with coupling ratio
/// `config.coupling_ratio` and slope `config.vdd / config.rise_time`.
pub fn estimation_scenario(tree: &RoutingTree, config: &WorkloadConfig) -> NoiseScenario {
    NoiseScenario::estimation(tree, config.coupling_ratio, config.vdd / config.rise_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_uses_config_slope() {
        let cfg = WorkloadConfig::default();
        let nets = generate(&WorkloadConfig {
            net_count: 1,
            ..cfg.clone()
        });
        let s = estimation_scenario(&nets[0].tree, &cfg);
        let sink = nets[0].tree.sinks()[0];
        let expect = 0.7 * (1.8 / 0.25e-9);
        assert!((s.factor(sink) - expect).abs() / expect < 1e-12);
    }
}
