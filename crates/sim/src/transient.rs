//! Fixed-step transient integration: backward Euler (robust, L-stable)
//! and trapezoidal (second-order accurate).
//!
//! With a constant step `h`, nodal backward Euler solves
//! `(G + C/h)·v⁽ⁿ⁺¹⁾ = C/h·v⁽ⁿ⁾ + i_src(tⁿ⁺¹)` each step, where the
//! source vector carries the coupling-capacitor injections
//! `C_c/h · (v_s(tⁿ⁺¹) − v_s(tⁿ))` from ideal aggressor waveforms.
//! Trapezoidal integration of `C·v′ + G·v = b(t)` over one step gives
//! `(2C/h + G)·v⁽ⁿ⁺¹⁾ = (2C/h − G)·v⁽ⁿ⁾ + b⁽ⁿ⁾ + b⁽ⁿ⁺¹⁾ + 2·C_c·Δv_s/h`.
//! Either way the left-hand matrix is constant, so it is LU-factored
//! once.

use crate::circuit::Circuit;
use crate::matrix::{LuFactors, Matrix, SingularMatrixError};

/// Integration scheme for [`run_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// First-order, L-stable — never rings, slightly damps peaks.
    #[default]
    BackwardEuler,
    /// Second-order accurate; the standard SPICE default.
    Trapezoidal,
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Time points (uniform grid including t = 0).
    pub time: Vec<f64>,
    /// Per-node waveforms: `voltages[node][step]`.
    pub voltages: Vec<Vec<f64>>,
}

impl TransientResult {
    /// The maximum absolute voltage observed at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn peak_abs(&self, node: usize) -> f64 {
        self.voltages[node]
            .iter()
            .fold(0.0_f64, |acc, &v| acc.max(v.abs()))
    }

    /// Total time (s) the absolute voltage at `node` spends above
    /// `threshold` — the noise *pulse width* the Devgan metric ignores
    /// (Section II-B of the paper). Piecewise-linear between steps.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn time_above(&self, node: usize, threshold: f64) -> f64 {
        let w = &self.voltages[node];
        let mut total = 0.0;
        for k in 1..w.len() {
            let (a, b) = (w[k - 1].abs(), w[k].abs());
            let dt = self.time[k] - self.time[k - 1];
            total += match (a > threshold, b > threshold) {
                (true, true) => dt,
                (false, false) => 0.0,
                (false, true) => dt * (b - threshold) / (b - a),
                (true, false) => dt * (a - threshold) / (a - b),
            };
        }
        total
    }

    /// First time the voltage at `node` crosses `threshold` (rising), or
    /// `None` if it never does. Linear interpolation between steps.
    pub fn crossing_time(&self, node: usize, threshold: f64) -> Option<f64> {
        let w = &self.voltages[node];
        for k in 1..w.len() {
            if w[k - 1] < threshold && w[k] >= threshold {
                let frac = (threshold - w[k - 1]) / (w[k] - w[k - 1]);
                return Some(self.time[k - 1] + frac * (self.time[k] - self.time[k - 1]));
            }
        }
        None
    }
}

/// Runs backward-Euler integration from all-zero initial conditions.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when the network has a floating node
/// (no DC path to ground), which makes `G + C/h` singular.
///
/// # Panics
///
/// Panics if `step` or `duration` is not strictly positive.
pub fn run(
    circuit: &Circuit,
    step: f64,
    duration: f64,
) -> Result<TransientResult, SingularMatrixError> {
    run_with(circuit, step, duration, Method::BackwardEuler)
}

/// [`run`] with an explicit integration scheme.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when the network has a floating node.
///
/// # Panics
///
/// Panics if `step` or `duration` is not strictly positive.
pub fn run_with(
    circuit: &Circuit,
    step: f64,
    duration: f64,
    method: Method,
) -> Result<TransientResult, SingularMatrixError> {
    assert!(step.is_finite() && step > 0.0, "time step must be positive");
    assert!(
        duration.is_finite() && duration > 0.0,
        "duration must be positive"
    );
    let n = circuit.node_count();
    let steps = (duration / step).ceil() as usize;
    if n == 0 {
        return Ok(TransientResult {
            time: (0..=steps).map(|k| k as f64 * step).collect(),
            voltages: Vec::new(),
        });
    }
    let g = circuit.stamp_conductance();
    let c = circuit.stamp_capacitance();
    // BE: A = G + C/h.  TR: A = G + 2C/h, and the RHS uses (2C/h − G)·v.
    let cap_scale = match method {
        Method::BackwardEuler => 1.0 / step,
        Method::Trapezoidal => 2.0 / step,
    };
    let mut a = Matrix::zeros(n, n);
    for r in 0..n {
        for col in 0..n {
            a[(r, col)] = g[(r, col)] + c[(r, col)] * cap_scale;
        }
    }
    let lu = LuFactors::factor(&a)?;

    let mut v = vec![0.0; n];
    let mut result = TransientResult {
        time: Vec::with_capacity(steps + 1),
        voltages: vec![Vec::with_capacity(steps + 1); n],
    };
    let record = |res: &mut TransientResult, t: f64, v: &[f64]| {
        res.time.push(t);
        for (node, &val) in v.iter().enumerate() {
            res.voltages[node].push(val);
        }
    };
    record(&mut result, 0.0, &v);

    let mut src_prev: Vec<f64> = circuit.sources.iter().map(|w| w.at(0.0)).collect();
    for k in 1..=steps {
        let t = k as f64 * step;
        let t_prev = (k - 1) as f64 * step;
        // rhs = (cap_scale·C [− G for TR]) · v_prev + source terms.
        let mut rhs = c.mul_vec(&v);
        for r in rhs.iter_mut() {
            *r *= cap_scale;
        }
        if method == Method::Trapezoidal {
            let gv = g.mul_vec(&v);
            for (r, gvi) in rhs.iter_mut().zip(gv) {
                *r -= gvi;
            }
        }
        // Coupling-capacitor injection: BE gets C_c·Δv_s/h, TR 2·C_c·Δv_s/h.
        for sc in &circuit.source_caps {
            let now = circuit.sources[sc.source].at(t);
            let before = src_prev[sc.source];
            rhs[sc.node.index()] += sc.farads * cap_scale * (now - before);
        }
        // Thevenin drivers: BE uses b(tⁿ⁺¹); TR uses b(tⁿ) + b(tⁿ⁺¹).
        for sr in &circuit.source_res {
            let term = match method {
                Method::BackwardEuler => circuit.sources[sr.source].at(t) / sr.ohms,
                Method::Trapezoidal => {
                    (circuit.sources[sr.source].at(t) + circuit.sources[sr.source].at(t_prev))
                        / sr.ohms
                }
            };
            rhs[sr.node.index()] += term;
        }
        for (i, w) in circuit.sources.iter().enumerate() {
            src_prev[i] = w.at(t);
        }
        v = lu.solve(&rhs);
        record(&mut result, t, &v);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Waveform;

    /// RC low-pass step response via a coupling cap is awkward; test the
    /// classic discharge instead: precharge through injection, then decay.
    #[test]
    fn rc_injection_peak_matches_theory() {
        // Node with R to ground and coupling cap Cc to a ramp source:
        // during the ramp, steady-state noise = R·Cc·(dV/dt) for
        // R·(Cc+Cg) ≪ rise. Choose values where the plateau is reached.
        let r = 1000.0;
        let cc = 10e-15;
        let rise = 1e-9;
        let level = 1.8;
        let mut cir = Circuit::new();
        let x = cir.node();
        let src = cir.waveform(Waveform::Ramp {
            start: 0.0,
            rise,
            level,
        });
        cir.resistor_to_ground(x, r);
        cir.coupling_cap(x, cc, src);
        let res = run(&cir, rise / 2000.0, 2.0 * rise).expect("regular");
        let plateau = r * cc * level / rise; // 18 mV
        let peak = res.peak_abs(x.index());
        assert!(
            (peak - plateau).abs() / plateau < 0.02,
            "peak {peak} vs plateau {plateau}"
        );
    }

    #[test]
    fn rc_charging_time_constant() {
        // Drive node through R from a "source" modeled as a ramp with a
        // very fast rise and a huge coupling cap ≈ voltage source... use
        // instead: R-C charge via Thevenin equivalent is beyond the
        // element set, so verify the discharge time constant: inject until
        // plateau, stop the ramp, watch exp decay with τ = R(Cc+Cg).
        let r = 1000.0;
        let cc = 20e-15;
        let cg = 30e-15;
        let rise = 0.2e-9;
        let mut cir = Circuit::new();
        let x = cir.node();
        let src = cir.waveform(Waveform::Ramp {
            start: 0.0,
            rise,
            level: 1.8,
        });
        cir.resistor_to_ground(x, r);
        cir.coupling_cap(x, cc, src);
        cir.capacitor_to_ground(x, cg);
        let h = 1e-12;
        let res = run(&cir, h, 3e-9).expect("regular");
        // Find the value right when the ramp ends and one τ later.
        let k_end = (rise / h).round() as usize;
        let tau = r * (cc + cg);
        let k_tau = k_end + (tau / h).round() as usize;
        let v_end = res.voltages[x.index()][k_end];
        let v_tau = res.voltages[x.index()][k_tau];
        let ratio = v_tau / v_end;
        assert!(
            (ratio - (-1.0_f64).exp()).abs() < 0.02,
            "decay ratio {ratio} vs 1/e"
        );
    }

    #[test]
    fn charge_conservation_two_floating_nodes() {
        // Two nodes joined by a cap, each with R to ground: injected
        // charge splits and decays; simulation must stay finite and decay
        // to zero.
        let mut cir = Circuit::new();
        let a = cir.node();
        let b = cir.node();
        let src = cir.waveform(Waveform::Ramp {
            start: 0.0,
            rise: 0.5e-9,
            level: 1.8,
        });
        cir.resistor_to_ground(a, 500.0);
        cir.resistor_to_ground(b, 700.0);
        cir.capacitor(a, b, 15e-15);
        cir.coupling_cap(a, 8e-15, src);
        let res = run(&cir, 1e-12, 20e-9).expect("regular");
        let last_a = *res.voltages[a.index()].last().expect("non-empty");
        let last_b = *res.voltages[b.index()].last().expect("non-empty");
        assert!(last_a.abs() < 1e-6 && last_b.abs() < 1e-6, "decayed");
        assert!(res.peak_abs(b.index()) > 0.0, "coupling propagated");
        assert!(res.peak_abs(b.index()) < res.peak_abs(a.index()));
    }

    #[test]
    fn rc_charging_through_thevenin_driver() {
        // Classic step response: v(t) = V·(1 − e^{−t/RC}); the 50 % point
        // falls at RC·ln 2.
        let (r, c, v) = (1000.0, 100e-15, 1.0);
        let mut cir = Circuit::new();
        let x = cir.node();
        let src = cir.waveform(Waveform::Constant(v));
        cir.resistor_to_source(x, r, src);
        cir.capacitor_to_ground(x, c);
        let res = run(&cir, 0.2e-12, 1e-9).expect("regular");
        let t50 = res.crossing_time(x.index(), 0.5).expect("charges");
        let expect = r * c * 2.0_f64.ln();
        assert!(
            (t50 - expect).abs() / expect < 0.01,
            "t50 {t50} vs RC·ln2 {expect}"
        );
        let last = *res.voltages[x.index()].last().expect("non-empty");
        assert!((last - v).abs() < 1e-3);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut cir = Circuit::new();
        let a = cir.node();
        let _b = cir.node(); // no connection at all
        cir.resistor_to_ground(a, 100.0);
        assert!(run(&cir, 1e-12, 1e-9).is_err());
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_backward_euler() {
        // RC charge with a coarse step: compare both methods against the
        // exact solution v(t) = 1 − e^{−t/RC} at t = RC.
        let (r, c) = (1000.0, 100e-15);
        let tau = r * c;
        let mut cir = Circuit::new();
        let x = cir.node();
        let src = cir.waveform(Waveform::Constant(1.0));
        cir.resistor_to_source(x, r, src);
        cir.capacitor_to_ground(x, c);
        let h = tau / 10.0; // deliberately coarse
        let exact = 1.0 - (-1.0f64).exp();
        let sample = |m: Method| {
            // duration 0.95*tau makes ceil() land on exactly 10 steps, so
            // the last sample sits at t = tau.
            let res = run_with(&cir, h, tau * 0.95, m).expect("regular");
            assert_eq!(res.time.len(), 11);
            *res.voltages[x.index()].last().expect("non-empty")
        };
        let err_be = (sample(Method::BackwardEuler) - exact).abs();
        let err_tr = (sample(Method::Trapezoidal) - exact).abs();
        assert!(
            err_tr < err_be / 5.0,
            "TR error {err_tr} should be well below BE error {err_be}"
        );
    }

    #[test]
    fn methods_agree_at_fine_steps() {
        let mut cir = Circuit::new();
        let x = cir.node();
        let src = cir.waveform(Waveform::Ramp {
            start: 0.0,
            rise: 1e-9,
            level: 1.8,
        });
        cir.resistor_to_ground(x, 800.0);
        cir.coupling_cap(x, 15e-15, src);
        cir.capacitor_to_ground(x, 25e-15);
        let h = 0.2e-12;
        let be = run_with(&cir, h, 3e-9, Method::BackwardEuler).expect("ok");
        let tr = run_with(&cir, h, 3e-9, Method::Trapezoidal).expect("ok");
        let (pa, pb) = (be.peak_abs(x.index()), tr.peak_abs(x.index()));
        assert!((pa - pb).abs() / pb < 0.01, "BE {pa} vs TR {pb}");
    }

    #[test]
    fn time_above_measures_pulse_width() {
        let res = TransientResult {
            time: vec![0.0, 1.0, 2.0, 3.0, 4.0],
            voltages: vec![vec![0.0, 1.0, 1.0, 0.0, 0.0]],
        };
        // Above 0.5: enters at t=0.5, leaves at t=2.5 ⇒ width 2.
        assert!((res.time_above(0, 0.5) - 2.0).abs() < 1e-12);
        assert_eq!(res.time_above(0, 2.0), 0.0);
        // Negative excursions count via |v|.
        let res2 = TransientResult {
            time: vec![0.0, 1.0, 2.0],
            voltages: vec![vec![0.0, -1.0, 0.0]],
        };
        assert!((res2.time_above(0, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_time_interpolates() {
        let res = TransientResult {
            time: vec![0.0, 1.0, 2.0],
            voltages: vec![vec![0.0, 0.5, 1.0]],
        };
        let t = res.crossing_time(0, 0.75).expect("crosses");
        assert!((t - 1.5).abs() < 1e-12);
        assert!(res.crossing_time(0, 2.0).is_none());
    }
}
