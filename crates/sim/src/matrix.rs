//! Dense linear algebra for nodal analysis: row-major matrices and LU
//! factorization with partial pivoting.
//!
//! The coupled networks simulated here stay small (a few hundred nodes),
//! so a straightforward `O(n³)` factorization with `O(n²)` re-solves is
//! both fast enough and fully auditable.

use std::fmt;

/// A dense, row-major, square-or-rectangular matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.4e} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Error from [`LuFactors::factor`]: the matrix is singular (or so close
/// that partial pivoting found no usable pivot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// The elimination column where no pivot was found.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrixError {}

/// An LU factorization with partial pivoting (`P·A = L·U`), reusable for
/// many right-hand sides — exactly the pattern backward-Euler needs.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot column is numerically
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn factor(a: &Matrix) -> Result<Self, SingularMatrixError> {
        assert_eq!(a.rows, a.cols, "LU needs a square matrix");
        let n = a.rows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot: the largest magnitude in column k at/below k.
            let (piv_row, piv_val) = (k..n)
                .map(|r| (r, lu[(r, k)].abs()))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite entries"))
                .expect("non-empty range");
            if piv_val < 1e-300 {
                return Err(SingularMatrixError { column: k });
            }
            if piv_row != k {
                perm.swap(k, piv_row);
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(piv_row, c)];
                    lu[(piv_row, c)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    let sub = factor * lu[(k, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(LuFactors { lu, perm })
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    #[allow(clippy::needless_range_loop)] // triangular sweeps read clearer indexed
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows;
        assert_eq!(b.len(), n, "dimension mismatch");
        // Apply the permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc / self.lu[(r, r)];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_solves_trivially() {
        let i = Matrix::identity(4);
        let lu = LuFactors::factor(&i).expect("identity is regular");
        let b = vec![1.0, -2.0, 3.5, 0.0];
        assert_vec_close(&lu.solve(&b), &b, 1e-15);
    }

    #[test]
    fn known_3x3_system() {
        // 2x + y = 5 ; x + 3y + z = 10 ; y + 2z = 7  →  x=2, y=1, z=3... check:
        // 2*2+1=5 ✓; 2+3+3=8 ✗ — craft properly: pick x=(1,2,3):
        let mut a = Matrix::zeros(3, 3);
        let vals = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]];
        for r in 0..3 {
            for c in 0..3 {
                a[(r, c)] = vals[r][c];
            }
        }
        let x_true = vec![1.0, 2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let lu = LuFactors::factor(&a).expect("regular");
        assert_vec_close(&lu.solve(&b), &x_true, 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 0.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 0.0;
        let lu = LuFactors::factor(&a).expect("regular after pivot");
        assert_vec_close(&lu.solve(&[3.0, 4.0]), &[4.0, 3.0], 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert!(LuFactors::factor(&a).is_err());
    }

    #[test]
    fn random_roundtrip_many_sizes() {
        // Deterministic pseudo-random fill; solve then verify A·x ≈ b.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for n in [1, 2, 5, 17, 40] {
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    a[(r, c)] = rnd();
                }
                a[(r, r)] += 4.0; // diagonal dominance keeps it regular
            }
            let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
            let lu = LuFactors::factor(&a).expect("regular");
            let x = lu.solve(&b);
            assert_vec_close(&a.mul_vec(&x), &b, 1e-9);
        }
    }

    #[test]
    fn scaled_system_conditioning() {
        // Conductance-scale entries (1e-3 .. 1e3 siemens) must round-trip.
        let mut a = Matrix::zeros(3, 3);
        let g = [1e-3, 1.0, 1e3];
        for r in 0..3 {
            for (c, gc) in g.iter().enumerate() {
                a[(r, c)] = if r == c { 2.0 * gc } else { 0.1 * gc };
            }
        }
        let x_true = vec![0.5, -0.25, 0.125];
        let b = a.mul_vec(&x_true);
        let lu = LuFactors::factor(&a).expect("regular");
        assert_vec_close(&lu.solve(&b), &x_true, 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_wrong_len_panics() {
        Matrix::identity(3).mul_vec(&[1.0, 2.0]);
    }
}
