//! Nodal-analysis circuit description.
//!
//! Only the element types the coupled-noise problem needs are provided:
//! resistors (node–node and node–ground), capacitors (node–node and
//! node–ground), and capacitors from a node to an ideal *waveform source*
//! (the aggressor rail). Victim drivers holding their net quiet are plain
//! resistors to ground; aggressor drive strength can be folded into the
//! waveform's slope.

use crate::matrix::Matrix;

/// Index of a circuit node (ground is implicit and not a `SimNode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimNode(pub(crate) usize);

impl SimNode {
    /// Index into voltage vectors returned by the transient engine.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An ideal voltage waveform driving coupling capacitors (the aggressor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Waveform {
    /// A saturated ramp: 0 V until `start`, rising linearly to `level`
    /// over `rise`, then holding. This is the aggressor model under which
    /// the Devgan metric is derived (`µ = level / rise`).
    Ramp {
        /// Start time of the transition (s).
        start: f64,
        /// Rise time (s); must be positive.
        rise: f64,
        /// Final level (V).
        level: f64,
    },
    /// A constant level (useful for tests).
    Constant(f64),
}

impl Waveform {
    /// The waveform value at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        match *self {
            Waveform::Ramp { start, rise, level } => {
                if t <= start {
                    0.0
                } else if t >= start + rise {
                    level
                } else {
                    level * (t - start) / rise
                }
            }
            Waveform::Constant(v) => v,
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Resistor {
    pub a: Option<SimNode>, // None = ground
    pub b: Option<SimNode>,
    pub ohms: f64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Capacitor {
    pub a: Option<SimNode>,
    pub b: Option<SimNode>,
    pub farads: f64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct SourceCap {
    pub node: SimNode,
    pub farads: f64,
    pub source: usize, // index into sources
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct SourceRes {
    pub node: SimNode,
    pub ohms: f64,
    pub source: usize,
}

/// A linear RC circuit under construction.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_count: usize,
    pub(crate) resistors: Vec<Resistor>,
    pub(crate) capacitors: Vec<Capacitor>,
    pub(crate) source_caps: Vec<SourceCap>,
    pub(crate) source_res: Vec<SourceRes>,
    pub(crate) sources: Vec<Waveform>,
}

impl Circuit {
    /// An empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Adds a node and returns its handle.
    pub fn node(&mut self) -> SimNode {
        let n = SimNode(self.node_count);
        self.node_count += 1;
        n
    }

    /// Number of (non-ground) nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Registers an aggressor waveform; returns its index for
    /// [`Circuit::coupling_cap`].
    pub fn waveform(&mut self, w: Waveform) -> usize {
        self.sources.push(w);
        self.sources.len() - 1
    }

    fn check_positive(what: &str, v: f64) {
        assert!(v.is_finite() && v > 0.0, "{what} must be positive, got {v}");
    }

    /// Resistor between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive.
    pub fn resistor(&mut self, a: SimNode, b: SimNode, ohms: f64) {
        Self::check_positive("resistance", ohms);
        self.resistors.push(Resistor {
            a: Some(a),
            b: Some(b),
            ohms,
        });
    }

    /// Resistor from a node to ground (e.g. a quiet driver).
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive.
    pub fn resistor_to_ground(&mut self, a: SimNode, ohms: f64) {
        Self::check_positive("resistance", ohms);
        self.resistors.push(Resistor {
            a: Some(a),
            b: None,
            ohms,
        });
    }

    /// Capacitor between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is negative or non-finite (zero is allowed and
    /// ignored at stamping time).
    pub fn capacitor(&mut self, a: SimNode, b: SimNode, farads: f64) {
        assert!(farads.is_finite() && farads >= 0.0, "capacitance ≥ 0");
        self.capacitors.push(Capacitor {
            a: Some(a),
            b: Some(b),
            farads,
        });
    }

    /// Capacitor from a node to ground.
    ///
    /// # Panics
    ///
    /// Same as [`Circuit::capacitor`].
    pub fn capacitor_to_ground(&mut self, a: SimNode, farads: f64) {
        assert!(farads.is_finite() && farads >= 0.0, "capacitance ≥ 0");
        self.capacitors.push(Capacitor {
            a: Some(a),
            b: None,
            farads,
        });
    }

    /// Coupling capacitor from `node` to the ideal waveform source
    /// `source` (from [`Circuit::waveform`]).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or `farads` invalid.
    pub fn coupling_cap(&mut self, node: SimNode, farads: f64, source: usize) {
        assert!(farads.is_finite() && farads >= 0.0, "capacitance ≥ 0");
        assert!(source < self.sources.len(), "unknown waveform source");
        self.source_caps.push(SourceCap {
            node,
            farads,
            source,
        });
    }

    /// Resistor from `node` to the ideal waveform source `source` — a
    /// Thevenin driver (e.g. a gate driving a rising step). Stamps as a
    /// conductance to ground plus a time-varying Norton current.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive or `source` is unknown.
    pub fn resistor_to_source(&mut self, node: SimNode, ohms: f64, source: usize) {
        Self::check_positive("resistance", ohms);
        assert!(source < self.sources.len(), "unknown waveform source");
        self.source_res.push(SourceRes { node, ohms, source });
    }

    /// Stamps the conductance matrix `G` (resistors only).
    pub(crate) fn stamp_conductance(&self) -> Matrix {
        let n = self.node_count.max(1);
        let mut g = Matrix::zeros(n, n);
        for r in &self.resistors {
            let cond = 1.0 / r.ohms;
            match (r.a, r.b) {
                (Some(a), Some(b)) => {
                    g[(a.0, a.0)] += cond;
                    g[(b.0, b.0)] += cond;
                    g[(a.0, b.0)] -= cond;
                    g[(b.0, a.0)] -= cond;
                }
                (Some(a), None) | (None, Some(a)) => g[(a.0, a.0)] += cond,
                (None, None) => {}
            }
        }
        for sr in &self.source_res {
            g[(sr.node.0, sr.node.0)] += 1.0 / sr.ohms;
        }
        g
    }

    /// Stamps the capacitance matrix `C` (all capacitors, with source-side
    /// terminals treated as fixed — their contribution appears on the RHS
    /// during integration).
    pub(crate) fn stamp_capacitance(&self) -> Matrix {
        let n = self.node_count.max(1);
        let mut c = Matrix::zeros(n, n);
        for cap in &self.capacitors {
            match (cap.a, cap.b) {
                (Some(a), Some(b)) => {
                    c[(a.0, a.0)] += cap.farads;
                    c[(b.0, b.0)] += cap.farads;
                    c[(a.0, b.0)] -= cap.farads;
                    c[(b.0, a.0)] -= cap.farads;
                }
                (Some(a), None) | (None, Some(a)) => c[(a.0, a.0)] += cap.farads,
                (None, None) => {}
            }
        }
        for sc in &self.source_caps {
            c[(sc.node.0, sc.node.0)] += sc.farads;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_waveform_shape() {
        let w = Waveform::Ramp {
            start: 1e-9,
            rise: 2e-9,
            level: 1.8,
        };
        assert_eq!(w.at(0.0), 0.0);
        assert_eq!(w.at(1e-9), 0.0);
        assert!((w.at(2e-9) - 0.9).abs() < 1e-12);
        assert!((w.at(3e-9) - 1.8).abs() < 1e-12);
        assert!((w.at(10e-9) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn conductance_stamp_two_node_divider() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        c.resistor(a, b, 100.0);
        c.resistor_to_ground(b, 50.0);
        let g = c.stamp_conductance();
        assert!((g[(0, 0)] - 0.01).abs() < 1e-15);
        assert!((g[(0, 1)] + 0.01).abs() < 1e-15);
        assert!((g[(1, 1)] - 0.03).abs() < 1e-15);
    }

    #[test]
    fn capacitance_stamp_includes_source_caps() {
        let mut c = Circuit::new();
        let a = c.node();
        let src = c.waveform(Waveform::Constant(1.0));
        c.capacitor_to_ground(a, 10e-15);
        c.coupling_cap(a, 5e-15, src);
        let m = c.stamp_capacitance();
        assert!((m[(0, 0)] - 15e-15).abs() < 1e-27);
    }

    #[test]
    #[should_panic(expected = "resistance")]
    fn zero_resistance_panics() {
        let mut c = Circuit::new();
        let a = c.node();
        c.resistor_to_ground(a, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown waveform")]
    fn coupling_to_missing_source_panics() {
        let mut c = Circuit::new();
        let a = c.node();
        c.coupling_cap(a, 1e-15, 0);
    }
}
