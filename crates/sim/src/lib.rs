//! Simulation-based noise referee — the reproduction's stand-in for the
//! paper's internal IBM tool *3dnoise* (paper reference \[26\]).
//!
//! The paper verifies BuffOpt with a detailed, moment-matching-based noise
//! analysis; this crate plays that role with a from-scratch coupled-RC
//! **transient simulator**:
//!
//! * [`matrix`] — dense LU with partial pivoting (networks here have at
//!   most a few hundred nodes, so a self-contained solver beats a
//!   heavyweight dependency and stays auditable);
//! * [`circuit`] — nodal-analysis stamping of resistors, grounded and
//!   floating capacitors, and capacitors to ideal waveform sources
//!   (aggressor rails);
//! * [`transient`] — backward-Euler integration with a constant step, so
//!   the system matrix is factored once and every step is a cheap
//!   substitution;
//! * [`referee`] — builds the coupled victim/aggressor network for one
//!   restoring stage of a (possibly buffered) net and measures true peak
//!   noise at every sink and buffer input;
//! * [`moments`] — RC-tree impulse-response moments (m₁ = Elmore, m₂, m₃)
//!   for two-pole delay estimates, mirroring the RICE/AWE-style analysis
//!   3dnoise used.
//!
//! The Devgan metric is a provable upper bound on the true coupled noise;
//! the property tests in this crate check exactly that against the
//! simulator, and the Table II harness uses the simulator as the
//! independent referee (more accurate ⇒ fewer flagged violations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod matrix;
pub mod moments;
pub mod referee;
pub mod transient;

pub use circuit::{Circuit, SimNode, Waveform};
pub use referee::{RefereeOptions, StageMeasurement, TimedAggressor};
pub use transient::Method;
