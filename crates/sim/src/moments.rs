//! RC-tree impulse-response moments — the AWE/RICE-style analysis behind
//! tools like 3dnoise (paper references \[25\], \[27\]).
//!
//! Using the π-model (half of each wire's capacitance at each end), the
//! k-th circuit moment at node `v` is
//!
//! ```text
//! m_k(v) = Σ_i R(path(s→v) ∩ path(s→i)) · c_i · m_{k−1}(i),   m_0 ≡ 1
//! ```
//!
//! computed by repeated two-pass tree traversals in `O(k·n)`. `m₁` is the
//! Elmore delay; `m₂` feeds the D2M two-moment delay estimate, which is
//! far less conservative than Elmore on far-from-source sinks.
//!
//! Each pass is one `MomentMetric` instance driven through the shared
//! analysis kernel ([`buffopt_analysis::sweep_down`] +
//! [`buffopt_analysis::sweep_up`]): the per-node weight is the metric's
//! injection, the edge carries no series quantity (so the π-term
//! degenerates to `R · down`, bitwise), and the driver resistance seeds
//! the preorder. The only floating-point difference from the pre-kernel
//! code is at *branch* nodes, where the kernel folds child sums before
//! adding the node's own weight (one reassociated addition, ≤ 1 ulp);
//! chains are bitwise identical, as the differential suite checks.

use buffopt_analysis::{sweep_down, sweep_up, AdditiveMetric};
use buffopt_tree::{NodeId, RoutingTree};

/// The first three moments at every node of a routing tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Moments {
    /// First moment — the Elmore delay (s). Excludes the driver's
    /// intrinsic delay, which is a pure time shift.
    pub m1: Vec<f64>,
    /// Second moment (s²).
    pub m2: Vec<f64>,
    /// Third moment (s³).
    pub m3: Vec<f64>,
}

impl Moments {
    /// The D2M delay estimate at `node`: `ln 2 · m₁² / √m₂`.
    ///
    /// Returns `m₁·ln 2` if `m₂` is numerically zero (degenerate net).
    pub fn d2m_delay(&self, node: NodeId) -> f64 {
        let m1 = self.m1[node.index()];
        let m2 = self.m2[node.index()];
        if m2 <= 0.0 {
            return m1 * std::f64::consts::LN_2;
        }
        std::f64::consts::LN_2 * m1 * m1 / m2.sqrt()
    }
}

/// π-model node capacitances: pin caps plus half of every incident wire.
fn node_capacitances(tree: &RoutingTree) -> Vec<f64> {
    let mut cap = vec![0.0; tree.len()];
    for v in tree.node_ids() {
        if let Some(spec) = tree.sink_spec(v) {
            cap[v.index()] += spec.capacitance;
        }
        if let Some(w) = tree.parent_wire(v) {
            cap[v.index()] += w.capacitance / 2.0;
            let p = tree.parent(v).expect("has wire so has parent");
            cap[p.index()] += w.capacitance / 2.0;
        }
    }
    cap
}

/// One moment pass as an [`AdditiveMetric`]: the node injection is the
/// per-node weight `w_v` (π-model capacitance times the previous moment),
/// and the edge carries only resistance — no series quantity — so the
/// kernel's π-term `R·(0/2 + down)` is `R · down`, bitwise.
struct MomentMetric<'a> {
    weights: &'a [f64],
}

impl AdditiveMetric<RoutingTree> for MomentMetric<'_> {
    #[inline]
    fn node_injection(&self, _t: &RoutingTree, v: u32) -> Option<f64> {
        Some(self.weights[v as usize])
    }

    #[inline]
    fn edge_quantity(&self, _t: &RoutingTree, _v: u32) -> f64 {
        0.0
    }

    #[inline]
    fn edge_resistance(&self, t: &RoutingTree, v: u32) -> f64 {
        t.parent_wire(NodeId::from_index(v as usize))
            .expect("edge queried at non-root only")
            .resistance
    }
}

/// One moment pass: given per-node weights `w_i`, computes
/// `S(v) = Σ_i R(path(s→v) ∩ path(s→i)) · w_i` for every `v` — the
/// kernel's downstream sweep followed by its preorder sweep seeded with
/// the driver-resistance term.
fn moment_pass(tree: &RoutingTree, weights: &[f64]) -> Vec<f64> {
    let m = MomentMetric { weights };
    let mut down = Vec::new();
    sweep_down(tree, &m, &mut down);
    let root_term = tree.driver().resistance * down[tree.source().index()];
    let mut s = Vec::new();
    sweep_up(tree, &m, &down, &down, root_term, &mut s)
        .expect("tables come from sweep_down over the same tree");
    s
}

/// Computes the first three moments at every node.
pub fn moments(tree: &RoutingTree) -> Moments {
    let cap = node_capacitances(tree);
    let m1 = moment_pass(tree, &cap);
    let w2: Vec<f64> = cap.iter().zip(&m1).map(|(c, m)| c * m).collect();
    let m2 = moment_pass(tree, &w2);
    let w3: Vec<f64> = cap.iter().zip(&m2).map(|(c, m)| c * m).collect();
    let m3 = moment_pass(tree, &w3);
    Moments { m1, m2, m3 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, Waveform};
    use crate::transient;
    use buffopt_tree::{elmore, Driver, SinkSpec, Technology, TreeBuilder};

    fn two_pin(len: f64) -> RoutingTree {
        let tech = Technology::global_layer();
        let mut b = TreeBuilder::new(Driver::new(300.0, 10e-12));
        b.add_sink(b.source(), tech.wire(len), SinkSpec::new(20e-15, 1e-9, 0.8))
            .expect("sink");
        b.build().expect("tree")
    }

    #[test]
    fn m1_is_elmore_without_intrinsic_delay() {
        let t = two_pin(5_000.0);
        let m = moments(&t);
        let arrivals = elmore::arrival_times(&t);
        let sink = t.sinks()[0];
        let intrinsic = t.driver().intrinsic_delay;
        assert!(
            (m.m1[sink.index()] - (arrivals[sink.index()] - intrinsic)).abs() < 1e-18,
            "m1 {} vs elmore {}",
            m.m1[sink.index()],
            arrivals[sink.index()] - intrinsic
        );
    }

    #[test]
    fn m1_matches_elmore_on_branching_net() {
        let tech = Technology::global_layer();
        let mut b = TreeBuilder::new(Driver::new(200.0, 0.0));
        let j = b.add_internal(b.source(), tech.wire(2_000.0)).expect("j");
        b.add_sink(j, tech.wire(1_000.0), SinkSpec::new(10e-15, 1e-9, 0.8))
            .expect("s1");
        b.add_sink(j, tech.wire(4_000.0), SinkSpec::new(30e-15, 1e-9, 0.8))
            .expect("s2");
        let t = b.build().expect("tree");
        let m = moments(&t);
        let arrivals = elmore::arrival_times(&t);
        for &s in t.sinks() {
            assert!((m.m1[s.index()] - arrivals[s.index()]).abs() < 1e-18);
        }
    }

    #[test]
    fn moments_are_positive_and_ordered() {
        let t = two_pin(10_000.0);
        let m = moments(&t);
        let s = t.sinks()[0];
        assert!(m.m1[s.index()] > 0.0);
        assert!(m.m2[s.index()] > 0.0);
        assert!(m.m3[s.index()] > 0.0);
        // For RC trees the normalized moment ratios grow monotonically:
        // m2/m1 ≥ m1 (variance non-negative ⇒ m2 ≥ m1² is not generally
        // true, but m2 ≤ m1² always holds for RC trees: check that).
        assert!(m.m2[s.index()] <= m.m1[s.index()] * m.m1[s.index()] + 1e-30);
    }

    #[test]
    fn d2m_is_less_conservative_than_elmore() {
        let t = two_pin(10_000.0);
        let m = moments(&t);
        let s = t.sinks()[0];
        assert!(m.d2m_delay(s) <= m.m1[s.index()]);
        assert!(m.d2m_delay(s) > 0.0);
    }

    /// Builds the sim circuit of a whole net with lumped-π wires and a
    /// rising step driver, mirroring the moment model exactly.
    fn simulate_step(tree: &RoutingTree) -> transient::TransientResult {
        let mut cir = Circuit::new();
        let src = cir.waveform(Waveform::Constant(1.0));
        let root = cir.node();
        cir.resistor_to_source(root, tree.driver().resistance.max(1e-3), src);
        let mut sim_of = vec![None; tree.len()];
        sim_of[tree.source().index()] = Some(root);
        for v in tree.preorder() {
            if v == tree.source() {
                continue;
            }
            let p = tree.parent(v).expect("non-source");
            let p_sim = sim_of[p.index()].expect("visited");
            let w = tree.parent_wire(v).expect("non-source");
            let v_sim = if w.resistance <= 0.0 {
                p_sim
            } else {
                let n = cir.node();
                cir.resistor(p_sim, n, w.resistance);
                cir.capacitor_to_ground(p_sim, w.capacitance / 2.0);
                cir.capacitor_to_ground(n, w.capacitance / 2.0);
                n
            };
            if let Some(spec) = tree.sink_spec(v) {
                cir.capacitor_to_ground(v_sim, spec.capacitance);
            }
            sim_of[v.index()] = Some(v_sim);
        }
        transient::run(&cir, 1e-12, 20e-9).expect("regular")
    }

    #[test]
    fn elmore_upper_bounds_simulated_50_percent_delay() {
        // The classical result: for RC trees under step input, the Elmore
        // delay bounds the 50 % crossing from above.
        let t = two_pin(8_000.0);
        let res = simulate_step(&t);
        // Sim node index: two_pin has sink as the last created node.
        let t50 = res
            .crossing_time(res.voltages.len() - 1, 0.5)
            .expect("charges past 50 %");
        let m = moments(&t);
        let sink = t.sinks()[0];
        assert!(
            t50 <= m.m1[sink.index()],
            "sim t50 {t50} vs Elmore {}",
            m.m1[sink.index()]
        );
        // And D2M lands closer to the simulated delay than Elmore does.
        let err_elmore = (m.m1[sink.index()] - t50).abs();
        let err_d2m = (m.d2m_delay(sink) - t50).abs();
        assert!(err_d2m <= err_elmore);
    }
}
