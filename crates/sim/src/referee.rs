//! The noise referee: builds the coupled victim/aggressor RC network for
//! one restoring stage of a net and measures the **true** peak noise at
//! every stage end by transient simulation.
//!
//! Model (matching the assumptions under which the Devgan metric is
//! derived):
//!
//! * the victim's driving gate holds the net quiet — a resistor to ground;
//! * every victim wire is a chain of π-segments; each segment's
//!   capacitance splits into a grounded part `(1 − λ)` and a coupling part
//!   `λ` to the aggressor rail;
//! * the aggressor rail is an ideal saturated ramp `0 → V_dd` with rise
//!   time `t_r` (slope `µ = V_dd / t_r`), the strongest aggressor
//!   consistent with the metric's `λ·µ` characterization.
//!
//! The Devgan metric is a provable upper bound on the peak this referee
//! measures; being *more accurate*, the referee flags fewer violations —
//! exactly the Table II relationship between BuffOpt's metric and 3dnoise.

use buffopt_noise::NoiseScenario;
use buffopt_tree::{NodeId, RoutingTree};

use crate::circuit::{Circuit, SimNode, Waveform};
use crate::matrix::SingularMatrixError;
use crate::transient::{self, Method};

/// Options controlling the referee's circuit construction and
/// integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefereeOptions {
    /// Power-supply voltage of the aggressor (V).
    pub vdd: f64,
    /// Aggressor rise time (s); the slope is `vdd / rise_time`.
    pub rise_time: f64,
    /// π-segments per tree wire (≥ 1); more segments model the
    /// distributed line more faithfully.
    pub segments_per_wire: usize,
    /// Integration steps per rise time.
    pub steps_per_rise: usize,
    /// Extra simulated time after the ramp, in units of the stage's
    /// estimated RC constant (the peak can lag the ramp on slow nets).
    pub settle_taus: f64,
    /// Integration scheme (backward Euler by default; trapezoidal for
    /// second-order accuracy).
    pub method: Method,
}

impl Default for RefereeOptions {
    /// The paper's estimation-mode setup: 1.8 V supply, 0.25 ns rise.
    fn default() -> Self {
        RefereeOptions {
            vdd: 1.8,
            rise_time: 0.25e-9,
            segments_per_wire: 3,
            steps_per_rise: 100,
            settle_taus: 6.0,
            method: Method::BackwardEuler,
        }
    }
}

/// Peak noise measured at one stage end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageMeasurement {
    /// The tree node where the measurement was taken.
    pub node: NodeId,
    /// Peak absolute noise voltage (V).
    pub peak: f64,
    /// Pulse width (s) at half the peak amplitude — the quantity the
    /// Devgan metric deliberately ignores (paper Section II-B: "peak
    /// amplitude dominates pulse width" for gate failure).
    pub width_at_half_peak: f64,
}

/// Simulates one restoring stage and returns the peak noise at each
/// requested end.
///
/// * `root` — the node carrying the stage's driving gate;
/// * `gate_resistance` — that gate's output resistance (Ω);
/// * `ends` — `(node, extra load capacitance)` pairs where the stage
///   terminates (original sinks with their pin capacitance, inserted
///   buffer inputs with their `Cin`); traversal stops there and the peak
///   is recorded;
/// * `scenario` — supplies each wire's combined `λ·µ` factor, which is
///   converted to a coupling ratio against the options' slope
///   `µ = vdd / rise_time`.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if the stage network is degenerate
/// (cannot happen for well-formed trees, which always have the gate
/// resistance to ground).
///
/// # Panics
///
/// Panics if options contain non-positive values, if `scenario` does not
/// match the tree, or if an end node is not in the subtree of `root`.
pub fn stage_peak_noise(
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    root: NodeId,
    gate_resistance: f64,
    ends: &[(NodeId, f64)],
    opts: &RefereeOptions,
) -> Result<Vec<StageMeasurement>, SingularMatrixError> {
    assert_eq!(scenario.len(), tree.len(), "scenario does not match tree");
    let slope = opts.vdd / opts.rise_time;
    let waveforms = vec![Waveform::Ramp {
        start: 0.0,
        rise: opts.rise_time,
        level: opts.vdd,
    }];
    let couplings = |v: NodeId| -> Vec<(f64, usize)> {
        let lambda = (scenario.factor(v) / slope).clamp(0.0, 1.0);
        if lambda > 0.0 {
            vec![(lambda, 0)]
        } else {
            Vec::new()
        }
    };
    run_stage(
        tree,
        &couplings,
        waveforms,
        opts.rise_time,
        root,
        gate_resistance,
        ends,
        opts,
    )
}

/// An aggressor with an explicit switching start time, for worst-case
/// alignment studies with [`stage_peak_noise_with_aggressors`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedAggressor {
    /// Coupling-to-wire-capacitance ratio λ.
    pub coupling_ratio: f64,
    /// Signal slope µ (V/s); the ramp's rise time is `vdd / µ`.
    pub slope: f64,
    /// Switching start time (s).
    pub start: f64,
}

/// Like [`stage_peak_noise`], but with explicit per-wire aggressor lists —
/// each aggressor gets its own ramp waveform (its own slope and start
/// time), matching the paper's Fig. 2 multi-aggressor setting. The Devgan
/// metric with factor `Σ λ_j µ_j` per wire upper-bounds this measurement
/// for *any* start-time alignment.
///
/// # Errors / Panics
///
/// Same as [`stage_peak_noise`].
pub fn stage_peak_noise_with_aggressors(
    tree: &RoutingTree,
    per_wire: &[(NodeId, Vec<TimedAggressor>)],
    root: NodeId,
    gate_resistance: f64,
    ends: &[(NodeId, f64)],
    opts: &RefereeOptions,
) -> Result<Vec<StageMeasurement>, SingularMatrixError> {
    // One waveform per distinct (slope, start); wires reference them.
    let mut waveforms: Vec<Waveform> = Vec::new();
    let mut keys: Vec<(f64, f64)> = Vec::new();
    let mut table: Vec<Vec<(f64, usize)>> = vec![Vec::new(); tree.len()];
    let mut max_rise = opts.rise_time;
    for (node, aggs) in per_wire {
        for a in aggs {
            assert!(a.slope > 0.0, "aggressor slope must be positive");
            let rise = opts.vdd / a.slope;
            max_rise = max_rise.max(rise + a.start);
            let idx = match keys
                .iter()
                .position(|&(s, st)| s == a.slope && st == a.start)
            {
                Some(i) => i,
                None => {
                    keys.push((a.slope, a.start));
                    waveforms.push(Waveform::Ramp {
                        start: a.start,
                        rise,
                        level: opts.vdd,
                    });
                    waveforms.len() - 1
                }
            };
            table[node.index()].push((a.coupling_ratio, idx));
        }
    }
    let couplings = |v: NodeId| -> Vec<(f64, usize)> { table[v.index()].clone() };
    run_stage(
        tree,
        &couplings,
        waveforms,
        max_rise,
        root,
        gate_resistance,
        ends,
        opts,
    )
}

/// Shared circuit construction + integration for both entry points.
#[allow(clippy::too_many_arguments)]
fn run_stage(
    tree: &RoutingTree,
    couplings: &dyn Fn(NodeId) -> Vec<(f64, usize)>,
    waveforms: Vec<Waveform>,
    active_window: f64,
    root: NodeId,
    gate_resistance: f64,
    ends: &[(NodeId, f64)],
    opts: &RefereeOptions,
) -> Result<Vec<StageMeasurement>, SingularMatrixError> {
    assert!(opts.vdd > 0.0 && opts.rise_time > 0.0, "positive vdd/rise");
    assert!(
        opts.segments_per_wire >= 1 && opts.steps_per_rise >= 2,
        "positive discretization"
    );
    let is_end: Vec<bool> = {
        let mut v = vec![false; tree.len()];
        for &(n, _) in ends {
            v[n.index()] = true;
        }
        v
    };
    let end_cap = |n: NodeId| -> f64 {
        ends.iter()
            .find(|&&(e, _)| e == n)
            .map(|&(_, c)| c)
            .unwrap_or(0.0)
    };

    let mut cir = Circuit::new();
    let wave_ids: Vec<usize> = waveforms.into_iter().map(|w| cir.waveform(w)).collect();

    // Victim driver holds the net low.
    let root_sim = cir.node();
    cir.resistor_to_ground(root_sim, gate_resistance.max(1e-3));

    let mut sim_of: Vec<Option<SimNode>> = vec![None; tree.len()];
    sim_of[root.index()] = Some(root_sim);

    // For the adaptive horizon: total resistance and capacitance.
    let mut total_r = gate_resistance.max(1e-3);
    let mut total_c = 0.0;

    let mut stack: Vec<NodeId> = tree.children(root).to_vec();
    while let Some(v) = stack.pop() {
        let p = tree.parent(v).expect("below root");
        let p_sim = sim_of[p.index()].expect("parent visited first");
        let wire = tree.parent_wire(v).expect("below root");
        let lambdas = couplings(v);
        let lambda_total: f64 = lambdas.iter().map(|&(l, _)| l).sum();

        let v_sim = if wire.resistance <= 0.0 && wire.capacitance <= 0.0 {
            // Electrically empty (dummy) wire: reuse the parent node.
            p_sim
        } else {
            let n_seg = opts.segments_per_wire;
            let r_seg = (wire.resistance / n_seg as f64).max(1e-3);
            let c_seg = wire.capacitance / n_seg as f64;
            let mut upper = p_sim;
            let mut lower = upper;
            for _ in 0..n_seg {
                lower = cir.node();
                cir.resistor(upper, lower, r_seg);
                for node in [upper, lower] {
                    let half = c_seg / 2.0;
                    cir.capacitor_to_ground(node, (1.0 - lambda_total).max(0.0) * half);
                    for &(lambda, k) in &lambdas {
                        cir.coupling_cap(node, lambda * half, wave_ids[k]);
                    }
                }
                upper = lower;
            }
            total_r += wire.resistance;
            total_c += wire.capacitance;
            lower
        };
        sim_of[v.index()] = Some(v_sim);

        if is_end[v.index()] {
            let c = end_cap(v);
            if c > 0.0 {
                cir.capacitor_to_ground(v_sim, c);
                total_c += c;
            }
            continue; // the stage stops here
        }
        if let Some(spec) = tree.sink_spec(v) {
            // A sink not listed as an end still loads the stage.
            if spec.capacitance > 0.0 {
                cir.capacitor_to_ground(v_sim, spec.capacitance);
                total_c += spec.capacitance;
            }
            continue;
        }
        stack.extend(tree.children(v).iter().copied());
    }

    let step = opts.rise_time / opts.steps_per_rise as f64;
    let tau = (total_r * total_c).max(step);
    let duration = active_window + opts.settle_taus * tau;
    let result = transient::run_with(&cir, step, duration, opts.method)?;

    let mut out = Vec::with_capacity(ends.len());
    for &(n, _) in ends {
        let sim = sim_of[n.index()].expect("end must be inside the stage");
        let peak = result.peak_abs(sim.index());
        let width_at_half_peak = if peak > 0.0 {
            result.time_above(sim.index(), peak / 2.0)
        } else {
            0.0
        };
        out.push(StageMeasurement {
            node: n,
            peak,
            width_at_half_peak,
        });
    }
    Ok(out)
}

/// Convenience: peak noise at every sink of an *unbuffered* net, driven
/// from its source gate.
///
/// # Errors
///
/// Same as [`stage_peak_noise`].
pub fn net_peak_noise(
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    opts: &RefereeOptions,
) -> Result<Vec<StageMeasurement>, SingularMatrixError> {
    let ends: Vec<(NodeId, f64)> = tree
        .sinks()
        .iter()
        .map(|&s| {
            let cap = tree.sink_spec(s).expect("is sink").capacitance;
            (s, cap)
        })
        .collect();
    stage_peak_noise(
        tree,
        scenario,
        tree.source(),
        tree.driver().resistance,
        &ends,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffopt_noise::metric;
    use buffopt_tree::{Driver, SinkSpec, Technology, TreeBuilder};

    fn estimation(tree: &RoutingTree) -> NoiseScenario {
        NoiseScenario::estimation(tree, 0.7, 7.2e9)
    }

    fn two_pin(len: f64, rso: f64) -> RoutingTree {
        let tech = Technology::global_layer();
        let mut b = TreeBuilder::new(Driver::new(rso, 10e-12));
        b.add_sink(b.source(), tech.wire(len), SinkSpec::new(20e-15, 1e-9, 0.8))
            .expect("sink");
        b.build().expect("tree")
    }

    #[test]
    fn devgan_metric_upper_bounds_simulation_two_pin() {
        for len in [1_000.0, 4_000.0, 12_000.0] {
            for rso in [100.0, 500.0, 2_000.0] {
                let t = two_pin(len, rso);
                let s = estimation(&t);
                let sim = net_peak_noise(&t, &s, &RefereeOptions::default()).expect("sim");
                let bound = metric::sink_noise(&t, &s);
                assert_eq!(sim.len(), 1);
                assert!(
                    sim[0].peak <= bound[0].noise * (1.0 + 1e-6),
                    "len {len} rso {rso}: sim {} > metric {}",
                    sim[0].peak,
                    bound[0].noise
                );
                assert!(sim[0].peak > 0.0, "coupling must produce noise");
            }
        }
    }

    #[test]
    fn metric_conservatism_grows_with_driver_strength() {
        // With a strong holding driver, the RC filter attenuates the
        // injected noise well below the (resistive-only) Devgan bound.
        let t = two_pin(8_000.0, 50.0);
        let s = estimation(&t);
        let sim = net_peak_noise(&t, &s, &RefereeOptions::default()).expect("sim");
        let bound = metric::sink_noise(&t, &s);
        let ratio = sim[0].peak / bound[0].noise;
        assert!(ratio < 1.0, "ratio {ratio}");
    }

    #[test]
    fn branch_net_measures_all_sinks() {
        let tech = Technology::global_layer();
        let mut b = TreeBuilder::new(Driver::new(300.0, 0.0));
        let j = b.add_internal(b.source(), tech.wire(2_000.0)).expect("j");
        for _ in 0..2 {
            b.add_sink(j, tech.wire(1_500.0), SinkSpec::new(15e-15, 1e-9, 0.8))
                .expect("sink");
        }
        let t = b.build().expect("tree");
        let s = estimation(&t);
        let sim = net_peak_noise(&t, &s, &RefereeOptions::default()).expect("sim");
        let bound = metric::sink_noise(&t, &s);
        assert_eq!(sim.len(), 2);
        for (m, b) in sim.iter().zip(&bound) {
            assert_eq!(m.node, b.sink);
            assert!(m.peak <= b.noise * (1.0 + 1e-6));
        }
    }

    #[test]
    fn pulse_width_reported_and_plausible() {
        // The paper notes the metric ignores pulse width; the referee
        // reports the half-peak width, which for a ramp-coupled RC stage
        // is on the order of the rise time plus the stage RC.
        let t = two_pin(6_000.0, 300.0);
        let s = estimation(&t);
        let opts = RefereeOptions::default();
        let m = net_peak_noise(&t, &s, &opts).expect("sim");
        let width = m[0].width_at_half_peak;
        assert!(width > 0.0);
        assert!(
            width < 100.0 * opts.rise_time,
            "width {width} out of physical range"
        );
    }

    #[test]
    fn trapezoidal_referee_also_respects_the_bound() {
        let t = two_pin(8_000.0, 300.0);
        let s = estimation(&t);
        let tr = net_peak_noise(
            &t,
            &s,
            &RefereeOptions {
                method: crate::transient::Method::Trapezoidal,
                ..RefereeOptions::default()
            },
        )
        .expect("sim");
        let be = net_peak_noise(&t, &s, &RefereeOptions::default()).expect("sim");
        let bound = metric::sink_noise(&t, &s);
        assert!(tr[0].peak <= bound[0].noise * (1.0 + 1e-6));
        // BE slightly damps peaks; the two schemes agree within a few %.
        let rel = (tr[0].peak - be[0].peak).abs() / be[0].peak;
        assert!(rel < 0.05, "BE {} vs TR {} ({rel})", be[0].peak, tr[0].peak);
    }

    #[test]
    fn quiet_scenario_simulates_to_zero() {
        let t = two_pin(3_000.0, 300.0);
        let s = NoiseScenario::quiet(&t);
        let sim = net_peak_noise(&t, &s, &RefereeOptions::default()).expect("sim");
        assert!(sim[0].peak < 1e-9);
    }

    #[test]
    fn more_segments_refine_the_answer() {
        let t = two_pin(10_000.0, 300.0);
        let s = estimation(&t);
        let coarse = net_peak_noise(
            &t,
            &s,
            &RefereeOptions {
                segments_per_wire: 1,
                ..RefereeOptions::default()
            },
        )
        .expect("sim");
        let fine = net_peak_noise(
            &t,
            &s,
            &RefereeOptions {
                segments_per_wire: 8,
                ..RefereeOptions::default()
            },
        )
        .expect("sim");
        // Both below the bound, and within ~15 % of each other.
        let rel = (coarse[0].peak - fine[0].peak).abs() / fine[0].peak;
        assert!(rel < 0.15, "discretization gap {rel}");
    }

    #[test]
    fn multi_aggressor_bound_holds_for_any_alignment() {
        // Fig. 2 setting: several aggressors with distinct slopes and
        // start offsets. The Devgan metric with factor Σ λ·µ per wire
        // bounds the simulated peak for every alignment.
        use buffopt_noise::Aggressor;
        let t = two_pin(5_000.0, 300.0);
        let sink = t.sinks()[0];
        let aggs = [
            Aggressor::from_rise_time(0.4, 1.8, 0.3e-9),
            Aggressor::from_rise_time(0.3, 1.8, 0.15e-9),
        ];
        let s = NoiseScenario::from_aggressors(&t, [(sink, aggs.to_vec())]);
        let bound = metric::sink_noise(&t, &s)[0].noise;
        let opts = RefereeOptions::default();
        for (s1, s2) in [(0.0, 0.0), (0.0, 0.2e-9), (0.1e-9, 0.0), (0.3e-9, 0.05e-9)] {
            let timed = vec![(
                sink,
                vec![
                    TimedAggressor {
                        coupling_ratio: aggs[0].coupling_ratio,
                        slope: aggs[0].slope,
                        start: s1,
                    },
                    TimedAggressor {
                        coupling_ratio: aggs[1].coupling_ratio,
                        slope: aggs[1].slope,
                        start: s2,
                    },
                ],
            )];
            let m = stage_peak_noise_with_aggressors(
                &t,
                &timed,
                t.source(),
                t.driver().resistance,
                &[(sink, 20e-15)],
                &opts,
            )
            .expect("sim");
            assert!(
                m[0].peak <= bound * (1.0 + 1e-6),
                "alignment ({s1:.1e},{s2:.1e}): sim {} > bound {bound}",
                m[0].peak
            );
            assert!(m[0].peak > 0.0);
        }
    }

    #[test]
    fn simultaneous_switching_is_worst_case_here() {
        // On a single-pole-dominated stage, aligning both aggressors at
        // t = 0 maximizes the peak versus a large stagger.
        use buffopt_noise::Aggressor;
        let t = two_pin(5_000.0, 300.0);
        let sink = t.sinks()[0];
        let a = Aggressor::from_rise_time(0.35, 1.8, 0.25e-9);
        let opts = RefereeOptions::default();
        let run = |s1: f64, s2: f64| {
            let timed = vec![(
                sink,
                vec![
                    TimedAggressor {
                        coupling_ratio: a.coupling_ratio,
                        slope: a.slope,
                        start: s1,
                    },
                    TimedAggressor {
                        coupling_ratio: a.coupling_ratio,
                        slope: a.slope,
                        start: s2,
                    },
                ],
            )];
            stage_peak_noise_with_aggressors(
                &t,
                &timed,
                t.source(),
                t.driver().resistance,
                &[(sink, 20e-15)],
                &opts,
            )
            .expect("sim")[0]
                .peak
        };
        let aligned = run(0.0, 0.0);
        let staggered = run(0.0, 2.0e-9);
        assert!(
            aligned > staggered,
            "aligned {aligned} should beat staggered {staggered}"
        );
    }

    #[test]
    fn mid_stage_measurement_from_buffer_root() {
        // Measure a stage rooted at an internal node, as the buffered-net
        // referee does: root j with a buffer-like gate resistance.
        let tech = Technology::global_layer();
        let mut b = TreeBuilder::new(Driver::new(300.0, 0.0));
        let j = b.add_internal(b.source(), tech.wire(2_000.0)).expect("j");
        let sk = b
            .add_sink(j, tech.wire(3_000.0), SinkSpec::new(15e-15, 1e-9, 0.8))
            .expect("sink");
        let t = b.build().expect("tree");
        let s = estimation(&t);
        let sim = stage_peak_noise(
            &t,
            &s,
            j,
            200.0,
            &[(sk, 15e-15)],
            &RefereeOptions::default(),
        )
        .expect("sim");
        assert_eq!(sim.len(), 1);
        let bound = metric::sink_noise_from(&t, &s, j, 200.0);
        let b_at_sink = bound.iter().find(|x| x.sink == sk).expect("sink bound");
        assert!(sim[0].peak <= b_at_sink.noise * (1.0 + 1e-6));
    }
}
