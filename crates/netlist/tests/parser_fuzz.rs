//! Parser fuzzing: `parse` must never panic, whatever bytes arrive.
//!
//! Three generators of increasing structure: raw byte soup (exercises
//! tokenization), directive soup (random well-formed-ish lines, exercises
//! the graph validation), and near-valid mutation (corrupt a valid file a
//! few bytes at a time, exercises every error path close to the happy
//! path). On top of "no panic" we assert the error contract: a reported
//! line number never exceeds the line count, and the message renders.

use buffopt_netlist::{parse, write};
use proptest::prelude::*;

/// The error contract every rejection must honor.
fn well_formed_rejection(text: &str) -> Result<(), TestCaseError> {
    if let Err(e) = parse(text) {
        prop_assert!(
            e.line <= text.lines().count(),
            "error line {} beyond the {}-line input",
            e.line,
            text.lines().count()
        );
        prop_assert!(!e.to_string().is_empty());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(0u8..=255u8, 0..512)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        well_formed_rejection(&text)?;
    }
}

/// One random net-format-flavored line: mostly grammatical directives
/// over a tiny node-name alphabet (so duplicates, cycles, and orphans
/// actually happen), with occasional genuine garbage.
fn arb_line() -> impl Strategy<Value = String> {
    (
        0u8..8,
        0u8..6,
        0u8..6,
        -1e3f64..1e3,
        -1e-12f64..1e-12,
        0f64..5e3,
    )
        .prop_map(|(directive, a, b, x, y, z)| match directive {
            0 => format!("driver {x} {y}"),
            1 => format!("wire n{a} n{b} {x} {y} {z}"),
            2 => format!("wire source n{b} {x} {y} {z} {x}"),
            3 => format!("sink n{a} {y} {z} {x}"),
            4 => format!("sink n{a} {y} inf {x}"),
            5 => format!("net n{a}"),
            6 => format!("# comment {x}"),
            _ => format!("{x} wire sink ## n{b}"),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn directive_soup_never_panics(lines in prop::collection::vec(arb_line(), 0..24)) {
        let text = lines.join("\n");
        well_formed_rejection(&text)?;
    }
}

const VALID: &str = "\
net fuzzbase
driver 300 2e-11
wire source j1 320 1e-12 4000 5.04e9
wire j1 s1 240 7.5e-13 3000 5.04e9
wire j1 s2 120 3.8e-13 1500
sink s1 2e-14 1.2e-9 0.8
sink s2 1.2e-14 inf 0.8
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Corrupt a known-valid file with a handful of byte edits. Whatever
    /// still parses must also survive a write → parse round-trip.
    #[test]
    fn near_valid_mutations_never_panic(
        edits in prop::collection::vec((0usize..256, 0u8..=255u8, 0u8..3), 1..6),
    ) {
        let mut bytes = VALID.as_bytes().to_vec();
        for &(pos, byte, op) in &edits {
            if bytes.is_empty() {
                break;
            }
            let pos = pos % bytes.len();
            match op {
                0 => bytes[pos] = byte,          // overwrite
                1 => bytes.insert(pos, byte),    // insert
                _ => {                           // delete
                    bytes.remove(pos);
                }
            }
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        well_formed_rejection(&text)?;
        if let Ok(net) = parse(&text) {
            let again = parse(&write(&net));
            prop_assert!(again.is_ok(), "own output failed to re-parse: {:?}", again.err());
        }
    }
}
