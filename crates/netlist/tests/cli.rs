//! End-to-end tests of the `buffopt-cli` binary via `CARGO_BIN_EXE`.

use std::io::Write;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_buffopt-cli"))
}

fn write_net(content: &str) -> tempfile_like::TempPath {
    tempfile_like::write(content)
}

/// Minimal self-contained temp-file helper (no external crates).
mod tempfile_like {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn write(content: &str) -> TempPath {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("buffopt-cli-test-{}-{n}.net", std::process::id()));
        std::fs::write(&path, content).expect("temp file is writable");
        TempPath(path)
    }

    pub struct TempDir(pub PathBuf);

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// A fresh directory populated with the given `(file name, content)`
    /// pairs.
    pub fn dir(files: &[(&str, &str)]) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("buffopt-cli-batch-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("temp dir is creatable");
        for (name, content) in files {
            std::fs::write(path.join(name), content).expect("net file writes");
        }
        TempDir(path)
    }
}

const VIOLATING_NET: &str = "\
net t1
driver 400 3e-11
wire source j1 320 1e-12 4000 5.04e9
wire j1 a 240 7.5e-13 3000 5.04e9
wire j1 b 120 3.75e-13 1500 5.04e9
sink a 2e-14 1.2e-9 0.8
sink b 1.2e-14 1.2e-9 0.8
";

const CLEAN_NET: &str = "\
net t2
driver 150 2e-11
wire source s 40 1.25e-13 500
sink s 1.5e-14 5e-10 0.8
";

#[test]
fn fixes_violating_net_and_exits_zero() {
    let f = write_net(VIOLATING_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--mode", "p3"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("buffers:"), "{stdout}");
    assert!(
        stdout.contains("place"),
        "a violating net needs buffers: {stdout}"
    );
}

#[test]
fn clean_net_needs_no_buffers() {
    let f = write_net(CLEAN_NET);
    let out = cli().arg(&f.0).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("buffers: 0"), "{stdout}");
}

#[test]
fn verify_flag_runs_the_referee() {
    let f = write_net(VIOLATING_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--verify"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("simulation referee"), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn noise_mode_uses_continuous_positions() {
    let f = write_net(VIOLATING_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--mode", "noise"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("noise headroom"), "{stdout}");
}

#[test]
fn cost_mode_reports_cost() {
    let f = write_net(VIOLATING_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--mode", "cost", "--lib", "ibm"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
}

#[test]
fn bad_file_exits_3() {
    let out = cli()
        .arg("/nonexistent/definitely-missing.net")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn parse_error_reports_line() {
    let f = write_net("driver 100 zero\n");
    let out = cli().arg(&f.0).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "{stderr}");
}

#[test]
fn unknown_flag_exits_3_with_usage() {
    let out = cli().arg("--frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn impossible_timing_exits_1_with_warning() {
    let tight = VIOLATING_NET.replace("1.2e-9", "1e-12");
    let f = write_net(&tight);
    let out = cli().arg(&f.0).output().expect("binary runs");
    // Noise is fixed but timing is impossible: degraded exit + warning.
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("timing not met"), "{stderr}");
    let _ = std::io::stdout().flush();
}

#[test]
fn tree_node_budget_exits_2_with_typed_error() {
    let f = write_net(VIOLATING_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--max-tree-nodes", "2"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tree nodes"), "{stderr}");
}

#[test]
fn expired_deadline_exits_2_not_hangs() {
    let f = write_net(VIOLATING_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--time-limit-ms", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline"), "{stderr}");
}

#[test]
fn batch_emits_one_record_per_net_and_ranks_exit() {
    // Four nets: healthy, malformed, noise-infeasible, budget-busting
    // (the tree-node cap below admits the small nets but not this one).
    let hopeless = VIOLATING_NET.replace(" 0.8", " 1e-6");
    let big = {
        let mut s = String::from("net big\ndriver 300 2e-11\n");
        for i in 0..40 {
            let parent = if i == 0 {
                "source".to_string()
            } else {
                format!("n{}", i - 1)
            };
            s.push_str(&format!("wire {parent} n{i} 80 2.5e-13 1000 5.04e9\n"));
        }
        s.push_str("sink n39 2e-14 1.2e-9 0.8\n");
        s
    };
    let d = tempfile_like::dir(&[
        ("healthy.net", CLEAN_NET),
        ("mangled.net", "driver 100 zero\n"),
        ("hopeless.net", &hopeless),
        ("big.net", &big),
    ]);
    let out = cli()
        .args(["--batch", d.0.to_str().expect("utf8 path")])
        .args(["--max-tree-nodes", "30"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "one JSONL record per net: {stdout}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains(r#""outcome":"#), "{line}");
    }
    // Sorted by file name: big, healthy, hopeless, mangled — and each
    // lands on a different outcome. The big net busts the tree-node cap
    // on every rung, so all that remains is the unbuffered diagnosis; the
    // hopeless margin defeats the DP rungs but continuous noise avoidance
    // still serves it (timing unmet ⇒ degraded).
    assert!(lines[0].contains(r#""net":"big""#), "{}", lines[0]);
    assert!(
        lines[0].contains(r#""outcome":"infeasible""#),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("tree nodes"), "{}", lines[0]);
    assert!(
        lines[1].contains(r#""outcome":"optimized""#),
        "{}",
        lines[1]
    );
    assert!(lines[2].contains(r#""outcome":"degraded""#), "{}", lines[2]);
    assert!(
        lines[3].contains(r#""outcome":"parse_error""#),
        "{}",
        lines[3]
    );
    // The parse error outranks everything else.
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("4 nets"), "{stderr}");
}

#[test]
fn batch_of_healthy_nets_exits_zero() {
    let d = tempfile_like::dir(&[
        ("a.net", CLEAN_NET),
        ("b.net", VIOLATING_NET),
        ("notes.txt", "not a net file; must be ignored"),
    ]);
    let out = cli()
        .args(["--batch", d.0.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 2, "{stdout}");
}

#[test]
fn batch_of_missing_dir_exits_3() {
    let out = cli()
        .args(["--batch", "/nonexistent/never-a-dir"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
}

/// Replaces every measured `"wall_ms":<float>` with a placeholder so two
/// runs can be compared byte-for-byte.
fn normalize_wall(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    let mut rest = jsonl;
    while let Some(at) = rest.find("\"wall_ms\":") {
        let after = at + "\"wall_ms\":".len();
        out.push_str(&rest[..after]);
        out.push('X');
        rest = rest[after..]
            .trim_start_matches(|c: char| c.is_ascii_digit() || matches!(c, '.' | 'e' | '-' | '+'));
    }
    out.push_str(rest);
    out
}

#[test]
fn batch_jobs_flag_changes_nothing_but_wall_times() {
    let hopeless = VIOLATING_NET.replace(" 0.8", " 1e-6");
    let d = tempfile_like::dir(&[
        ("a.net", CLEAN_NET),
        ("b.net", VIOLATING_NET),
        ("c.net", "driver 100 zero\n"),
        ("d.net", &hopeless),
        ("e.net", &CLEAN_NET.replace("net t2", "net t2e")),
        ("f.net", &VIOLATING_NET.replace("net t1", "net t1f")),
    ]);
    let run = |jobs: &str| {
        cli()
            .args(["--batch", d.0.to_str().expect("utf8 path")])
            .args(["--jobs", jobs])
            .output()
            .expect("binary runs")
    };
    let serial = run("1");
    let parallel = run("4");
    assert_eq!(
        normalize_wall(&String::from_utf8_lossy(&serial.stdout)),
        normalize_wall(&String::from_utf8_lossy(&parallel.stdout)),
        "records must be identical modulo measured wall times"
    );
    assert_eq!(serial.status.code(), parallel.status.code());
    // Both summaries count the same population.
    for out in [&serial, &parallel] {
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("6 nets"), "{stderr}");
    }
    assert_eq!(serial.status.code(), Some(3), "parse error dominates");
}

/// Replaces the numeric value after every `"key":` occurrence with a
/// placeholder (same trick as [`normalize_wall`]).
fn normalize_field(jsonl: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let mut out = String::with_capacity(jsonl.len());
    let mut rest = jsonl;
    while let Some(at) = rest.find(&needle) {
        let after = at + needle.len();
        out.push_str(&rest[..after]);
        out.push('X');
        rest = rest[after..]
            .trim_start_matches(|c: char| c.is_ascii_digit() || matches!(c, '.' | 'e' | '-' | '+'));
    }
    out.push_str(rest);
    out
}

#[test]
fn batch_memo_changes_nothing_but_peaks_and_wall_times() {
    // Two structurally identical (renamed) copies of the violating net so
    // the second is a guaranteed memo hit, plus assorted other nets.
    let d = tempfile_like::dir(&[
        ("a.net", VIOLATING_NET),
        ("b.net", CLEAN_NET),
        ("c.net", &VIOLATING_NET.replace("net t1", "net t1c")),
        ("d.net", &VIOLATING_NET.replace("2e-14", "2.5e-14")),
    ]);
    let run = |extra: &[&str]| {
        cli()
            .args(["--batch", d.0.to_str().expect("utf8 path")])
            .args(["--jobs", "1"])
            .args(extra)
            .output()
            .expect("binary runs")
    };
    let plain = run(&[]);
    let memo = run(&["--memo-budget-mb", "16"]);
    let off = run(&["--memo-budget-mb", "16", "--no-memo"]);
    let scrub = |out: &std::process::Output| {
        let mut s = normalize_wall(&String::from_utf8_lossy(&out.stdout));
        for key in [
            "candidate_peak",
            "merge_peak",
            "merge_enumerated",
            "merge_pruned",
            "arena_peak",
        ] {
            s = normalize_field(&s, key);
        }
        s
    };
    // Seeded runs skip merges, so only the measured peaks (and timings)
    // may differ; every solution field must be byte-identical.
    assert_eq!(
        scrub(&plain),
        scrub(&memo),
        "memo-seeded records must match modulo peak statistics"
    );
    assert_eq!(plain.status.code(), memo.status.code());
    // --no-memo wins over --memo-budget-mb: byte-identical modulo wall.
    assert_eq!(
        normalize_wall(&String::from_utf8_lossy(&plain.stdout)),
        normalize_wall(&String::from_utf8_lossy(&off.stdout)),
        "--no-memo must restore the memo-free records exactly"
    );
}

#[test]
fn zero_memo_budget_is_rejected() {
    let out = cli()
        .args(["--batch", "/tmp", "--memo-budget-mb", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn zero_jobs_is_rejected() {
    let out = cli()
        .args(["--batch", "/tmp", "--jobs", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

/// A journal path in the temp dir, removed on drop.
fn journal_path(tag: &str) -> tempfile_like::TempPath {
    let p = std::env::temp_dir().join(format!(
        "buffopt-cli-journal-{}-{tag}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    tempfile_like::TempPath(p)
}

#[test]
fn interrupted_batch_resumes_byte_identical_modulo_wall_times() {
    let d = tempfile_like::dir(&[
        ("a.net", CLEAN_NET),
        ("b.net", VIOLATING_NET),
        ("c.net", &CLEAN_NET.replace("net t2", "net t2c")),
        ("d.net", &VIOLATING_NET.replace("net t1", "net t1d")),
    ]);
    let dir = d.0.to_str().expect("utf8 path");
    let journal = journal_path("resume");
    let jpath = journal.0.to_str().expect("utf8 path");

    // The uninterrupted reference run, journaling as it goes.
    let full = cli()
        .args(["--batch", dir, "--jobs", "2", "--journal", jpath])
        .output()
        .expect("binary runs");
    assert_eq!(
        full.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&full.stderr)
    );
    let full_stdout = String::from_utf8_lossy(&full.stdout).into_owned();
    assert_eq!(full_stdout.lines().count(), 4);

    // Simulate a crash after two completed records: truncate the journal
    // to its header plus first two record lines (fsync-per-append
    // guarantees the prefix is exactly what a killed process would
    // leave, modulo a torn tail).
    let lines: Vec<String> = std::fs::read_to_string(&journal.0)
        .expect("journal readable")
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(
        lines.len(),
        5,
        "format header plus one journal line per completed net"
    );
    assert!(lines[0].starts_with("#buffopt-journal "), "{}", lines[0]);
    std::fs::write(
        &journal.0,
        format!("{}\n{}\n{}\n", lines[0], lines[1], lines[2]),
    )
    .expect("truncate");

    let resumed = cli()
        .args(["--batch", dir, "--jobs", "2", "--resume", jpath])
        .output()
        .expect("binary runs");
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_stdout = String::from_utf8_lossy(&resumed.stdout).into_owned();
    assert_eq!(
        normalize_wall(&resumed_stdout),
        normalize_wall(&full_stdout),
        "resume reproduces the uninterrupted output modulo wall times"
    );
    // The two checkpointed records are spliced verbatim — byte-identical
    // including their measured wall times.
    for line in &lines[1..3] {
        // A record line is `<key> <crc> {record}`.
        let record = line.splitn(3, ' ').nth(2).expect("key- and crc-prefixed");
        assert!(
            resumed_stdout.lines().any(|l| l == record),
            "journaled record not spliced verbatim: {record}"
        );
    }
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(stderr.contains("2 resumed from journal"), "{stderr}");

    // The resumed run kept journaling: the journal is whole again and a
    // second resume recomputes nothing.
    let again = cli()
        .args(["--batch", dir, "--resume", jpath])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&again.stderr);
    assert!(stderr.contains("4 resumed from journal"), "{stderr}");
    assert_eq!(
        normalize_wall(&String::from_utf8_lossy(&again.stdout)),
        normalize_wall(&full_stdout)
    );
}

#[test]
fn resume_recomputes_nets_whose_content_changed() {
    let d = tempfile_like::dir(&[("a.net", CLEAN_NET), ("b.net", VIOLATING_NET)]);
    let dir = d.0.to_str().expect("utf8 path");
    let journal = journal_path("changed");
    let jpath = journal.0.to_str().expect("utf8 path");

    let first = cli()
        .args(["--batch", dir, "--journal", jpath])
        .output()
        .expect("binary runs");
    assert_eq!(first.status.code(), Some(0));

    // Keys are content digests: editing a net invalidates its checkpoint.
    std::fs::write(
        d.0.join("b.net"),
        VIOLATING_NET.replace("400 3e-11", "410 3e-11"),
    )
    .expect("edit net");
    let resumed = cli()
        .args(["--batch", dir, "--resume", jpath])
        .output()
        .expect("binary runs");
    assert_eq!(resumed.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("1 resumed from journal"),
        "only the untouched net is skipped: {stderr}"
    );
}

#[test]
fn journal_flags_are_validated() {
    let f = write_net(CLEAN_NET);
    let single = cli()
        .arg(&f.0)
        .args(["--journal", "/tmp/never.log"])
        .output()
        .expect("binary runs");
    assert_eq!(single.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&single.stderr).contains("--batch"),
        "journal requires batch mode"
    );

    let both = cli()
        .args(["--batch", "/tmp"])
        .args(["--journal", "/tmp/a.log", "--resume", "/tmp/b.log"])
        .output()
        .expect("binary runs");
    assert_eq!(both.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&both.stderr).contains("exclusive"),
        "journal and resume are exclusive"
    );
}

#[test]
fn resume_rejects_a_foreign_journal() {
    let d = tempfile_like::dir(&[("a.net", CLEAN_NET)]);
    let journal = journal_path("foreign");
    std::fs::write(&journal.0, "this is not a journal\n").expect("write");
    let out = cli()
        .args(["--batch", d.0.to_str().expect("utf8 path")])
        .args(["--resume", journal.0.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load journal"), "{stderr}");
    assert!(stderr.contains("not a buffopt journal"), "{stderr}");
}

#[test]
fn resume_refuses_an_unsupported_journal_version_distinctly() {
    let d = tempfile_like::dir(&[("a.net", CLEAN_NET)]);
    let journal = journal_path("version");
    std::fs::write(&journal.0, "#buffopt-journal v1\n").expect("write");
    let out = cli()
        .args(["--batch", d.0.to_str().expect("utf8 path")])
        .args(["--resume", journal.0.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unsupported journal format `#buffopt-journal v1`"),
        "version refusals name the mismatch: {stderr}"
    );
}

#[test]
fn corrupted_journal_lines_are_quarantined_and_their_nets_recomputed() {
    let d = tempfile_like::dir(&[("a.net", CLEAN_NET), ("b.net", VIOLATING_NET)]);
    let dir = d.0.to_str().expect("utf8 path");
    let journal = journal_path("corrupt");
    let jpath = journal.0.to_str().expect("utf8 path");

    let full = cli()
        .args(["--batch", dir, "--journal", jpath])
        .output()
        .expect("binary runs");
    assert_eq!(full.status.code(), Some(0));
    let full_stdout = String::from_utf8_lossy(&full.stdout).into_owned();

    // Flip one byte in the middle of the first record line — the model
    // of silent at-rest corruption.
    let mut bytes = std::fs::read(&journal.0).expect("journal readable");
    let header_end = bytes.iter().position(|&b| b == b'\n').expect("header") + 1;
    let line_end = header_end
        + bytes[header_end..]
            .iter()
            .position(|&b| b == b'\n')
            .expect("record line");
    let mid = header_end + (line_end - header_end) / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&journal.0, &bytes).expect("rewrite");

    let resumed = cli()
        .args(["--batch", dir, "--resume", jpath])
        .output()
        .expect("binary runs");
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("1 corrupt journal line(s) quarantined"),
        "{stderr}"
    );
    assert!(stderr.contains("1 resumed from journal"), "{stderr}");
    // The corrupt line is preserved for forensics, not silently dropped.
    let sidecar = std::fs::read_to_string(format!("{jpath}.quarantine")).expect("sidecar exists");
    assert_eq!(sidecar.lines().count(), 1, "{sidecar}");
    let _ = std::fs::remove_file(format!("{jpath}.quarantine"));

    // The recompute restores the exact records of the clean run.
    assert_eq!(
        normalize_wall(&String::from_utf8_lossy(&resumed.stdout)),
        normalize_wall(&full_stdout),
        "corruption costs a recompute, never wrong output"
    );
}

#[test]
fn batch_verify_sample_rate_audits_every_record_cleanly() {
    let d = tempfile_like::dir(&[("a.net", CLEAN_NET), ("b.net", VIOLATING_NET)]);
    let out = cli()
        .args(["--batch", d.0.to_str().expect("utf8 path")])
        .args(["--verify-sample-rate", "1.0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("sampled audit: 2 record(s) re-verified, all consistent"),
        "{stderr}"
    );
}

#[test]
fn integrity_flags_are_validated() {
    // --frame-check is a serve option.
    let out = cli()
        .args(["--batch", "/tmp", "--frame-check"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--frame-check only applies to serve"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The sample rate is a probability.
    let out = cli()
        .args(["--batch", "/tmp", "--verify-sample-rate", "1.5"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("within [0, 1]"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Single-net mode has no cache or server to audit.
    let f = write_net(CLEAN_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--verify-sample-rate", "0.5"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--batch and serve"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_answers_optimize_stats_and_shutdown() {
    use std::io::{BufRead, BufReader, Read};
    use std::net::TcpStream;
    use std::process::Stdio;

    let mut child = cli()
        .args(["serve", "--listen", "127.0.0.1:0", "--jobs", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server starts");
    let mut child_out = BufReader::new(child.stdout.take().expect("piped"));
    let mut banner = String::new();
    child_out.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut send = |line: &str| {
        use std::io::Write as _;
        (&stream)
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response");
        resp.trim_end().to_string()
    };

    let net_json = CLEAN_NET.replace('\n', "\\n");
    let first = send(&format!("{{\"id\":\"t2\",\"net\":\"{net_json}\"}}"));
    assert!(first.contains("\"outcome\":\"optimized\""), "{first}");
    assert!(first.contains("\"cache\":\"miss\""), "{first}");
    assert_eq!(
        first.matches('{').count(),
        first.matches('}').count(),
        "spliced response must stay one well-formed object: {first}"
    );
    let second = send(&format!("{{\"id\":\"t2\",\"net\":\"{net_json}\"}}"));
    assert!(second.contains("\"cache\":\"hit\""), "{second}");
    assert_eq!(
        first.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
        second,
        "a hit replays the stored record"
    );

    let broken = send("{\"id\":\"bad\",\"net\":\"driver 100 zero\"}");
    assert!(broken.contains("\"outcome\":\"parse_error\""), "{broken}");
    let garbage = send("this is not json");
    assert!(garbage.starts_with("{\"error\":"), "{garbage}");

    let stats = send("{\"cmd\":\"stats\"}");
    assert!(stats.contains("\"requests\":3"), "{stats}");
    assert!(stats.contains("\"hits\":1"), "{stats}");
    assert!(stats.contains("\"workers\":2"), "{stats}");
    assert!(stats.contains("\"uptime_ms\":"), "{stats}");
    assert!(stats.contains("\"version\":\""), "{stats}");
    assert!(stats.contains("\"integrity\":{\"checks\":"), "{stats}");

    let ack = send("{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    let status = child.wait().expect("server exits");
    assert_eq!(status.code(), Some(0), "clean shutdown");
    let mut rest = String::new();
    child_out.read_to_string(&mut rest).expect("drained");
}
