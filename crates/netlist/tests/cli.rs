//! End-to-end tests of the `buffopt-cli` binary via `CARGO_BIN_EXE`.

use std::io::Write;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_buffopt-cli"))
}

fn write_net(content: &str) -> tempfile_like::TempPath {
    tempfile_like::write(content)
}

/// Minimal self-contained temp-file helper (no external crates).
mod tempfile_like {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn write(content: &str) -> TempPath {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "buffopt-cli-test-{}-{n}.net",
            std::process::id()
        ));
        std::fs::write(&path, content).expect("temp file is writable");
        TempPath(path)
    }
}

const VIOLATING_NET: &str = "\
net t1
driver 400 3e-11
wire source j1 320 1e-12 4000 5.04e9
wire j1 a 240 7.5e-13 3000 5.04e9
wire j1 b 120 3.75e-13 1500 5.04e9
sink a 2e-14 1.2e-9 0.8
sink b 1.2e-14 1.2e-9 0.8
";

const CLEAN_NET: &str = "\
net t2
driver 150 2e-11
wire source s 40 1.25e-13 500
sink s 1.5e-14 5e-10 0.8
";

#[test]
fn fixes_violating_net_and_exits_zero() {
    let f = write_net(VIOLATING_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--mode", "p3"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("buffers:"), "{stdout}");
    assert!(stdout.contains("place"), "a violating net needs buffers: {stdout}");
}

#[test]
fn clean_net_needs_no_buffers() {
    let f = write_net(CLEAN_NET);
    let out = cli().arg(&f.0).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("buffers: 0"), "{stdout}");
}

#[test]
fn verify_flag_runs_the_referee() {
    let f = write_net(VIOLATING_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--verify"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("simulation referee"), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn noise_mode_uses_continuous_positions() {
    let f = write_net(VIOLATING_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--mode", "noise"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("noise headroom"), "{stdout}");
}

#[test]
fn cost_mode_reports_cost() {
    let f = write_net(VIOLATING_NET);
    let out = cli()
        .arg(&f.0)
        .args(["--mode", "cost", "--lib", "ibm"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
}

#[test]
fn bad_file_exits_2() {
    let out = cli()
        .arg("/nonexistent/definitely-missing.net")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn parse_error_reports_line() {
    let f = write_net("driver 100 zero\n");
    let out = cli().arg(&f.0).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "{stderr}");
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    let out = cli().arg("--frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn impossible_timing_warns_but_reports() {
    let tight = VIOLATING_NET.replace("1.2e-9", "1e-12");
    let f = write_net(&tight);
    let out = cli().arg(&f.0).output().expect("binary runs");
    // Noise is fixed but timing is impossible: non-zero exit + warning.
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("timing not met"), "{stderr}");
    let _ = std::io::stdout().flush();
}
