//! `buffopt-cli` — fix the noise and timing of a `.net` file from the
//! command line.
//!
//! ```text
//! buffopt-cli NET_FILE [--segment UM] [--mode p2|p3|cost|noise|greedy]
//!             [--lib ibm|single] [--polarity] [--conservative] [--verify]
//!             [--dump]
//! ```
//!
//! * `--segment UM` — Alpert–Devgan wire segmenting pitch (default 500);
//! * `--mode` — `p3` (default): fewest buffers meeting noise+timing;
//!   `p2`: maximize slack under noise constraints; `cost`: cheapest
//!   buffers meeting both; `noise`: pure noise avoidance (Algorithm 2,
//!   continuous positions); `greedy`: the related-work iterative
//!   single-buffer baseline (for comparison — expect more buffers);
//! * `--lib` — the 11-buffer IBM-like catalog (default) or a single type;
//! * `--polarity` — enforce the inverting-buffer pairing rule;
//! * `--conservative` — exact 4-D pruning;
//! * `--verify` — run the transient-simulation referee on the result;
//! * `--dump` — print the parsed routing tree before optimizing.

use std::process::ExitCode;

use buffopt::buffopt::{self as algo3, BuffOptOptions};
use buffopt::iterative::{self, IterativeOptions};
use buffopt::{algorithm2, audit, Assignment};
use buffopt_buffers::{catalog, BufferLibrary};
use buffopt_netlist::parse;
use buffopt_noise::NoiseScenario;
use buffopt_sim::referee::{self, RefereeOptions};
use buffopt_tree::{segment, RoutingTree};

struct Args {
    file: String,
    segment: f64,
    mode: Mode,
    library: BufferLibrary,
    polarity: bool,
    conservative: bool,
    verify: bool,
    dump: bool,
}

#[derive(PartialEq)]
enum Mode {
    P2,
    P3,
    Cost,
    Noise,
    Greedy,
}

fn usage() -> String {
    "usage: buffopt-cli NET_FILE [--segment UM] [--mode p2|p3|cost|noise|greedy] \
     [--lib ibm|single] [--polarity] [--conservative] [--verify] [--dump]"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut file = None;
    let mut segment = 500.0;
    let mut mode = Mode::P3;
    let mut library = catalog::ibm_like();
    let mut polarity = false;
    let mut conservative = false;
    let mut verify = false;
    let mut dump = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--segment" => {
                let v = it.next().ok_or_else(usage)?;
                segment = v.parse().map_err(|_| format!("bad --segment {v:?}"))?;
            }
            "--mode" => {
                mode = match it.next().as_deref() {
                    Some("p2") => Mode::P2,
                    Some("p3") => Mode::P3,
                    Some("cost") => Mode::Cost,
                    Some("noise") => Mode::Noise,
                    Some("greedy") => Mode::Greedy,
                    other => return Err(format!("bad --mode {other:?}")),
                };
            }
            "--lib" => {
                library = match it.next().as_deref() {
                    Some("ibm") => catalog::ibm_like(),
                    Some("single") => catalog::single_buffer(),
                    other => return Err(format!("bad --lib {other:?}")),
                };
            }
            "--polarity" => polarity = true,
            "--conservative" => conservative = true,
            "--verify" => verify = true,
            "--dump" => dump = true,
            "--help" | "-h" => return Err(usage()),
            other if file.is_none() && !other.starts_with('-') => {
                file = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        file: file.ok_or_else(usage)?,
        segment,
        mode,
        library,
        polarity,
        conservative,
        verify,
        dump,
    })
}

fn report(
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    lib: &BufferLibrary,
    assignment: &Assignment,
    verify: bool,
) -> bool {
    let d = audit::delay(tree, lib, assignment);
    let n = audit::noise(tree, scenario, lib, assignment);
    println!(
        "buffers: {} (cost {:.0}), max delay {:.1} ps, timing slack {:+.1} ps, \
         worst noise headroom {:+.1} mV",
        assignment.count(),
        assignment.total_cost(lib) + 0.0, // normalizes -0.0 in the output
        d.max_delay() * 1e12,
        d.slack * 1e12,
        n.worst_headroom() * 1e3
    );
    for (node, b) in assignment.iter() {
        println!("  place {} at {}", lib.buffer(b).name, node);
    }
    let mut ok = !n.has_violation();
    if verify {
        let ropts = RefereeOptions::default();
        let mut worst = 0.0f64;
        let mut sim_ok = true;
        for stage in audit::stages(tree, lib, assignment) {
            if stage.ends.is_empty() {
                continue;
            }
            let ends: Vec<_> = stage.ends.iter().map(|&(nd, _, c)| (nd, c)).collect();
            match referee::stage_peak_noise(
                tree,
                scenario,
                stage.root,
                stage.gate_resistance,
                &ends,
                &ropts,
            ) {
                Ok(peaks) => {
                    for (m, &(_, margin, _)) in peaks.iter().zip(&stage.ends) {
                        worst = worst.max(m.peak);
                        if m.peak > margin {
                            sim_ok = false;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("simulation failed: {e}");
                    sim_ok = false;
                }
            }
        }
        println!(
            "simulation referee: worst stage peak {:.1} mV — {}",
            worst * 1e3,
            if sim_ok { "clean" } else { "VIOLATING" }
        );
        ok &= sim_ok;
    }
    ok
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::from(2);
        }
    };
    let net = match parse(&text) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "net {}: {} sinks, {:.1} mm wire, {:.1} fF",
        net.name.as_deref().unwrap_or("(unnamed)"),
        net.tree.sinks().len(),
        net.tree.total_wire_length() / 1000.0,
        net.tree.total_capacitance() * 1e15
    );
    if args.dump {
        print!("{}", buffopt_tree::render(&net.tree));
    }

    if args.mode == Mode::Noise {
        // Continuous-position noise avoidance on the raw tree.
        match algorithm2::avoid_noise(&net.tree, &net.scenario, &args.library) {
            Ok(sol) => {
                let ok = report(
                    &sol.tree,
                    &sol.scenario,
                    &args.library,
                    &sol.assignment,
                    args.verify,
                );
                return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
            }
            Err(e) => {
                eprintln!("noise avoidance failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let seg = match segment::segment_wires(&net.tree, args.segment) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("segmenting failed: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = net.scenario.for_segmented(&seg);
    let tree = seg.tree;
    let opts = BuffOptOptions {
        max_buffers: None,
        conservative_pruning: args.conservative,
        polarity_aware: args.polarity,
    };
    let sol = match args.mode {
        Mode::P2 => algo3::optimize(&tree, &scenario, &args.library, &opts),
        Mode::P3 => algo3::min_buffers(&tree, &scenario, &args.library, &opts),
        Mode::Cost => algo3::min_cost(&tree, &scenario, &args.library, &opts),
        Mode::Greedy => iterative::optimize(
            &tree,
            &scenario,
            &args.library,
            &IterativeOptions {
                noise: true,
                max_buffers: None,
            },
        ),
        Mode::Noise => unreachable!("handled above"),
    };
    match sol {
        Ok(sol) => {
            let ok = report(&tree, &scenario, &args.library, &sol.assignment, args.verify)
                && sol.slack >= 0.0;
            if sol.slack < 0.0 {
                eprintln!("warning: timing not met (slack {:.1} ps)", sol.slack * 1e12);
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("optimization failed: {e}");
            ExitCode::FAILURE
        }
    }
}
