//! `buffopt-cli` — fix the noise and timing of `.net` files from the
//! command line.
//!
//! ```text
//! buffopt-cli NET_FILE [--segment UM] [--mode p2|p3|cost|noise|greedy]
//!             [--lib ibm|single] [--polarity] [--conservative] [--verify]
//!             [--dump] [--time-limit-ms N] [--max-candidates N]
//!             [--max-tree-nodes N] [--memo-budget-mb N] [--no-memo]
//! buffopt-cli --batch DIR [--jobs N] [--journal FILE | --resume FILE]
//!             [--verify-sample-rate R] [--segment UM] [--lib ibm|single]
//!             [--polarity] [--conservative] [--time-limit-ms N]
//!             [--max-candidates N] [--max-tree-nodes N]
//! buffopt-cli serve [--listen ADDR] [--jobs N] [--cache N]
//!             [--queue-depth N] [--deadline-ms N] [--max-retries N]
//!             [--read-timeout-ms N] [--max-line-bytes N] [--frame-check]
//!             [--verify-sample-rate R] [shared flags as above]
//! ```
//!
//! * `--segment UM` — Alpert–Devgan wire segmenting pitch (default 500);
//! * `--mode` — `p3` (default): fewest buffers meeting noise+timing;
//!   `p2`: maximize slack under noise constraints; `cost`: cheapest
//!   buffers meeting both; `noise`: pure noise avoidance (Algorithm 2,
//!   continuous positions); `greedy`: the related-work iterative
//!   single-buffer baseline (for comparison — expect more buffers);
//! * `--lib` — the 11-buffer IBM-like catalog (default) or a single type;
//! * `--polarity` — enforce the inverting-buffer pairing rule;
//! * `--conservative` — exact 4-D pruning;
//! * `--verify` — run the transient-simulation referee on the result;
//! * `--dump` — print the parsed routing tree before optimizing;
//! * `--batch DIR` — run the fault-isolated pipeline over every `*.net`
//!   file in `DIR`: one JSONL outcome record per net on stdout, summary on
//!   stderr. A malformed, infeasible, or budget-busting net degrades that
//!   net only; the batch always completes;
//! * `--jobs N` — worker threads for `--batch` and `serve` (default: the
//!   machine's available parallelism). Records are emitted in input order
//!   with identical content whatever `N` is (only measured `wall_ms`
//!   timings vary, exactly as they do between two serial runs);
//! * `--journal FILE` — checkpoint each completed record to `FILE` with
//!   an fsync'd append, keyed by a content digest of the net. A batch
//!   killed mid-run loses at most the record being written;
//! * `--resume FILE` — load the journal from an interrupted run, skip
//!   every net whose content is already checkpointed (splicing the
//!   journaled record lines into the output verbatim), compute the rest,
//!   and keep appending to the same journal. The final JSONL output is
//!   byte-identical to what the uninterrupted run would have produced
//!   (modulo each record's measured `wall_ms`). Every journal line
//!   carries a CRC-64 checksum: a torn or corrupted line is quarantined
//!   to a `FILE.quarantine` sidecar (with a stderr warning) and its net
//!   recomputed, so corruption costs work, never wrong output. A journal
//!   written by an incompatible version is refused outright;
//! * `--verify-sample-rate R` — sampled post-hoc re-verification
//!   (`--batch` and `serve`): an off-critical-path auditor re-derives
//!   the delay and noise summaries of roughly `R`·100% of served
//!   records — cache hits included — from their original inputs and
//!   invalidates any cached record that disagrees. `R` is in `[0, 1]`;
//!   default 0 (off). Batch mode reports the audit tally on stderr;
//!   `serve` reports it in the `stats` integrity section;
//! * `serve` — long-running newline-JSON TCP service over the same
//!   pipeline: one `{"id":...,"net":...}` request line per net, one
//!   record line per response (plus `cache` and `worker` fields), with
//!   `{"cmd":"stats"}` and `{"cmd":"shutdown"}` commands. Prints
//!   `listening on ADDR` once ready; `--listen` defaults to
//!   `127.0.0.1:0` (an OS-assigned port), `--cache` sets the solution
//!   cache capacity in records (0 disables; default 1024).
//!   Overload and hardening knobs: `--queue-depth N` is the admission
//!   high-watermark (requests beyond it get `{"error":"overloaded"}`;
//!   default 2×jobs), `--deadline-ms N` arms a per-request deadline at
//!   admission (`{"error":"deadline_exceeded"}`; default off),
//!   `--max-retries N` bounds retries of requests whose worker died
//!   (default 1), `--read-timeout-ms N` closes connections idle past the
//!   limit (default 120000; 0 disables), and `--max-line-bytes N` caps
//!   the request-line length (default 1 MiB). The service runs on a
//!   sharded epoll reactor: `--shards N` serves on N event-loop shards,
//!   each with its own engine (requests route to an engine by a
//!   rendezvous hash of the net digest; `stats` aggregates all shards),
//!   `--max-conns N` refuses accepts beyond N live connections with a
//!   typed `{"error":"overloaded","detail":"max_conns"}` line (0 =
//!   unlimited), and `--threaded` falls back to the legacy
//!   thread-per-connection front end (single engine; incompatible with
//!   `--shards`);
//! * `--frame-check` — accept length+CRC framed request lines
//!   (`!F <len> <crc> <payload>`) on the TCP service and mirror the
//!   framing on responses. Negotiated per line: unframed clients on the
//!   same socket are served exactly as before. A truncated or damaged
//!   frame gets a typed `{"error":"bad_frame",...}` response (counted in
//!   `stats` under `connections.bad_frames`) instead of a parse guess;
//! * `--time-limit-ms` / `--max-candidates` / `--max-tree-nodes` —
//!   per-net resource budget (unlimited when omitted). The clock starts
//!   when a net is dequeued by a worker, not while it waits in line;
//! * `--mem-budget-mb N` — cap the DP's provenance arena at N MiB per
//!   net **and** switch the DP to degrade-in-place: under arena or
//!   candidate pressure it tightens pruning and finishes with a feasible
//!   but possibly suboptimal solution (batch records carry
//!   `degraded_by`) instead of erroring;
//! * `--memo-budget-mb N` — enable the structural subtree memo: a shared,
//!   byte-budgeted table keyed by canonical subtree digests that seeds
//!   repeated merge-point frontiers across nets (and across requests in
//!   `serve`). Solutions are bitwise-identical to memo-free runs; only the
//!   per-record peak statistics can differ, so the memo defaults to off.
//!   Ignored when `--mem-budget-mb` is set (arena-capped runs carry
//!   whole-run state the memo cannot replay);
//! * `--no-memo` — force the memo off even if `--memo-budget-mb` was
//!   given (handy for A/B comparisons in scripts).
//!
//! Exit codes: `0` every net optimized (noise and timing met); `1` at
//! least one net degraded (noise clean, timing unmet); `2` at least one
//! net infeasible (noise cannot be fixed, or the referee found a
//! violation); `3` usage, IO, or parse error.

use std::process::ExitCode;
use std::time::Duration;

use buffopt::buffopt::{self as algo3, BuffOptOptions};
use buffopt::iterative::{self, IterativeOptions};
use buffopt::{algorithm2, audit, Assignment, CoreError, RunBudget};
use buffopt_buffers::{catalog, BufferLibrary};
use buffopt_netlist::parse;
use buffopt_noise::NoiseScenario;
use buffopt_pipeline::journal::{self, BatchJournal};
use buffopt_pipeline::{BatchSummary, NetInput, Outcome, PipelineConfig};
use buffopt_server::{
    default_jobs, serve_sharded, serve_threaded, Engine, EngineOptions, Job, NetDecoder,
    ServeOptions,
};
use buffopt_sim::referee::{self, RefereeOptions};
use buffopt_tree::{segment, RoutingTree};

const EXIT_OK: u8 = 0;
const EXIT_DEGRADED: u8 = 1;
const EXIT_INFEASIBLE: u8 = 2;
const EXIT_USAGE: u8 = 3;

struct Args {
    file: Option<String>,
    batch: Option<String>,
    journal: Option<String>,
    resume: Option<String>,
    serve: bool,
    listen: String,
    shards: usize,
    max_conns: usize,
    threaded: bool,
    jobs: Option<usize>,
    cache: usize,
    queue_depth: usize,
    deadline_ms: Option<u64>,
    max_retries: u32,
    read_timeout_ms: Option<u64>,
    max_line_bytes: usize,
    frame_check: bool,
    verify_sample_rate: f64,
    segment: f64,
    mode: Mode,
    library: BufferLibrary,
    polarity: bool,
    conservative: bool,
    verify: bool,
    dump: bool,
    time_limit_ms: Option<u64>,
    max_candidates: Option<usize>,
    max_tree_nodes: Option<usize>,
    mem_budget_mb: Option<usize>,
    memo_budget_mb: Option<usize>,
    no_memo: bool,
}

impl Args {
    fn budget(&self) -> RunBudget {
        // The time limit stays relative here; the optimizer arms it into
        // a deadline when the net is dequeued, so in single-net mode the
        // behavior is unchanged and in pooled modes queue wait is free.
        RunBudget {
            deadline: None,
            time_limit: self.time_limit_ms.map(Duration::from_millis),
            max_candidates: self.max_candidates,
            max_tree_nodes: self.max_tree_nodes,
            max_arena_bytes: self.mem_budget_mb.map(|mb| mb << 20),
            degrade: self.mem_budget_mb.is_some(),
            ..RunBudget::default()
        }
    }

    /// The shared cross-net memo table, when enabled. Off by default:
    /// seeding changes which merges run, so per-record *peak statistics*
    /// become schedule-dependent under a shared table (solutions do not).
    fn memo_table(&self) -> Option<std::sync::Arc<buffopt::MemoTable>> {
        if self.no_memo {
            return None;
        }
        self.memo_budget_mb
            .map(|mb| std::sync::Arc::new(buffopt::MemoTable::new(mb << 20, 8)))
    }

    fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            library: self.library.clone(),
            max_segment: Some(self.segment),
            time_limit: self.time_limit_ms.map(Duration::from_millis),
            max_candidates: self.max_candidates,
            max_tree_nodes: self.max_tree_nodes,
            max_arena_bytes: self.mem_budget_mb.map(|mb| mb << 20),
            conservative: self.conservative,
            polarity: self.polarity,
            memo: self.memo_table(),
        }
    }

    fn engine_options(&self) -> EngineOptions {
        EngineOptions {
            jobs: self.jobs.unwrap_or_else(default_jobs),
            cache_capacity: self.cache,
            queue_depth: self.queue_depth,
            request_deadline: self.deadline_ms.map(Duration::from_millis),
            max_retries: self.max_retries,
            verify_sample_rate: self.verify_sample_rate,
            ..EngineOptions::default()
        }
    }

    fn serve_options(&self) -> ServeOptions {
        ServeOptions {
            read_timeout: match self.read_timeout_ms {
                Some(0) => None,
                Some(ms) => Some(Duration::from_millis(ms)),
                None => ServeOptions::default().read_timeout,
            },
            max_line_bytes: self.max_line_bytes,
            frame_check: self.frame_check,
            max_conns: self.max_conns,
        }
    }
}

#[derive(PartialEq)]
enum Mode {
    P2,
    P3,
    Cost,
    Noise,
    Greedy,
}

fn usage() -> String {
    "usage: buffopt-cli NET_FILE [--segment UM] [--mode p2|p3|cost|noise|greedy] \
     [--lib ibm|single] [--polarity] [--conservative] [--verify] [--dump] \
     [--time-limit-ms N] [--max-candidates N] [--max-tree-nodes N] \
     [--mem-budget-mb N] [--memo-budget-mb N] [--no-memo]\n\
     \x20      buffopt-cli --batch DIR [--jobs N] [--journal FILE | --resume FILE] \
     [--verify-sample-rate R] [shared flags as above]\n\
     \x20      buffopt-cli serve [--listen ADDR] [--shards N] [--max-conns N] \
     [--threaded] [--jobs N] [--cache N] \
     [--queue-depth N] [--deadline-ms N] [--max-retries N] [--read-timeout-ms N] \
     [--max-line-bytes N] [--frame-check] [--verify-sample-rate R] \
     [shared flags as above]"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: None,
        batch: None,
        journal: None,
        resume: None,
        serve: false,
        listen: "127.0.0.1:0".to_string(),
        shards: 1,
        max_conns: 0,
        threaded: false,
        jobs: None,
        cache: 1024,
        queue_depth: 0,
        deadline_ms: None,
        max_retries: 1,
        read_timeout_ms: None,
        max_line_bytes: 1 << 20,
        frame_check: false,
        verify_sample_rate: 0.0,
        segment: 500.0,
        mode: Mode::P3,
        library: catalog::ibm_like(),
        polarity: false,
        conservative: false,
        verify: false,
        dump: false,
        time_limit_ms: None,
        max_candidates: None,
        max_tree_nodes: None,
        mem_budget_mb: None,
        memo_budget_mb: None,
        no_memo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--segment" => {
                let v = it.next().ok_or_else(usage)?;
                args.segment = v.parse().map_err(|_| format!("bad --segment {v:?}"))?;
            }
            "--mode" => {
                args.mode = match it.next().as_deref() {
                    Some("p2") => Mode::P2,
                    Some("p3") => Mode::P3,
                    Some("cost") => Mode::Cost,
                    Some("noise") => Mode::Noise,
                    Some("greedy") => Mode::Greedy,
                    other => return Err(format!("bad --mode {other:?}")),
                };
            }
            "--lib" => {
                args.library = match it.next().as_deref() {
                    Some("ibm") => catalog::ibm_like(),
                    Some("single") => catalog::single_buffer(),
                    other => return Err(format!("bad --lib {other:?}")),
                };
            }
            "--batch" => {
                args.batch = Some(it.next().ok_or_else(usage)?);
            }
            "serve" if args.file.is_none() && !args.serve => {
                args.serve = true;
            }
            "--listen" => {
                args.listen = it.next().ok_or_else(usage)?;
            }
            "--shards" => {
                let v = it.next().ok_or_else(usage)?;
                let n: usize = v.parse().map_err(|_| format!("bad --shards {v:?}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                args.shards = n;
            }
            "--max-conns" => {
                let v = it.next().ok_or_else(usage)?;
                args.max_conns = v.parse().map_err(|_| format!("bad --max-conns {v:?}"))?;
            }
            "--threaded" => args.threaded = true,
            "--jobs" => {
                let v = it.next().ok_or_else(usage)?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs {v:?}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                args.jobs = Some(n);
            }
            "--cache" => {
                let v = it.next().ok_or_else(usage)?;
                args.cache = v.parse().map_err(|_| format!("bad --cache {v:?}"))?;
            }
            "--journal" => {
                args.journal = Some(it.next().ok_or_else(usage)?);
            }
            "--resume" => {
                args.resume = Some(it.next().ok_or_else(usage)?);
            }
            "--queue-depth" => {
                let v = it.next().ok_or_else(usage)?;
                args.queue_depth = v.parse().map_err(|_| format!("bad --queue-depth {v:?}"))?;
            }
            "--deadline-ms" => {
                let v = it.next().ok_or_else(usage)?;
                args.deadline_ms = Some(v.parse().map_err(|_| format!("bad --deadline-ms {v:?}"))?);
            }
            "--max-retries" => {
                let v = it.next().ok_or_else(usage)?;
                args.max_retries = v.parse().map_err(|_| format!("bad --max-retries {v:?}"))?;
            }
            "--read-timeout-ms" => {
                let v = it.next().ok_or_else(usage)?;
                args.read_timeout_ms = Some(
                    v.parse()
                        .map_err(|_| format!("bad --read-timeout-ms {v:?}"))?,
                );
            }
            "--max-line-bytes" => {
                let v = it.next().ok_or_else(usage)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --max-line-bytes {v:?}"))?;
                if n == 0 {
                    return Err("--max-line-bytes must be at least 1".to_string());
                }
                args.max_line_bytes = n;
            }
            "--time-limit-ms" => {
                let v = it.next().ok_or_else(usage)?;
                args.time_limit_ms = Some(
                    v.parse()
                        .map_err(|_| format!("bad --time-limit-ms {v:?}"))?,
                );
            }
            "--max-candidates" => {
                let v = it.next().ok_or_else(usage)?;
                args.max_candidates = Some(
                    v.parse()
                        .map_err(|_| format!("bad --max-candidates {v:?}"))?,
                );
            }
            "--max-tree-nodes" => {
                let v = it.next().ok_or_else(usage)?;
                args.max_tree_nodes = Some(
                    v.parse()
                        .map_err(|_| format!("bad --max-tree-nodes {v:?}"))?,
                );
            }
            "--mem-budget-mb" => {
                let v = it.next().ok_or_else(usage)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --mem-budget-mb {v:?}"))?;
                if n == 0 {
                    return Err("--mem-budget-mb must be at least 1".to_string());
                }
                args.mem_budget_mb = Some(n);
            }
            "--memo-budget-mb" => {
                let v = it.next().ok_or_else(usage)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --memo-budget-mb {v:?}"))?;
                if n == 0 {
                    return Err("--memo-budget-mb must be at least 1".to_string());
                }
                args.memo_budget_mb = Some(n);
            }
            "--frame-check" => args.frame_check = true,
            "--verify-sample-rate" => {
                let v = it.next().ok_or_else(usage)?;
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --verify-sample-rate {v:?}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err("--verify-sample-rate must be within [0, 1]".to_string());
                }
                args.verify_sample_rate = r;
            }
            "--no-memo" => args.no_memo = true,
            "--polarity" => args.polarity = true,
            "--conservative" => args.conservative = true,
            "--verify" => args.verify = true,
            "--dump" => args.dump = true,
            "--help" | "-h" => return Err(usage()),
            other if args.file.is_none() && !other.starts_with('-') => {
                args.file = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    let modes = usize::from(args.serve)
        + usize::from(args.batch.is_some())
        + usize::from(args.file.is_some());
    if modes == 0 {
        return Err(usage());
    }
    if modes > 1 {
        return Err(format!(
            "serve, --batch, and NET_FILE are exclusive\n{}",
            usage()
        ));
    }
    if (args.journal.is_some() || args.resume.is_some()) && args.batch.is_none() {
        return Err("--journal/--resume only apply to --batch".to_string());
    }
    if args.journal.is_some() && args.resume.is_some() {
        return Err("--journal and --resume are exclusive (--resume keeps journaling)".to_string());
    }
    if args.frame_check && !args.serve {
        return Err("--frame-check only applies to serve".to_string());
    }
    if (args.shards > 1 || args.max_conns > 0 || args.threaded) && !args.serve {
        return Err("--shards/--max-conns/--threaded only apply to serve".to_string());
    }
    if args.threaded && args.shards > 1 {
        return Err(
            "--threaded serves on one engine; it is incompatible with --shards".to_string(),
        );
    }
    if args.verify_sample_rate > 0.0 && args.file.is_some() {
        return Err("--verify-sample-rate only applies to --batch and serve".to_string());
    }
    Ok(args)
}

/// Prints the result summary; returns (noise_ok, referee_ok).
fn report(
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    lib: &BufferLibrary,
    assignment: &Assignment,
    verify: bool,
) -> (bool, bool) {
    let d = audit::delay(tree, lib, assignment).expect("assignment matches tree");
    let n = audit::noise(tree, scenario, lib, assignment).expect("scenario matches tree");
    println!(
        "buffers: {} (cost {:.0}), max delay {:.1} ps, timing slack {:+.1} ps, \
         worst noise headroom {:+.1} mV",
        assignment.count(),
        assignment.total_cost(lib) + 0.0, // normalizes -0.0 in the output
        d.max_delay() * 1e12,
        d.slack * 1e12,
        n.worst_headroom() * 1e3
    );
    for (node, b) in assignment.iter() {
        println!("  place {} at {}", lib.buffer(b).name, node);
    }
    let noise_ok = !n.has_violation();
    let mut referee_ok = true;
    if verify {
        let ropts = RefereeOptions::default();
        let mut worst = 0.0f64;
        for stage in audit::stages(tree, lib, assignment) {
            if stage.ends.is_empty() {
                continue;
            }
            let ends: Vec<_> = stage.ends.iter().map(|&(nd, _, c)| (nd, c)).collect();
            match referee::stage_peak_noise(
                tree,
                scenario,
                stage.root,
                stage.gate_resistance,
                &ends,
                &ropts,
            ) {
                Ok(peaks) => {
                    for (m, &(_, margin, _)) in peaks.iter().zip(&stage.ends) {
                        worst = worst.max(m.peak);
                        if m.peak > margin {
                            referee_ok = false;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("simulation failed: {e}");
                    referee_ok = false;
                }
            }
        }
        println!(
            "simulation referee: worst stage peak {:.1} mV — {}",
            worst * 1e3,
            if referee_ok { "clean" } else { "VIOLATING" }
        );
    }
    (noise_ok, referee_ok)
}

/// Exit code for a single-net optimizer error. Parse and usage mistakes
/// exit 3 before the optimizer runs; every error the optimizer itself
/// reports (infeasible noise, budget exhausted) means "no usable result".
fn error_exit(_e: &CoreError) -> u8 {
    EXIT_INFEASIBLE
}

fn run_batch_mode(args: &Args, dir: &str) -> ExitCode {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read directory {dir}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "net"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no .net files in {dir}");
        return ExitCode::from(EXIT_USAGE);
    }

    let mut engine = Engine::new(args.pipeline_config(), args.engine_options());

    // Checkpoints from an interrupted run: content key → record line.
    let checkpointed = match &args.resume {
        None => std::collections::HashMap::new(),
        Some(path) => match journal::load(std::path::Path::new(path)) {
            Ok(loaded) => {
                if loaded.quarantined > 0 {
                    eprintln!(
                        "warning: {} corrupt journal line(s) quarantined to {}; \
                         their nets will be recomputed",
                        loaded.quarantined,
                        journal::sidecar_path(std::path::Path::new(path)).display()
                    );
                }
                loaded.records
            }
            Err(e) => {
                eprintln!("cannot load journal {path}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    // `--journal FILE` starts a fresh journal; `--resume FILE` keeps
    // appending to the one it loaded.
    let journal_path = args.journal.as_ref().or(args.resume.as_ref());
    if args.journal.is_some() {
        if let Some(path) = journal_path {
            // Truncate a stale journal from an unrelated earlier run.
            if let Err(e) = std::fs::write(path, "") {
                eprintln!("cannot create journal {path}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    let mut journal = match journal_path {
        None => None,
        Some(path) => match BatchJournal::open(std::path::Path::new(path)) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("cannot open journal {path}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };

    // Per net, either the journaled record line (spliced into the output
    // verbatim, so a resumed run is byte-identical to an uninterrupted
    // one) or a job to compute.
    let n = paths.len();
    let mut spliced: Vec<Option<String>> = (0..n).map(|_| None).collect();
    let mut fresh: Vec<Job> = Vec::new();
    let mut fresh_keys: Vec<Option<u64>> = Vec::new();
    for (idx, p) in paths.iter().enumerate() {
        let name = p
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.display().to_string());
        let job = match std::fs::read_to_string(p) {
            Err(e) => Job {
                input: NetInput::Failed {
                    name,
                    error: format!("cannot read: {e}"),
                },
                cache_key: None,
            },
            Ok(text) => Job {
                cache_key: Some(engine.key_for(&name, &text)),
                input: match parse(&text) {
                    Ok(net) => NetInput::Parsed {
                        name: net.name.clone().unwrap_or(name),
                        tree: net.tree,
                        scenario: net.scenario,
                    },
                    Err(e) => NetInput::Failed {
                        name,
                        error: e.to_string(),
                    },
                },
            },
        };
        match job.cache_key.and_then(|k| checkpointed.get(&k)) {
            Some(line) => {
                spliced[idx] = Some(line.clone());
            }
            None => {
                fresh_keys.push(job.cache_key);
                fresh.push(job);
            }
        }
    }
    let resumed = n - fresh.len();

    // Checkpoint each record the moment it completes; a crash between
    // appends loses only the records not yet journaled. Journal I/O
    // errors degrade to an un-checkpointed run, not a failed batch.
    let mut journal_err: Option<std::io::Error> = None;
    let report = engine.run_jobs_with(fresh, |idx, record| {
        if journal_err.is_none() {
            if let (Some(j), Some(key)) = (journal.as_mut(), fresh_keys[idx]) {
                if let Err(e) = j.append(key, &record.to_json()) {
                    journal_err = Some(e);
                }
            }
        }
    });
    if let Some(e) = journal_err {
        eprintln!("warning: journaling stopped: {e}");
    }

    // Finish the sampled audit before reporting, so the tally covers
    // every record of this run.
    if args.verify_sample_rate > 0.0 {
        let (samples, failures) = engine.drain_verification();
        if failures > 0 {
            eprintln!(
                "warning: sampled audit re-verified {samples} record(s), {failures} mismatched \
                 (their cache entries were invalidated)"
            );
        } else {
            eprintln!("sampled audit: {samples} record(s) re-verified, all consistent");
        }
    }

    // Reassemble in input order: journaled lines verbatim, fresh records
    // serialized, and one shared summary over both.
    let mut out = String::new();
    let mut summary = BatchSummary::default();
    let mut fresh_records = report.outcomes.into_iter();
    for slot in spliced {
        let line = match slot {
            Some(line) => line,
            None => fresh_records
                .next()
                .expect("one record per non-journaled net")
                .to_json(),
        };
        match journal::classify(&line) {
            Some((outcome, buffers)) => summary.count(outcome, buffers),
            None => summary.count(Outcome::Failed, 0),
        }
        out.push_str(&line);
        out.push('\n');
    }
    print!("{out}");
    if resumed > 0 {
        eprintln!(
            "{} in {:.1} s ({} workers; {} resumed from journal)",
            summary,
            report.wall.as_secs_f64(),
            engine.jobs(),
            resumed
        );
    } else {
        eprintln!(
            "{} in {:.1} s ({} workers)",
            summary,
            report.wall.as_secs_f64(),
            engine.jobs()
        );
    }
    ExitCode::from(summary.exit_code().clamp(0, 255) as u8)
}

fn net_decoder() -> NetDecoder {
    std::sync::Arc::new(|id: &str, body: &str| match parse(body) {
        Ok(net) => NetInput::Parsed {
            name: net.name.clone().unwrap_or_else(|| id.to_string()),
            tree: net.tree,
            scenario: net.scenario,
        },
        Err(e) => NetInput::Failed {
            name: id.to_string(),
            error: e.to_string(),
        },
    })
}

fn run_serve_mode(args: &Args) -> ExitCode {
    let listener = match std::net::TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot listen on {}: {e}", args.listen);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    // One engine per reactor shard. Each gets its own pipeline config
    // (and thus its own memo table, when one is enabled), so per-engine
    // statistics stay independent and the stats aggregation never
    // double-counts a shared structure.
    let engines: Vec<_> = (0..args.shards)
        .map(|_| std::sync::Arc::new(Engine::new(args.pipeline_config(), args.engine_options())))
        .collect();
    match listener.local_addr() {
        Ok(addr) => {
            // Scripts wait for this line to learn the OS-assigned port.
            println!("listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("cannot resolve listen address: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    }
    eprintln!(
        "{} shard(s) x {} workers, cache capacity {}{}",
        engines.len(),
        engines[0].jobs(),
        args.cache,
        if args.threaded {
            ", threaded front end"
        } else {
            ""
        }
    );
    let result = if args.threaded {
        let engine = engines.into_iter().next().expect("one engine");
        serve_threaded(listener, engine, net_decoder(), args.serve_options())
    } else {
        serve_sharded(listener, engines, net_decoder(), args.serve_options())
    };
    match result {
        Ok(()) => ExitCode::from(EXIT_OK),
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if args.serve {
        return run_serve_mode(&args);
    }
    if let Some(dir) = args.batch.clone() {
        return run_batch_mode(&args, &dir);
    }
    let file = args.file.as_deref().expect("checked in parse_args");
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let net = match parse(&text) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    println!(
        "net {}: {} sinks, {:.1} mm wire, {:.1} fF",
        net.name.as_deref().unwrap_or("(unnamed)"),
        net.tree.sinks().len(),
        net.tree.total_wire_length() / 1000.0,
        net.tree.total_capacitance() * 1e15
    );
    if args.dump {
        print!("{}", buffopt_tree::render(&net.tree));
    }
    let budget = args.budget();

    if args.mode == Mode::Noise {
        // Continuous-position noise avoidance on the raw tree.
        match algorithm2::avoid_noise_budgeted(&net.tree, &net.scenario, &args.library, &budget) {
            Ok(sol) => {
                let (noise_ok, referee_ok) = report(
                    &sol.tree,
                    &sol.scenario,
                    &args.library,
                    &sol.assignment,
                    args.verify,
                );
                return if noise_ok && referee_ok {
                    ExitCode::from(EXIT_OK)
                } else {
                    ExitCode::from(EXIT_INFEASIBLE)
                };
            }
            Err(e) => {
                eprintln!("noise avoidance failed: {e}");
                return ExitCode::from(error_exit(&e));
            }
        }
    }

    let seg = match segment::segment_wires(&net.tree, args.segment) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("segmenting failed: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let scenario = net.scenario.for_segmented(&seg);
    let tree = seg.tree;
    let opts = BuffOptOptions {
        max_buffers: None,
        conservative_pruning: args.conservative,
        polarity_aware: args.polarity,
        budget,
        memo: args.memo_table(),
    };
    let sol = match args.mode {
        Mode::P2 => algo3::optimize(&tree, &scenario, &args.library, &opts),
        Mode::P3 => algo3::min_buffers(&tree, &scenario, &args.library, &opts),
        Mode::Cost => algo3::min_cost(&tree, &scenario, &args.library, &opts),
        Mode::Greedy => iterative::optimize(
            &tree,
            &scenario,
            &args.library,
            &IterativeOptions {
                noise: true,
                max_buffers: None,
                budget: opts.budget.clone(),
                ..IterativeOptions::default()
            },
        ),
        Mode::Noise => unreachable!("handled above"),
    };
    match sol {
        Ok(sol) => {
            let (noise_ok, referee_ok) = report(
                &tree,
                &scenario,
                &args.library,
                &sol.assignment,
                args.verify,
            );
            if sol.slack < 0.0 {
                eprintln!("warning: timing not met (slack {:.1} ps)", sol.slack * 1e12);
            }
            if !noise_ok || !referee_ok {
                ExitCode::from(EXIT_INFEASIBLE)
            } else if sol.slack < 0.0 {
                ExitCode::from(EXIT_DEGRADED)
            } else {
                ExitCode::from(EXIT_OK)
            }
        }
        Err(e) => {
            eprintln!("optimization failed: {e}");
            ExitCode::from(error_exit(&e))
        }
    }
}
