//! A plain-text net format and the `buffopt-cli` optimizer built on it.
//!
//! The format describes one net per file: the driving gate, the wires of
//! its routing tree (with optional per-wire coupling factors), and the
//! sink pins. It exists so the optimizer can be driven without writing
//! Rust — extraction flows dump `.net` files, `buffopt-cli` fixes them.
//!
//! ```text
//! # buffopt net format v1
//! net my_bus_bit
//! driver 300 20e-12
//! wire source j1 320 1e-12 4000 5.04e9
//! wire j1 s1 240 7.5e-13 3000 5.04e9
//! wire j1 s2 120 3.8e-13 1500
//! sink s1 2e-14 1.2e-9 0.8
//! sink s2 1.2e-14 inf 0.8
//! ```
//!
//! * `driver R D` — output resistance (Ω) and intrinsic delay (s);
//! * `wire PARENT CHILD R C LENGTH [FACTOR]` — lumped resistance (Ω),
//!   capacitance (F), length (µm) and the optional Devgan coupling factor
//!   `Σ λ·µ` (V/s, default 0);
//! * `sink NODE CAP RAT NM` — pin capacitance (F), required arrival time
//!   (s, `inf` allowed), noise margin (V);
//! * the root node is always called `source`; `#` starts a comment.
//!
//! # Example
//!
//! ```
//! use buffopt_netlist::parse;
//!
//! # fn main() -> Result<(), buffopt_netlist::ParseNetError> {
//! let text = "\
//! driver 300 2e-11
//! wire source s1 400 1e-12 5000 5e9
//! sink s1 2e-14 1e-9 0.8
//! ";
//! let net = parse(text)?;
//! assert_eq!(net.tree.sinks().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;

pub use format::{parse, write, ParseNetError, ParseNetErrorKind, ParsedNet};
