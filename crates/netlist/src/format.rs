use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use buffopt_noise::NoiseScenario;
use buffopt_tree::{Driver, NodeId, RoutingTree, SinkSpec, TreeBuilder, TreeError, Wire};

/// A net loaded from the text format.
#[derive(Debug, Clone)]
pub struct ParsedNet {
    /// Optional net name (`net` line).
    pub name: Option<String>,
    /// The routing tree.
    pub tree: RoutingTree,
    /// Per-wire coupling factors.
    pub scenario: NoiseScenario,
    /// Node names in [`NodeId`] order (binarization dummies get `None`).
    pub node_names: Vec<Option<String>>,
}

impl ParsedNet {
    /// Looks up a node by its file name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n.as_deref() == Some(name))
            .map(NodeId::from_index)
    }
}

/// Error while parsing the net format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNetError {
    /// 1-based line number (0 for file-level problems).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseNetErrorKind,
}

/// The distinct ways a net file can be rejected. Hostile input — byte
/// soup, non-finite or negative quantities, duplicate definitions,
/// cycles, disconnected wires — maps to a typed variant rather than a
/// panic, so batch drivers can classify failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseNetErrorKind {
    /// A directive with the wrong number or shape of tokens.
    Syntax(String),
    /// A line starting with a token no grammar rule knows.
    UnknownDirective(String),
    /// A token that should be a number but does not parse as one.
    InvalidNumber {
        /// Human-readable name of the quantity.
        what: String,
        /// The offending token.
        token: String,
    },
    /// A quantity that parsed but is NaN, infinite, or negative where the
    /// format requires a finite non-negative value.
    InvalidQuantity {
        /// Human-readable name of the quantity.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// A second `driver` line.
    DuplicateDriver,
    /// No `driver` line at all.
    MissingDriver,
    /// No `wire` lines at all.
    NoWires,
    /// `source` named as a wire child.
    SourceAsChild,
    /// A node named as the child of two different wires.
    DuplicateParent {
        /// The doubly-parented node.
        node: String,
        /// Line of the first wire that claimed it.
        first_line: usize,
    },
    /// Two sink specs for the same node.
    DuplicateSink(String),
    /// A sink spec naming a node that no wire reaches.
    SinkNotWired(String),
    /// A sink spec on a node that has children.
    SinkNotLeaf(String),
    /// A leaf wire child with no sink spec.
    LeafWithoutSink(String),
    /// Wires that close a loop instead of forming a tree.
    Cycle(String),
    /// A wire whose parent chain never reaches the source.
    Orphan {
        /// Parent name of the unreachable wire.
        parent: String,
        /// Child name of the unreachable wire.
        child: String,
    },
    /// Tree construction failed for a reason not covered above.
    Tree(String),
}

impl fmt::Display for ParseNetErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetErrorKind::Syntax(msg) => write!(f, "{msg}"),
            ParseNetErrorKind::UnknownDirective(d) => {
                write!(f, "unknown directive {d:?}")
            }
            ParseNetErrorKind::InvalidNumber { what, token } => {
                write!(f, "invalid {what}: {token:?}")
            }
            ParseNetErrorKind::InvalidQuantity { what, value } => {
                write!(f, "{what} must be finite and non-negative, got {value}")
            }
            ParseNetErrorKind::DuplicateDriver => write!(f, "duplicate driver line"),
            ParseNetErrorKind::MissingDriver => write!(f, "missing driver line"),
            ParseNetErrorKind::NoWires => write!(f, "no wires"),
            ParseNetErrorKind::SourceAsChild => {
                write!(f, "the source cannot be a wire child")
            }
            ParseNetErrorKind::DuplicateParent { node, first_line } => {
                write!(f, "node {node:?} already has a parent (line {first_line})")
            }
            ParseNetErrorKind::DuplicateSink(node) => {
                write!(f, "duplicate sink spec for {node:?}")
            }
            ParseNetErrorKind::SinkNotWired(node) => {
                write!(f, "sink {node:?} is not the child of any wire")
            }
            ParseNetErrorKind::SinkNotLeaf(node) => {
                write!(f, "sink {node:?} has children; sinks must be leaves")
            }
            ParseNetErrorKind::LeafWithoutSink(node) => {
                write!(f, "leaf node {node:?} has no sink spec")
            }
            ParseNetErrorKind::Cycle(node) => {
                write!(f, "wires form a cycle through {node:?}")
            }
            ParseNetErrorKind::Orphan { parent, child } => {
                write!(
                    f,
                    "wire {parent:?} -> {child:?} is not reachable from the source"
                )
            }
            ParseNetErrorKind::Tree(msg) => write!(f, "{msg}"),
        }
    }
}

impl ParseNetError {
    fn at(line: usize, kind: ParseNetErrorKind) -> Self {
        ParseNetError { line, kind }
    }

    fn syntax(line: usize, message: impl Into<String>) -> Self {
        ParseNetError::at(line, ParseNetErrorKind::Syntax(message.into()))
    }

    /// Wraps a tree-construction error, promoting quantity violations to
    /// their own kind so callers can tell bad numbers from bad topology.
    fn tree(line: usize, e: TreeError) -> Self {
        let kind = match e {
            TreeError::InvalidQuantity { what, value }
            | TreeError::NonPositiveQuantity { what, value } => {
                ParseNetErrorKind::InvalidQuantity {
                    what: what.to_string(),
                    value,
                }
            }
            other => ParseNetErrorKind::Tree(other.to_string()),
        };
        ParseNetError::at(line, kind)
    }
}

impl fmt::Display for ParseNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "net file invalid: {}", self.kind)
        } else {
            write!(f, "net file line {}: {}", self.line, self.kind)
        }
    }
}

impl Error for ParseNetError {}

#[derive(Debug)]
struct WireLine {
    line: usize,
    parent: String,
    child: String,
    wire: Wire,
    factor: f64,
}

#[derive(Debug)]
struct SinkLine {
    line: usize,
    node: String,
    spec: SinkSpec,
}

fn parse_f64(line: usize, what: &str, token: &str) -> Result<f64, ParseNetError> {
    if token.eq_ignore_ascii_case("inf") {
        return Ok(f64::INFINITY);
    }
    token.parse::<f64>().map_err(|_| {
        ParseNetError::at(
            line,
            ParseNetErrorKind::InvalidNumber {
                what: what.to_string(),
                token: token.to_string(),
            },
        )
    })
}

/// Like [`parse_f64`] but additionally rejects NaN, infinities, and
/// negative values — the rule for every quantity except a sink's
/// required arrival time (which may be `inf`).
fn parse_finite(line: usize, what: &str, token: &str) -> Result<f64, ParseNetError> {
    let v = parse_f64(line, what, token)?;
    if !(v.is_finite() && v >= 0.0) {
        return Err(ParseNetError::at(
            line,
            ParseNetErrorKind::InvalidQuantity {
                what: what.to_string(),
                value: v,
            },
        ));
    }
    Ok(v)
}

/// Parses a net from the text format.
///
/// # Errors
///
/// Returns [`ParseNetError`] with the offending line for syntax errors,
/// duplicate definitions, cycles, unreachable nodes, leaves without sink
/// specs, or sink specs on internal nodes.
pub fn parse(text: &str) -> Result<ParsedNet, ParseNetError> {
    let mut name: Option<String> = None;
    let mut driver: Option<(usize, Driver)> = None;
    let mut wires: Vec<WireLine> = Vec::new();
    let mut sinks: Vec<SinkLine> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "net" => {
                if tokens.len() != 2 {
                    return Err(ParseNetError::syntax(lno, "expected: net NAME"));
                }
                name = Some(tokens[1].to_string());
            }
            "driver" => {
                if tokens.len() != 3 {
                    return Err(ParseNetError::syntax(lno, "expected: driver R D"));
                }
                if driver.is_some() {
                    return Err(ParseNetError::at(lno, ParseNetErrorKind::DuplicateDriver));
                }
                let r = parse_finite(lno, "driver resistance", tokens[1])?;
                let d = parse_finite(lno, "driver intrinsic delay", tokens[2])?;
                let drv = Driver::try_new(r, d).map_err(|e| ParseNetError::tree(lno, e))?;
                driver = Some((lno, drv));
            }
            "wire" => {
                if !(6..=7).contains(&tokens.len()) {
                    return Err(ParseNetError::syntax(
                        lno,
                        "expected: wire PARENT CHILD R C LENGTH [FACTOR]",
                    ));
                }
                let r = parse_finite(lno, "wire resistance", tokens[3])?;
                let c = parse_finite(lno, "wire capacitance", tokens[4])?;
                let l = parse_finite(lno, "wire length", tokens[5])?;
                let factor = if tokens.len() == 7 {
                    parse_finite(lno, "coupling factor", tokens[6])?
                } else {
                    0.0
                };
                let wire = Wire::try_from_rc(r, c, l).map_err(|e| ParseNetError::tree(lno, e))?;
                if tokens[2] == "source" {
                    return Err(ParseNetError::at(lno, ParseNetErrorKind::SourceAsChild));
                }
                wires.push(WireLine {
                    line: lno,
                    parent: tokens[1].to_string(),
                    child: tokens[2].to_string(),
                    wire,
                    factor,
                });
            }
            "sink" => {
                if tokens.len() != 5 {
                    return Err(ParseNetError::syntax(lno, "expected: sink NODE CAP RAT NM"));
                }
                let cap = parse_finite(lno, "sink capacitance", tokens[2])?;
                let rat = parse_f64(lno, "required arrival time", tokens[3])?;
                let nm = parse_finite(lno, "noise margin", tokens[4])?;
                let spec =
                    SinkSpec::try_new(cap, rat, nm).map_err(|e| ParseNetError::tree(lno, e))?;
                sinks.push(SinkLine {
                    line: lno,
                    node: tokens[1].to_string(),
                    spec,
                });
            }
            other => {
                return Err(ParseNetError::at(
                    lno,
                    ParseNetErrorKind::UnknownDirective(other.to_string()),
                ));
            }
        }
    }

    let (_, driver) =
        driver.ok_or_else(|| ParseNetError::at(0, ParseNetErrorKind::MissingDriver))?;
    if wires.is_empty() {
        return Err(ParseNetError::at(0, ParseNetErrorKind::NoWires));
    }

    // Adjacency and duplicate-parent detection.
    let mut children: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut seen_child: HashMap<&str, usize> = HashMap::new();
    for (i, w) in wires.iter().enumerate() {
        if let Some(&first) = seen_child.get(w.child.as_str()) {
            return Err(ParseNetError::at(
                w.line,
                ParseNetErrorKind::DuplicateParent {
                    node: w.child.clone(),
                    first_line: wires[first].line,
                },
            ));
        }
        seen_child.insert(&w.child, i);
        children.entry(&w.parent).or_default().push(i);
    }
    let sink_of: HashMap<&str, &SinkLine> = {
        let mut m = HashMap::new();
        for s in &sinks {
            if m.insert(s.node.as_str(), s).is_some() {
                return Err(ParseNetError::at(
                    s.line,
                    ParseNetErrorKind::DuplicateSink(s.node.clone()),
                ));
            }
        }
        m
    };
    for s in &sinks {
        if !seen_child.contains_key(s.node.as_str()) {
            return Err(ParseNetError::at(
                s.line,
                ParseNetErrorKind::SinkNotWired(s.node.clone()),
            ));
        }
        if children.contains_key(s.node.as_str()) {
            return Err(ParseNetError::at(
                s.line,
                ParseNetErrorKind::SinkNotLeaf(s.node.clone()),
            ));
        }
    }

    // BFS from "source", building the tree.
    let mut builder = TreeBuilder::new(driver);
    let mut names: Vec<Option<String>> = vec![Some("source".to_string())];
    let mut factors: Vec<f64> = vec![0.0];
    let mut placed = vec![false; wires.len()];
    let mut queue: Vec<(String, NodeId)> = vec![("source".to_string(), builder.source())];
    while let Some((pname, pid)) = queue.pop() {
        let Some(kids) = children.get(pname.as_str()) else {
            continue;
        };
        for &wi in kids {
            let w = &wires[wi];
            placed[wi] = true;
            let id = if let Some(s) = sink_of.get(w.child.as_str()) {
                builder
                    .add_sink(pid, w.wire, s.spec.clone().with_name(w.child.clone()))
                    .map_err(|e| ParseNetError::tree(w.line, e))?
            } else {
                if !children.contains_key(w.child.as_str()) {
                    return Err(ParseNetError::at(
                        w.line,
                        ParseNetErrorKind::LeafWithoutSink(w.child.clone()),
                    ));
                }
                builder
                    .add_internal(pid, w.wire)
                    .map_err(|e| ParseNetError::tree(w.line, e))?
            };
            names.push(Some(w.child.clone()));
            factors.push(w.factor);
            queue.push((w.child.clone(), id));
        }
    }
    if let Some(orphan) = placed.iter().position(|&p| !p) {
        // Distinguish a closed loop from a merely disconnected subtree:
        // walk the parent chain upward from the unplaced wire; revisiting
        // a node means the wires cycle (BFS from the source can never
        // enter a cycle, so every wire on it stays unplaced).
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let mut cur = wires[orphan].child.as_str();
        let kind = loop {
            if !seen.insert(cur) {
                break ParseNetErrorKind::Cycle(cur.to_string());
            }
            match seen_child.get(cur) {
                Some(&wi) => cur = wires[wi].parent.as_str(),
                None => {
                    break ParseNetErrorKind::Orphan {
                        parent: wires[orphan].parent.clone(),
                        child: wires[orphan].child.clone(),
                    }
                }
            }
        };
        return Err(ParseNetError::at(wires[orphan].line, kind));
    }
    let tree = builder.build().map_err(|e| ParseNetError::tree(0, e))?;
    // Binarization may have appended dummies.
    while names.len() < tree.len() {
        names.push(None);
        factors.push(0.0);
    }
    let mut scenario = NoiseScenario::quiet(&tree);
    for (i, f) in factors.iter().enumerate() {
        scenario.set_factor(NodeId::from_index(i), *f);
    }
    Ok(ParsedNet {
        name,
        tree,
        scenario,
        node_names: names,
    })
}

/// Writes a net back to the text format (round-trips with [`parse`] up to
/// node naming of binarization dummies, which are emitted as `_dN`).
pub fn write(net: &ParsedNet) -> String {
    let tree = &net.tree;
    let mut out = String::from("# buffopt net format v1\n");
    if let Some(name) = &net.name {
        out.push_str(&format!("net {name}\n"));
    }
    let d = tree.driver();
    out.push_str(&format!("driver {} {}\n", d.resistance, d.intrinsic_delay));
    let name_of = |v: NodeId| -> String {
        if v == tree.source() {
            "source".to_string()
        } else {
            net.node_names
                .get(v.index())
                .and_then(|n| n.clone())
                .unwrap_or_else(|| format!("_d{}", v.index()))
        }
    };
    for v in tree.preorder() {
        if let (Some(p), Some(w)) = (tree.parent(v), tree.parent_wire(v)) {
            let factor = net.scenario.factor(v);
            if factor > 0.0 {
                out.push_str(&format!(
                    "wire {} {} {} {} {} {}\n",
                    name_of(p),
                    name_of(v),
                    w.resistance,
                    w.capacitance,
                    w.length,
                    factor
                ));
            } else {
                out.push_str(&format!(
                    "wire {} {} {} {} {}\n",
                    name_of(p),
                    name_of(v),
                    w.resistance,
                    w.capacitance,
                    w.length
                ));
            }
        }
        if let Some(s) = tree.sink_spec(v) {
            let rat = if s.required_arrival_time.is_infinite() {
                "inf".to_string()
            } else {
                s.required_arrival_time.to_string()
            };
            out.push_str(&format!(
                "sink {} {} {} {}\n",
                name_of(v),
                s.capacitance,
                rat,
                s.noise_margin
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo
net demo
driver 300 2e-11
wire source j1 320 1e-12 4000 5.04e9
wire j1 s1 240 7.5e-13 3000 5.04e9
wire j1 s2 120 3.8e-13 1500
sink s1 2e-14 1.2e-9 0.8
sink s2 1.2e-14 inf 0.8
";

    #[test]
    fn parses_sample() {
        let net = parse(SAMPLE).expect("valid");
        assert_eq!(net.name.as_deref(), Some("demo"));
        assert_eq!(net.tree.sinks().len(), 2);
        assert!((net.tree.driver().resistance - 300.0).abs() < 1e-9);
        let s1 = net.node("s1").expect("s1 exists");
        assert!((net.scenario.factor(s1) - 5.04e9).abs() < 1.0);
        let s2 = net.node("s2").expect("s2 exists");
        assert_eq!(net.scenario.factor(s2), 0.0);
        assert!(net
            .tree
            .sink_spec(s2)
            .expect("sink")
            .required_arrival_time
            .is_infinite());
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let net = parse(SAMPLE).expect("valid");
        let text = write(&net);
        let net2 = parse(&text).expect("round-trip parses");
        assert_eq!(net.tree, net2.tree);
        assert_eq!(net.scenario, net2.scenario);
        assert_eq!(net.name, net2.name);
    }

    #[test]
    fn missing_driver_is_an_error() {
        let err =
            parse("wire source s1 1 1e-15 1\nsink s1 1e-15 1e-9 0.8\n").expect_err("no driver");
        assert!(err.to_string().contains("driver"));
    }

    #[test]
    fn leaf_without_sink_spec_is_an_error() {
        let err = parse("driver 100 0\nwire source a 1 1e-15 1\n").expect_err("bad");
        assert!(err.to_string().contains("no sink spec"), "{err}");
    }

    #[test]
    fn sink_with_children_is_an_error() {
        let text = "\
driver 100 0
wire source a 1 1e-15 1
wire a b 1 1e-15 1
sink a 1e-15 1e-9 0.8
sink b 1e-15 1e-9 0.8
";
        let err = parse(text).expect_err("bad");
        assert!(err.to_string().contains("leaves"), "{err}");
    }

    #[test]
    fn duplicate_parent_is_an_error() {
        let text = "\
driver 100 0
wire source a 1 1e-15 1
wire source b 1 1e-15 1
wire a c 1 1e-15 1
wire b c 1 1e-15 1
sink c 1e-15 1e-9 0.8
";
        let err = parse(text).expect_err("two parents");
        assert!(err.to_string().contains("already has a parent"), "{err}");
    }

    #[test]
    fn unreachable_wire_is_an_error() {
        let text = "\
driver 100 0
wire source a 1 1e-15 1
wire ghost b 1 1e-15 1
sink a 1e-15 1e-9 0.8
sink b 1e-15 1e-9 0.8
";
        let err = parse(text).expect_err("orphan");
        assert!(err.to_string().contains("not reachable"), "{err}");
    }

    #[test]
    fn bad_number_reports_line() {
        let err = parse("driver 100 zero\n").expect_err("bad number");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = parse("driver 1 0\nfrobnicate x\n").expect_err("unknown");
        assert!(err.to_string().contains("frobnicate"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn high_degree_node_binarizes_and_roundtrips() {
        let text = "\
driver 100 0
wire source hub 10 1e-14 100
wire hub a 1 1e-15 10
wire hub b 1 1e-15 10
wire hub c 1 1e-15 10 3e9
sink a 1e-15 1e-9 0.8
sink b 1e-15 1e-9 0.8
sink c 1e-15 1e-9 0.8
";
        let net = parse(text).expect("valid");
        assert_eq!(net.tree.sinks().len(), 3);
        assert!(net.tree.node_ids().all(|v| net.tree.children(v).len() <= 2));
        let again = parse(&write(&net)).expect("round-trip");
        assert_eq!(net.tree.total_capacitance(), again.tree.total_capacitance());
        // The coupled wire keeps its factor through the round-trip.
        let c1 = net.node("c").expect("c");
        let c2 = again.node("c").expect("c");
        assert_eq!(net.scenario.factor(c1), again.scenario.factor(c2));
    }

    mod properties {
        use super::*;
        use buffopt_tree::TreeBuilder;
        use proptest::prelude::*;

        /// Random net recipe: parent pick + sink flag + RC values.
        fn arb_recipe() -> impl Strategy<Value = Vec<(usize, bool, f64, f64, f64)>> {
            prop::collection::vec(
                (
                    0usize..32,
                    prop::bool::ANY,
                    0.1f64..1000.0,
                    1e-16f64..1e-12,
                    1.0f64..5000.0,
                ),
                1..24,
            )
        }

        fn build(recipe: &[(usize, bool, f64, f64, f64)]) -> Option<ParsedNet> {
            let mut b = TreeBuilder::new(Driver::new(250.0, 1e-11));
            let mut attachable = vec![b.source()];
            let mut names: Vec<Option<String>> = vec![Some("source".into())];
            let mut factors = vec![0.0];
            let mut sinks = 0;
            for (i, &(pick, is_sink, r, c, l)) in recipe.iter().enumerate() {
                let parent = attachable[pick % attachable.len()];
                let wire = Wire::from_rc(r, c, l);
                if is_sink {
                    b.add_sink(parent, wire, SinkSpec::new(1e-14, 1e-9, 0.8))
                        .expect("attachable");
                    sinks += 1;
                } else {
                    let id = b.add_internal(parent, wire).expect("attachable");
                    attachable.push(id);
                }
                names.push(Some(format!("n{i}")));
                factors.push(if i % 3 == 0 { 5.04e9 } else { 0.0 });
            }
            if sinks == 0 {
                return None;
            }
            let tree = b.build().ok()?;
            // Leaf internal nodes are not expressible in the format
            // (every leaf must be a sink); skip such recipes.
            for v in tree.node_ids() {
                if tree.children(v).is_empty() && tree.sink_spec(v).is_none() {
                    return None;
                }
            }
            while names.len() < tree.len() {
                names.push(None);
                factors.push(0.0);
            }
            let mut scenario = NoiseScenario::quiet(&tree);
            for (i, f) in factors.iter().enumerate() {
                scenario.set_factor(NodeId::from_index(i), *f);
            }
            Some(ParsedNet {
                name: Some("prop".into()),
                tree,
                scenario,
                node_names: names,
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// write → parse round-trips every electrical quantity (node
            /// ids may be relabeled, so compare isomorphism invariants:
            /// totals, Elmore delay, metric noise — f64 Display is
            /// round-trip precise in Rust so these are exact).
            #[test]
            fn roundtrip_random_nets(recipe in arb_recipe()) {
                use buffopt_noise::metric;
                use buffopt_tree::{elmore, slack};
                let Some(net) = build(&recipe) else { return Ok(()); };
                let text = write(&net);
                let again = parse(&text).expect("own output parses");
                prop_assert_eq!(&net.name, &again.name);
                prop_assert_eq!(net.tree.sinks().len(), again.tree.sinks().len());
                prop_assert_eq!(net.tree.len(), again.tree.len());
                // Node order may change, so summation order may differ:
                // allow a few ulps.
                prop_assert!(
                    (net.tree.total_capacitance() - again.tree.total_capacitance()).abs()
                        < 1e-9 * net.tree.total_capacitance().max(1e-300)
                );
                prop_assert!(
                    (net.tree.total_wire_length() - again.tree.total_wire_length()).abs()
                        < 1e-9 * net.tree.total_wire_length().max(1e-300)
                );
                let d1 = elmore::max_sink_delay(&net.tree);
                let d2 = elmore::max_sink_delay(&again.tree);
                prop_assert!((d1 - d2).abs() < 1e-9 * d1.abs().max(1e-300));
                let q1 = slack::source_slack(&net.tree);
                let q2 = slack::source_slack(&again.tree);
                prop_assert!((q1 - q2).abs() < 1e-9 * q1.abs().max(1e-15));
                let n1 = metric::NoiseReport::analyze(&net.tree, &net.scenario);
                let n2 = metric::NoiseReport::analyze(&again.tree, &again.scenario);
                prop_assert!(
                    (n1.worst_headroom() - n2.worst_headroom()).abs()
                        < 1e-9 * n1.worst_headroom().abs().max(1e-12)
                );
                let i1: f64 = net
                    .tree
                    .node_ids()
                    .map(|v| net.scenario.wire_current(&net.tree, v))
                    .sum();
                let i2: f64 = again
                    .tree
                    .node_ids()
                    .map(|v| again.scenario.wire_current(&again.tree, v))
                    .sum();
                prop_assert!((i1 - i2).abs() < 1e-9 * i1.abs().max(1e-300));
            }
        }
    }

    #[test]
    fn source_as_child_rejected() {
        let err = parse("driver 1 0\nwire a source 1 1e-15 1\n").expect_err("bad");
        assert!(err.to_string().contains("source"));
    }

    /// One test per [`ParseNetErrorKind`] variant: the hostile input that
    /// produces it, the kind itself, and its Display text.
    mod error_kinds {
        use super::*;

        fn kind_of(text: &str) -> ParseNetError {
            parse(text).expect_err("input must be rejected")
        }

        #[test]
        fn syntax() {
            let e = kind_of("net a b\n");
            assert_eq!(
                e.kind,
                ParseNetErrorKind::Syntax("expected: net NAME".into())
            );
            assert_eq!(e.line, 1);
            assert!(e.to_string().contains("expected: net NAME"));
        }

        #[test]
        fn unknown_directive() {
            let e = kind_of("driver 1 0\nfrobnicate x\n");
            assert_eq!(
                e.kind,
                ParseNetErrorKind::UnknownDirective("frobnicate".into())
            );
            assert!(e.to_string().contains("frobnicate"));
        }

        #[test]
        fn invalid_number() {
            let e = kind_of("driver 100 zero\n");
            assert_eq!(
                e.kind,
                ParseNetErrorKind::InvalidNumber {
                    what: "driver intrinsic delay".into(),
                    token: "zero".into(),
                }
            );
            assert!(e.to_string().contains("zero"));
        }

        #[test]
        fn invalid_quantity_negative() {
            let e = kind_of("driver -5 0\n");
            assert_eq!(
                e.kind,
                ParseNetErrorKind::InvalidQuantity {
                    what: "driver resistance".into(),
                    value: -5.0,
                }
            );
            assert!(e.to_string().contains("finite"));
        }

        #[test]
        fn invalid_quantity_infinite_wire() {
            // `inf` is only legal as a required arrival time.
            let e = kind_of("driver 1 0\nwire source s inf 1e-15 1\nsink s 1e-15 1e-9 0.8\n");
            assert!(matches!(
                e.kind,
                ParseNetErrorKind::InvalidQuantity { ref what, value }
                    if what == "wire resistance" && value.is_infinite()
            ));
            assert_eq!(e.line, 2);
        }

        #[test]
        fn invalid_quantity_nan_is_a_bad_number() {
            // "NaN" parses as f64 but fails the finite check.
            let e = kind_of("driver NaN 0\n");
            assert!(matches!(
                e.kind,
                ParseNetErrorKind::InvalidQuantity { value, .. } if value.is_nan()
            ));
        }

        #[test]
        fn invalid_quantity_negative_coupling() {
            let e = kind_of("driver 1 0\nwire source s 1 1e-15 1 -2e9\nsink s 1e-15 1e-9 0.8\n");
            assert!(matches!(
                e.kind,
                ParseNetErrorKind::InvalidQuantity { ref what, .. } if what == "coupling factor"
            ));
        }

        #[test]
        fn duplicate_driver() {
            let e = kind_of("driver 1 0\ndriver 2 0\n");
            assert_eq!(e.kind, ParseNetErrorKind::DuplicateDriver);
            assert_eq!(e.line, 2);
            assert!(e.to_string().contains("duplicate driver"));
        }

        #[test]
        fn missing_driver() {
            let e = kind_of("wire source s 1 1e-15 1\nsink s 1e-15 1e-9 0.8\n");
            assert_eq!(e.kind, ParseNetErrorKind::MissingDriver);
            assert_eq!(e.line, 0);
            assert!(e.to_string().contains("driver"));
        }

        #[test]
        fn no_wires() {
            let e = kind_of("driver 1 0\n");
            assert_eq!(e.kind, ParseNetErrorKind::NoWires);
            assert!(e.to_string().contains("no wires"));
        }

        #[test]
        fn source_as_child() {
            let e = kind_of("driver 1 0\nwire a source 1 1e-15 1\n");
            assert_eq!(e.kind, ParseNetErrorKind::SourceAsChild);
        }

        #[test]
        fn duplicate_parent() {
            let text = "\
driver 1 0
wire source a 1 1e-15 1
wire source b 1 1e-15 1
wire a c 1 1e-15 1
wire b c 1 1e-15 1
sink c 1e-15 1e-9 0.8
";
            let e = kind_of(text);
            assert_eq!(
                e.kind,
                ParseNetErrorKind::DuplicateParent {
                    node: "c".into(),
                    first_line: 4,
                }
            );
            assert_eq!(e.line, 5);
            assert!(e.to_string().contains("already has a parent"));
        }

        #[test]
        fn duplicate_sink() {
            let text = "\
driver 1 0
wire source s 1 1e-15 1
sink s 1e-15 1e-9 0.8
sink s 2e-15 1e-9 0.8
";
            let e = kind_of(text);
            assert_eq!(e.kind, ParseNetErrorKind::DuplicateSink("s".into()));
            assert_eq!(e.line, 4);
        }

        #[test]
        fn sink_not_wired() {
            let e = kind_of("driver 1 0\nwire source s 1 1e-15 1\nsink s 1e-15 1e-9 0.8\nsink ghost 1e-15 1e-9 0.8\n");
            assert_eq!(e.kind, ParseNetErrorKind::SinkNotWired("ghost".into()));
        }

        #[test]
        fn sink_not_leaf() {
            let text = "\
driver 1 0
wire source a 1 1e-15 1
wire a b 1 1e-15 1
sink a 1e-15 1e-9 0.8
sink b 1e-15 1e-9 0.8
";
            let e = kind_of(text);
            assert_eq!(e.kind, ParseNetErrorKind::SinkNotLeaf("a".into()));
            assert!(e.to_string().contains("leaves"));
        }

        #[test]
        fn leaf_without_sink() {
            let e = kind_of("driver 1 0\nwire source a 1 1e-15 1\n");
            assert_eq!(e.kind, ParseNetErrorKind::LeafWithoutSink("a".into()));
            assert!(e.to_string().contains("no sink spec"));
        }

        #[test]
        fn cycle() {
            let text = "\
driver 1 0
wire source s 1 1e-15 1
wire a b 1 1e-15 1
wire b a 1 1e-15 1
sink s 1e-15 1e-9 0.8
";
            let e = kind_of(text);
            assert!(
                matches!(e.kind, ParseNetErrorKind::Cycle(_)),
                "expected a cycle, got {:?}",
                e.kind
            );
            assert!(e.to_string().contains("cycle"));
        }

        #[test]
        fn orphan() {
            let text = "\
driver 1 0
wire source a 1 1e-15 1
wire ghost b 1 1e-15 1
sink a 1e-15 1e-9 0.8
sink b 1e-15 1e-9 0.8
";
            let e = kind_of(text);
            assert_eq!(
                e.kind,
                ParseNetErrorKind::Orphan {
                    parent: "ghost".into(),
                    child: "b".into(),
                }
            );
            assert!(e.to_string().contains("not reachable"));
        }

        #[test]
        fn tree_variant_displays_raw_message() {
            let e = ParseNetError {
                line: 0,
                kind: ParseNetErrorKind::Tree("routing tree has no sinks".into()),
            };
            assert_eq!(e.to_string(), "net file invalid: routing tree has no sinks");
        }

        #[test]
        fn error_trait_contract() {
            use std::error::Error as _;
            let e = kind_of("driver 1 0\n");
            // Leaf error: no source, non-empty Display, thread-safe.
            assert!(e.source().is_none());
            assert!(!e.to_string().is_empty());
            fn assert_send_sync<T: Send + Sync + 'static>() {}
            assert_send_sync::<ParseNetError>();
            assert_send_sync::<ParseNetErrorKind>();
        }
    }
}
