//! CRC-64/XZ (aka CRC-64/GO-ECMA): reflected polynomial
//! `0xC96C5795D7870F42`, init and xorout all-ones. Chosen over the FNV
//! content digests already used for cache keys because CRC has a
//! guaranteed Hamming-distance floor — any single-bit flip (and any
//! burst up to 64 bits) in a protected payload changes the checksum,
//! which is exactly the storage/wire fault model this layer defends
//! against. The table is built in a `const fn` so the hasher has no
//! runtime initialisation or locking.

const POLY: u64 = 0xC96C_5795_D787_0F42;

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u64; 256] = build_table();

/// Streaming CRC-64/XZ hasher for payloads that arrive in pieces
/// (journal key + record, memo frontier rows field by field).
#[derive(Clone)]
pub struct Crc64 {
    state: u64,
}

impl Crc64 {
    pub fn new() -> Self {
        Self { state: !0 }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u64) & 0xff) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Fold a `u64` in as its little-endian bytes — used to checksum
    /// numeric struct fields (e.g. `f64::to_bits`) without formatting.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    pub fn finish(&self) -> u64 {
        !self.state
    }
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-64/XZ of a byte slice.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut h = Crc64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_crc64_xz_check_value() {
        // The standard check input for every CRC catalogue entry.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Crc64::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc64(data), "split at {split}");
        }
    }

    #[test]
    fn every_single_bit_flip_changes_the_checksum() {
        let data = b"journal record payload 42";
        let base = crc64(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc64(&copy), base, "flip byte {byte} bit {bit}");
                copy[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn empty_input_has_the_identity_checksum() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn update_u64_folds_little_endian_bytes() {
        let mut a = Crc64::new();
        a.update_u64(0x0102_0304_0506_0708);
        let mut b = Crc64::new();
        b.update(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }
}
