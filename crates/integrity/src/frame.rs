//! Optional length+CRC framing for the newline-JSON wire protocol.
//!
//! A framed line is
//!
//! ```text
//! !F <len:8 hex> <crc64:16 hex> <payload>\n
//! ```
//!
//! where `len` is the payload byte count and `crc64` is the
//! CRC-64/XZ of the payload. The `!F ` prefix can never begin a plain
//! JSON request (those start with `{` or a bare word like `stats`), so
//! framed and unframed clients share one port: the server only
//! interprets the prefix when `--frame-check` is on, and mirrors the
//! framing of each request on its response. A truncated or damaged
//! frame fails closed with a typed [`FrameError`] instead of being
//! handed to the JSON parser as a guess.

use crate::crc64::crc64;

/// Marks a line as length+CRC framed.
pub const FRAME_PREFIX: &str = "!F ";

/// Why a framed line was rejected. Stringified into the `detail`
/// field of the typed `bad_frame` wire error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header is not `!F <8 hex> <16 hex> `.
    MalformedHeader,
    /// The payload is shorter or longer than the declared length —
    /// the signature of a torn or truncated write.
    LengthMismatch { declared: usize, actual: usize },
    /// The payload checksum does not match — a damaged frame.
    CrcMismatch { declared: u64, actual: u64 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::MalformedHeader => write!(f, "malformed frame header"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "frame length mismatch: declared {declared}, got {actual}"
                )
            }
            FrameError::CrcMismatch { declared, actual } => {
                write!(
                    f,
                    "frame crc mismatch: declared {declared:016x}, got {actual:016x}"
                )
            }
        }
    }
}

/// True when the line carries the frame prefix (works on raw bytes so
/// a damaged non-UTF-8 payload is still routed to frame validation).
pub fn is_framed(line: &[u8]) -> bool {
    line.starts_with(FRAME_PREFIX.as_bytes())
}

/// Wrap a payload in a length+CRC frame (without trailing newline).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_PREFIX.len() + 26);
    out.extend_from_slice(FRAME_PREFIX.as_bytes());
    out.extend_from_slice(format!("{:08x} {:016x} ", payload.len(), crc64(payload)).as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a framed line (without trailing newline) and return the
/// payload bytes.
pub fn decode_frame(line: &[u8]) -> Result<&[u8], FrameError> {
    let rest = line
        .strip_prefix(FRAME_PREFIX.as_bytes())
        .ok_or(FrameError::MalformedHeader)?;
    // Header tail: 8 hex, space, 16 hex, space.
    if rest.len() < 26 || rest[8] != b' ' || rest[25] != b' ' {
        return Err(FrameError::MalformedHeader);
    }
    let declared_len = parse_hex(&rest[..8]).ok_or(FrameError::MalformedHeader)? as usize;
    let declared_crc = parse_hex(&rest[9..25]).ok_or(FrameError::MalformedHeader)?;
    let payload = &rest[26..];
    if payload.len() != declared_len {
        return Err(FrameError::LengthMismatch {
            declared: declared_len,
            actual: payload.len(),
        });
    }
    let actual = crc64(payload);
    if actual != declared_crc {
        return Err(FrameError::CrcMismatch {
            declared: declared_crc,
            actual,
        });
    }
    Ok(payload)
}

fn parse_hex(digits: &[u8]) -> Option<u64> {
    let mut v: u64 = 0;
    for &d in digits {
        let nibble = match d {
            b'0'..=b'9' => d - b'0',
            b'a'..=b'f' => d - b'a' + 10,
            _ => return None,
        };
        v = (v << 4) | nibble as u64;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_payloads() {
        for payload in [&b""[..], b"{\"id\":\"n1\"}", b"stats", &[0u8, 255, 10, 13]] {
            let framed = encode_frame(payload);
            assert!(is_framed(&framed));
            assert_eq!(decode_frame(&framed).expect("valid frame"), payload);
        }
    }

    #[test]
    fn plain_json_is_not_framed() {
        assert!(!is_framed(b"{\"id\":\"n1\"}"));
        assert!(!is_framed(b"stats"));
    }

    #[test]
    fn truncation_is_a_length_mismatch() {
        let framed = encode_frame(b"{\"id\":\"n1\",\"net\":\"...\"}");
        let torn = &framed[..framed.len() - 5];
        match decode_frame(torn) {
            Err(FrameError::LengthMismatch { declared, actual }) => {
                assert_eq!(declared, actual + 5)
            }
            other => panic!("expected length mismatch, got {other:?}"),
        }
    }

    #[test]
    fn any_payload_bit_flip_is_a_crc_mismatch() {
        let mut framed = encode_frame(b"{\"id\":\"n1\"}");
        let payload_start = framed.len() - b"{\"id\":\"n1\"}".len();
        for i in payload_start..framed.len() {
            framed[i] ^= 0x10;
            assert!(
                matches!(decode_frame(&framed), Err(FrameError::CrcMismatch { .. })),
                "flip at byte {i}"
            );
            framed[i] ^= 0x10;
        }
        assert!(decode_frame(&framed).is_ok());
    }

    #[test]
    fn garbage_headers_are_malformed_not_panics() {
        for line in [
            &b"!F "[..],
            b"!F zzzzzzzz 0000000000000000 {}",
            b"!F 00000002 00000000zzzzzzzz {}",
            b"!F 0000000200000000000000000 {}",
            b"!F short",
        ] {
            assert_eq!(
                decode_frame(line),
                Err(FrameError::MalformedHeader),
                "{line:?}"
            );
        }
    }
}
