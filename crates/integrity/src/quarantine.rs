//! Quarantine sidecars for corrupt journal lines.
//!
//! A line that fails its checksum is evidence, not garbage: it is
//! appended verbatim to `<journal>.quarantine` so an operator can
//! inspect what the disk actually returned, while the in-memory
//! journal simply omits the record and the affected net is recomputed.

use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The sidecar path for a journal: `<path>.quarantine`.
pub fn quarantine_path(journal: &Path) -> PathBuf {
    let mut name = journal.as_os_str().to_os_string();
    name.push(".quarantine");
    PathBuf::from(name)
}

/// Append one corrupt line (raw bytes, possibly not UTF-8) to the
/// journal's quarantine sidecar, newline-terminated.
pub fn quarantine_append(journal: &Path, line: &[u8]) -> io::Result<()> {
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(quarantine_path(journal))?;
    f.write_all(line)?;
    f.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_accumulates_raw_lines() {
        let path = std::env::temp_dir().join(format!(
            "buffopt-quarantine-test-{}.log",
            std::process::id()
        ));
        let side = quarantine_path(&path);
        let _ = std::fs::remove_file(&side);

        quarantine_append(&path, b"first bad line").expect("append");
        quarantine_append(&path, &[0xff, 0x00, b'x']).expect("append non-utf8");
        let got = std::fs::read(&side).expect("sidecar exists");
        assert_eq!(got, b"first bad line\n\xff\x00x\n");
        let _ = std::fs::remove_file(&side);
    }

    #[test]
    fn sidecar_path_appends_suffix() {
        assert_eq!(
            quarantine_path(Path::new("/tmp/run.journal")),
            PathBuf::from("/tmp/run.journal.quarantine")
        );
    }
}
