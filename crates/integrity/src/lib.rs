//! End-to-end integrity primitives: CRC64 checksums, length+CRC line
//! framing for the wire protocol, and quarantine sidecars for corrupt
//! journal lines.
//!
//! Everything downstream of this crate treats corruption as a
//! *detected, counted, recovered* event: a failed check is never an
//! answer, only a cache miss, a recompute, or a typed error. The crate
//! is dependency-free so every layer (pipeline journal, server cache,
//! memo table, TCP service, CLI) can share the same checksum without
//! widening the crate graph.

pub mod crc64;
pub mod frame;
pub mod quarantine;

pub use crc64::{crc64, Crc64};
pub use frame::{decode_frame, encode_frame, is_framed, FrameError, FRAME_PREFIX};
pub use quarantine::{quarantine_append, quarantine_path};
