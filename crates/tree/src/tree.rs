use crate::node::{Driver, Node, NodeId, NodeKind, SinkSpec, Wire};

/// An immutable, arena-backed routing tree `T = (V, E)` with a unique source
/// `s_o`, sinks `SI`, and internal nodes `IN` (Section II of the paper).
///
/// Constructed through [`TreeBuilder`](crate::TreeBuilder); guaranteed binary
/// (every node has at most two children) and connected. All analyses index
/// per-node tables by [`NodeId`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) source: NodeId,
    pub(crate) sinks: Vec<NodeId>,
}

impl RoutingTree {
    /// The unique source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// All sink nodes, in insertion order.
    #[inline]
    pub fn sinks(&self) -> &[NodeId] {
        &self.sinks
    }

    /// Number of nodes (source + sinks + internal).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree holds no nodes. Never true for built trees, which
    /// always contain at least a source and one sink.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this tree.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The driver at the source.
    pub fn driver(&self) -> &Driver {
        match &self.node(self.source).kind {
            NodeKind::Source(d) => d,
            _ => unreachable!("source node always holds a driver"),
        }
    }

    /// The sink specification at `id`, if `id` is a sink.
    pub fn sink_spec(&self, id: NodeId) -> Option<&SinkSpec> {
        match &self.node(id).kind {
            NodeKind::Sink(s) => Some(s),
            _ => None,
        }
    }

    /// The wire above `id` (connecting it to its parent). `None` for the
    /// source.
    #[inline]
    pub fn parent_wire(&self, id: NodeId) -> Option<&Wire> {
        self.node(id).parent_wire.as_ref()
    }

    /// The parent of `id`. `None` for the source.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Children of `id` in left-to-right order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Iterator over all node ids in arena order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Nodes in postorder (children before parents, source last).
    pub fn postorder(&self) -> Postorder<'_> {
        Postorder::new(self, self.source)
    }

    /// Nodes of the subtree rooted at `root` in postorder.
    pub fn postorder_from(&self, root: NodeId) -> Postorder<'_> {
        Postorder::new(self, root)
    }

    /// Nodes in preorder (source first, parents before children).
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder::new(self, self.source)
    }

    /// The ordered path of nodes from `from` down to `to`, inclusive, or
    /// `None` if `to` is not in the subtree of `from`.
    pub fn path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let mut rev = vec![to];
        let mut cur = to;
        while cur != from {
            cur = self.parent(cur)?;
            rev.push(cur);
        }
        rev.reverse();
        Some(rev)
    }

    /// Sinks downstream of `v` (the paper's `SI(v)`), including `v` itself
    /// when `v` is a sink.
    pub fn downstream_sinks(&self, v: NodeId) -> Vec<NodeId> {
        self.postorder_from(v)
            .filter(|&n| self.node(n).kind.is_sink())
            .collect()
    }

    /// Total wire length (microns) of all wires in the tree.
    pub fn total_wire_length(&self) -> f64 {
        self.node_ids()
            .filter_map(|id| self.parent_wire(id).map(|w| w.length))
            .sum()
    }

    /// Total lumped wire capacitance (farads) plus sink pin capacitance —
    /// the "total capacitance" by which the paper ranks its 500 test nets.
    pub fn total_capacitance(&self) -> f64 {
        let wires: f64 = self
            .node_ids()
            .filter_map(|id| self.parent_wire(id).map(|w| w.capacitance))
            .sum();
        let pins: f64 = self
            .sinks
            .iter()
            .filter_map(|&s| self.sink_spec(s).map(|spec| spec.capacitance))
            .sum();
        wires + pins
    }

    /// Number of internal nodes where a buffer may be placed.
    pub fn feasible_site_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_feasible_site())
            .count()
    }

    /// Checks the structural invariants of the tree, returning a list of
    /// human-readable violations (empty when the tree is well-formed). The
    /// builder establishes these invariants; this is a debugging aid for
    /// transformations layered on top.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for id in self.node_ids() {
            let node = self.node(id);
            if node.children.len() > 2 {
                problems.push(format!("{id} has {} children (> 2)", node.children.len()));
            }
            match (&node.parent, &node.parent_wire) {
                (None, None) => {
                    if id != self.source {
                        problems.push(format!("{id} has no parent but is not the source"));
                    }
                }
                (Some(_), Some(_)) => {}
                _ => problems.push(format!("{id} has mismatched parent/parent_wire")),
            }
            if node.kind.is_sink() && !node.children.is_empty() {
                problems.push(format!("sink {id} has children"));
            }
            for &c in &node.children {
                if c.index() >= self.nodes.len() {
                    problems.push(format!("{id} references out-of-range child {c}"));
                } else if self.node(c).parent != Some(id) {
                    problems.push(format!("child {c} of {id} does not point back"));
                }
            }
        }
        let reached = self.postorder().count();
        if reached != self.nodes.len() {
            problems.push(format!(
                "only {reached} of {} nodes reachable from the source",
                self.nodes.len()
            ));
        }
        problems
    }
}

/// The analysis kernel sees a routing tree as a plain rooted topology:
/// node ids are the arena indices, the root is the source, and child
/// order is the tree's left-to-right order (fixing the floating-point
/// fold order at branches).
impl buffopt_analysis::Topology for RoutingTree {
    #[inline]
    fn node_count(&self) -> usize {
        self.len()
    }

    #[inline]
    fn root_node(&self) -> u32 {
        self.source.0
    }

    #[inline]
    fn parent_of(&self, v: u32) -> Option<u32> {
        self.parent(NodeId(v)).map(|p| p.0)
    }

    #[inline]
    fn child_count(&self, v: u32) -> usize {
        self.children(NodeId(v)).len()
    }

    #[inline]
    fn child_of(&self, v: u32, i: usize) -> u32 {
        self.children(NodeId(v))[i].0
    }
}

/// Postorder traversal over a [`RoutingTree`], produced by
/// [`RoutingTree::postorder`].
#[derive(Debug)]
pub struct Postorder<'a> {
    tree: &'a RoutingTree,
    // Stack of (node, next-child-index-to-visit).
    stack: Vec<(NodeId, usize)>,
}

impl<'a> Postorder<'a> {
    fn new(tree: &'a RoutingTree, root: NodeId) -> Self {
        Postorder {
            tree,
            stack: vec![(root, 0)],
        }
    }
}

impl Iterator for Postorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let &(node, child_idx) = self.stack.last()?;
            let children = self.tree.children(node);
            if child_idx < children.len() {
                self.stack.last_mut().expect("non-empty").1 += 1;
                self.stack.push((children[child_idx], 0));
            } else {
                self.stack.pop();
                return Some(node);
            }
        }
    }
}

/// Preorder traversal over a [`RoutingTree`], produced by
/// [`RoutingTree::preorder`].
#[derive(Debug)]
pub struct Preorder<'a> {
    tree: &'a RoutingTree,
    stack: Vec<NodeId>,
}

impl<'a> Preorder<'a> {
    fn new(tree: &'a RoutingTree, root: NodeId) -> Self {
        Preorder {
            tree,
            stack: vec![root],
        }
    }
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.stack.pop()?;
        // Push right before left so the left child is visited first.
        for &c in self.tree.children(node).iter().rev() {
            self.stack.push(c);
        }
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    fn three_sink_tree() -> RoutingTree {
        // source - a - {s1, b - {s2, s3}}
        let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
        let a = b
            .add_internal(b.source(), Wire::from_rc(10.0, 1e-15, 10.0))
            .expect("attach a");
        b.add_sink(
            a,
            Wire::from_rc(5.0, 1e-15, 5.0),
            SinkSpec::new(2e-15, 1e-9, 0.8),
        )
        .expect("attach s1");
        let n2 = b
            .add_internal(a, Wire::from_rc(7.0, 2e-15, 7.0))
            .expect("attach b");
        b.add_sink(
            n2,
            Wire::from_rc(3.0, 1e-15, 3.0),
            SinkSpec::new(1e-15, 1e-9, 0.8),
        )
        .expect("attach s2");
        b.add_sink(
            n2,
            Wire::from_rc(4.0, 1e-15, 4.0),
            SinkSpec::new(1e-15, 1e-9, 0.8),
        )
        .expect("attach s3");
        b.build().expect("valid tree")
    }

    #[test]
    fn postorder_visits_children_first() {
        let t = three_sink_tree();
        let order: Vec<NodeId> = t.postorder().collect();
        assert_eq!(order.len(), t.len());
        assert_eq!(*order.last().expect("non-empty"), t.source());
        let pos: Vec<usize> = t
            .node_ids()
            .map(|id| order.iter().position(|&x| x == id).expect("visited"))
            .collect();
        for id in t.node_ids() {
            for &c in t.children(id) {
                assert!(
                    pos[c.index()] < pos[id.index()],
                    "child {c} must precede parent {id}"
                );
            }
        }
    }

    #[test]
    fn preorder_visits_parents_first() {
        let t = three_sink_tree();
        let order: Vec<NodeId> = t.preorder().collect();
        assert_eq!(order.len(), t.len());
        assert_eq!(order[0], t.source());
        let pos: Vec<usize> = t
            .node_ids()
            .map(|id| order.iter().position(|&x| x == id).expect("visited"))
            .collect();
        for id in t.node_ids() {
            for &c in t.children(id) {
                assert!(pos[c.index()] > pos[id.index()]);
            }
        }
    }

    #[test]
    fn path_between_source_and_sink() {
        let t = three_sink_tree();
        let sink = t.sinks()[2];
        let path = t.path(t.source(), sink).expect("sink is downstream");
        assert_eq!(path[0], t.source());
        assert_eq!(*path.last().expect("non-empty"), sink);
        // Each consecutive pair is a parent/child edge.
        for pair in path.windows(2) {
            assert_eq!(t.parent(pair[1]), Some(pair[0]));
        }
    }

    #[test]
    fn path_to_non_descendant_is_none() {
        let t = three_sink_tree();
        let s1 = t.sinks()[0];
        let s2 = t.sinks()[1];
        assert!(t.path(s1, s2).is_none());
    }

    #[test]
    fn downstream_sinks_of_source_is_all() {
        let t = three_sink_tree();
        let mut down = t.downstream_sinks(t.source());
        down.sort();
        let mut all = t.sinks().to_vec();
        all.sort();
        assert_eq!(down, all);
    }

    #[test]
    fn totals_are_sums() {
        let t = three_sink_tree();
        assert!((t.total_wire_length() - 29.0).abs() < 1e-12);
        // wires: 1+1+2+1+1 fF, pins: 2+1+1 fF
        assert!((t.total_capacitance() - 10e-15).abs() < 1e-27);
    }

    #[test]
    fn invariants_hold_for_built_tree() {
        let t = three_sink_tree();
        assert!(t.check_invariants().is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random tree recipe: a sequence of (parent index modulo current
        /// size, is_sink) instructions.
        fn arb_recipe() -> impl Strategy<Value = Vec<(usize, bool)>> {
            prop::collection::vec((0usize..64, prop::bool::ANY), 1..40)
        }

        fn build(recipe: &[(usize, bool)]) -> Option<RoutingTree> {
            let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
            let mut attachable = vec![b.source()];
            let mut sinks = 0usize;
            for &(pick, is_sink) in recipe {
                let parent = attachable[pick % attachable.len()];
                let wire = Wire::from_rc(10.0, 5e-15, 20.0);
                if is_sink {
                    b.add_sink(parent, wire, SinkSpec::new(1e-15, 1e-9, 0.8))
                        .expect("parent is attachable");
                    sinks += 1;
                } else {
                    let id = b.add_internal(parent, wire).expect("attachable");
                    attachable.push(id);
                }
            }
            if sinks == 0 {
                return None;
            }
            Some(b.build().expect("has sinks"))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Every built tree is binary, connected, and traversals
            /// visit each node exactly once.
            #[test]
            fn built_trees_are_well_formed(recipe in arb_recipe()) {
                let Some(t) = build(&recipe) else { return Ok(()); };
                prop_assert!(t.check_invariants().is_empty());
                prop_assert_eq!(t.postorder().count(), t.len());
                prop_assert_eq!(t.preorder().count(), t.len());
                // Path from source reaches every node.
                for v in t.node_ids() {
                    prop_assert!(t.path(t.source(), v).is_some());
                }
                // Downstream sinks of the source are exactly the sinks.
                let mut a = t.downstream_sinks(t.source());
                a.sort();
                let mut b = t.sinks().to_vec();
                b.sort();
                prop_assert_eq!(a, b);
            }

            /// Loads are additive: the source load equals total tree
            /// capacitance, and every node's load is bounded by it.
            #[test]
            fn loads_are_additive(recipe in arb_recipe()) {
                let Some(t) = build(&recipe) else { return Ok(()); };
                let cap = crate::elmore::downstream_capacitance(&t);
                let total = t.total_capacitance();
                prop_assert!((cap[t.source().index()] - total).abs() < 1e-24);
                for v in t.node_ids() {
                    prop_assert!(cap[v.index()] <= total + 1e-24);
                }
            }
        }
    }

    #[test]
    fn driver_accessor() {
        let t = three_sink_tree();
        assert!((t.driver().resistance - 100.0).abs() < 1e-12);
    }
}
