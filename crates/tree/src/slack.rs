//! Timing-slack analysis (eq. 5 of the paper).
//!
//! The paper defines the slack of a node `v` as
//! `q(v) = min_{s ∈ SI(v)} (RAT(s) − Delay(v → s))`, where `SI(v)` is the
//! set of sinks downstream of `v` and `Delay(v → s)` is the Elmore delay of
//! the wire path from `v` to `s`. The timing constraints of the net hold if
//! and only if the slack at the source, after subtracting the driver gate
//! delay, is non-negative.

use buffopt_analysis::sweep_slack;

use crate::elmore::{self, downstream_capacitance, Capacitance};
use crate::tree::RoutingTree;

/// Per-node timing slack `q(v)` of the unbuffered tree, computed bottom-up
/// in `O(n)`:
///
/// * at a sink, `q(s) = RAT(s)`;
/// * at an inner node, `q(v) = min_child (q(child) − Delay(wire(v, child)))`.
///
/// Note that `q(source)` does **not** include the driver gate delay; see
/// [`source_slack`].
pub fn timing_slack(tree: &RoutingTree) -> Vec<f64> {
    let cap = downstream_capacitance(tree);
    timing_slack_with_loads(tree, &cap)
}

/// Same as [`timing_slack`] but reuses a precomputed load table.
///
/// # Panics
///
/// Panics if `cap` has a different length than the tree.
pub fn timing_slack_with_loads(tree: &RoutingTree, cap: &[f64]) -> Vec<f64> {
    assert_eq!(cap.len(), tree.len(), "load table does not match tree");
    let mut q = Vec::new();
    sweep_slack(tree, &Capacitance, cap, cap, &mut q).expect("table length checked above");
    q
}

/// The slack available at the source *after* the driver gate delay:
/// `q(s_o) − (D_so + R_so · C(s_o))`. The net meets timing iff this is
/// non-negative (eq. 5).
pub fn source_slack(tree: &RoutingTree) -> f64 {
    let cap = downstream_capacitance(tree);
    let q = timing_slack_with_loads(tree, &cap);
    let d = tree.driver();
    q[tree.source().index()]
        - elmore::gate_delay(d.intrinsic_delay, d.resistance, cap[tree.source().index()])
}

/// True if every sink meets its required arrival time (eq. 5).
pub fn meets_timing(tree: &RoutingTree) -> bool {
    source_slack(tree) >= 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::node::{Driver, SinkSpec, Wire};

    #[test]
    fn sink_slack_is_rat() {
        let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
        let s = b
            .add_sink(
                b.source(),
                Wire::from_rc(10.0, 1e-15, 10.0),
                SinkSpec::new(1e-15, 2.5e-9, 0.8),
            )
            .expect("sink");
        let t = b.build().expect("tree");
        let q = timing_slack(&t);
        assert!((q[s.index()] - 2.5e-9).abs() < 1e-21);
    }

    #[test]
    fn source_slack_equals_rat_minus_total_delay_two_pin() {
        let mut b = TreeBuilder::new(Driver::new(100.0, 10e-12));
        let s = b
            .add_sink(
                b.source(),
                Wire::from_rc(200.0, 100e-15, 500.0),
                SinkSpec::new(20e-15, 1e-9, 0.8),
            )
            .expect("sink");
        let t = b.build().expect("tree");
        let delay = elmore::source_to_sink_delay(&t, s).expect("sink");
        assert!((source_slack(&t) - (1e-9 - delay)).abs() < 1e-21);
    }

    #[test]
    fn branch_slack_takes_minimum() {
        let mut b = TreeBuilder::new(Driver::new(0.0, 0.0));
        let a = b.add_internal(b.source(), Wire::dummy()).expect("a");
        // Critical sink: tight RAT through a slow wire.
        b.add_sink(
            a,
            Wire::from_rc(1000.0, 400e-15, 2000.0),
            SinkSpec::new(30e-15, 0.3e-9, 0.8),
        )
        .expect("critical");
        // Relaxed sink.
        b.add_sink(
            a,
            Wire::from_rc(10.0, 4e-15, 20.0),
            SinkSpec::new(1e-15, 5e-9, 0.8),
        )
        .expect("relaxed");
        let t = b.build().expect("tree");
        let cap = elmore::downstream_capacitance(&t);
        let q = timing_slack_with_loads(&t, &cap);
        let crit = t.sinks()[0];
        let w = t.parent_wire(crit).expect("wire");
        let expect = 0.3e-9 - elmore::wire_delay(w, cap[crit.index()]);
        assert!((q[a.index()] - expect).abs() < 1e-21);
    }

    #[test]
    fn infinite_rat_sink_never_constrains() {
        // Footnote 6: non-critical sinks get RAT = +inf.
        let mut b = TreeBuilder::new(Driver::new(0.0, 0.0));
        let a = b.add_internal(b.source(), Wire::dummy()).expect("a");
        b.add_sink(
            a,
            Wire::from_rc(10.0, 4e-15, 20.0),
            SinkSpec::new(1e-15, 1e-9, 0.8),
        )
        .expect("finite");
        b.add_sink(
            a,
            Wire::from_rc(9999.0, 999e-15, 9999.0),
            SinkSpec::new(99e-15, f64::INFINITY, 0.8),
        )
        .expect("infinite");
        let t = b.build().expect("tree");
        let q = timing_slack(&t);
        assert!(q[a.index()].is_finite());
    }

    #[test]
    fn meets_timing_flips_with_rat() {
        let build = |rat: f64| {
            let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
            b.add_sink(
                b.source(),
                Wire::from_rc(200.0, 100e-15, 500.0),
                SinkSpec::new(20e-15, rat, 0.8),
            )
            .expect("sink");
            b.build().expect("tree")
        };
        assert!(meets_timing(&build(1e-9)));
        assert!(!meets_timing(&build(1e-12)));
    }
}
