use crate::error::{check_non_negative, TreeError};
use crate::node::Wire;

/// Per-unit-length wire parasitics for a metal layer.
///
/// The paper's era (late-1990s, 0.25 µm-class PowerPC) has global wires with
/// resistance around 0.03–0.15 Ω/µm and total capacitance around
/// 0.2–0.4 fF/µm, with coupling an increasingly large fraction of the total.
/// The presets below bracket that range; the exact values matter only for
/// absolute numbers, not for the qualitative results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Wire resistance per micron (Ω/µm).
    pub resistance_per_micron: f64,
    /// Total wire capacitance per micron (F/µm), including the coupling
    /// fraction.
    pub capacitance_per_micron: f64,
}

impl Technology {
    /// Creates a technology from per-micron resistance (Ω/µm) and
    /// capacitance (F/µm).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidQuantity`] on negative or non-finite
    /// arguments.
    pub fn new(resistance_per_micron: f64, capacitance_per_micron: f64) -> Result<Self, TreeError> {
        check_non_negative("resistance per micron", resistance_per_micron)?;
        check_non_negative("capacitance per micron", capacitance_per_micron)?;
        Ok(Technology {
            resistance_per_micron,
            capacitance_per_micron,
        })
    }

    /// Thick, wide top-layer global wiring: low resistance.
    /// 0.08 Ω/µm, 0.25 fF/µm.
    pub fn global_layer() -> Self {
        Technology {
            resistance_per_micron: 0.08,
            capacitance_per_micron: 0.25e-15,
        }
    }

    /// Mid-stack wiring used for medium-length routes.
    /// 0.25 Ω/µm, 0.30 fF/µm.
    pub fn intermediate_layer() -> Self {
        Technology {
            resistance_per_micron: 0.25,
            capacitance_per_micron: 0.30e-15,
        }
    }

    /// Thin local wiring: high resistance.
    /// 0.8 Ω/µm, 0.35 fF/µm.
    pub fn local_layer() -> Self {
        Technology {
            resistance_per_micron: 0.8,
            capacitance_per_micron: 0.35e-15,
        }
    }

    /// Builds a [`Wire`] of the given length (µm) in this technology.
    pub fn wire(&self, length: f64) -> Wire {
        Wire {
            resistance: self.resistance_per_micron * length,
            capacitance: self.capacitance_per_micron * length,
            length,
        }
    }
}

impl Default for Technology {
    /// The global-layer preset, matching the paper's long global nets.
    fn default() -> Self {
        Technology::global_layer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_scales_linearly() {
        let tech = Technology::global_layer();
        let w = tech.wire(1000.0);
        assert!((w.resistance - 80.0).abs() < 1e-12);
        assert!((w.capacitance - 0.25e-12).abs() < 1e-27);
        assert!((w.length - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn presets_order_by_resistance() {
        assert!(
            Technology::global_layer().resistance_per_micron
                < Technology::intermediate_layer().resistance_per_micron
        );
        assert!(
            Technology::intermediate_layer().resistance_per_micron
                < Technology::local_layer().resistance_per_micron
        );
    }

    #[test]
    fn default_is_global() {
        assert_eq!(Technology::default(), Technology::global_layer());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(Technology::new(-1.0, 0.1e-15).is_err());
        assert!(Technology::new(0.1, f64::NAN).is_err());
        assert!(Technology::new(0.0, 0.0).is_ok());
    }
}
