use std::fmt;

use crate::error::{check_non_negative, TreeError};

/// Identifier of a node inside a [`RoutingTree`](crate::RoutingTree).
///
/// Also identifies the unique *parent wire* of the node (every node except
/// the source has exactly one wire connecting it to its parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Index into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Intended for per-node tables produced
    /// by analyses in this crate; indices must come from the same tree.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl<T> std::ops::Index<NodeId> for Vec<T> {
    type Output = T;
    #[inline]
    fn index(&self, id: NodeId) -> &T {
        &self[id.index()]
    }
}

impl<T> std::ops::IndexMut<NodeId> for Vec<T> {
    #[inline]
    fn index_mut(&mut self, id: NodeId) -> &mut T {
        &mut self[id.index()]
    }
}

/// The gate driving a net at its source node.
///
/// Gate delay follows the paper's linear model (eq. 3):
/// `Delay(g) = D_g + R_g · C(load)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Driver {
    /// Intrinsic (output) resistance `R_g` in ohms.
    pub resistance: f64,
    /// Intrinsic delay `D_g` in seconds.
    pub intrinsic_delay: f64,
}

impl Driver {
    /// Creates a driver from its resistance (ohms) and intrinsic delay
    /// (seconds).
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or non-finite; use
    /// [`Driver::try_new`] for fallible construction.
    pub fn new(resistance: f64, intrinsic_delay: f64) -> Self {
        Self::try_new(resistance, intrinsic_delay).expect("invalid driver parameters")
    }

    /// Fallible counterpart of [`Driver::new`].
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidQuantity`] if either value is negative or
    /// non-finite.
    pub fn try_new(resistance: f64, intrinsic_delay: f64) -> Result<Self, TreeError> {
        check_non_negative("driver resistance", resistance)?;
        check_non_negative("driver intrinsic delay", intrinsic_delay)?;
        Ok(Driver {
            resistance,
            intrinsic_delay,
        })
    }
}

/// Electrical and timing specification of a sink pin.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkSpec {
    /// Input pin capacitance in farads.
    pub capacitance: f64,
    /// Required arrival time `RAT(s)` in seconds (signal leaves the source
    /// at time zero).
    pub required_arrival_time: f64,
    /// Tolerable noise margin `NM(s)` in volts.
    pub noise_margin: f64,
    /// Optional human-readable pin name, used in reports.
    pub name: Option<String>,
}

impl SinkSpec {
    /// Creates a sink from capacitance (farads), required arrival time
    /// (seconds) and noise margin (volts).
    ///
    /// # Panics
    ///
    /// Panics if capacitance or noise margin is negative or non-finite; use
    /// [`SinkSpec::try_new`] for fallible construction. (The required
    /// arrival time may be any finite value, including `f64::INFINITY` for
    /// non-critical sinks, following footnote 6 of the paper.)
    pub fn new(capacitance: f64, required_arrival_time: f64, noise_margin: f64) -> Self {
        Self::try_new(capacitance, required_arrival_time, noise_margin)
            .expect("invalid sink parameters")
    }

    /// Fallible counterpart of [`SinkSpec::new`].
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidQuantity`] if capacitance or noise margin
    /// is negative or non-finite, or if the required arrival time is NaN.
    pub fn try_new(
        capacitance: f64,
        required_arrival_time: f64,
        noise_margin: f64,
    ) -> Result<Self, TreeError> {
        check_non_negative("sink capacitance", capacitance)?;
        check_non_negative("sink noise margin", noise_margin)?;
        if required_arrival_time.is_nan() {
            return Err(TreeError::InvalidQuantity {
                what: "sink required arrival time",
                value: required_arrival_time,
            });
        }
        Ok(SinkSpec {
            capacitance,
            required_arrival_time,
            noise_margin,
            name: None,
        })
    }

    /// Attaches a human-readable name to the sink.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }
}

/// A wire segment connecting a node to its parent.
///
/// Electrically a wire is a lumped `(R, C)` pair with the paper's π-model
/// interpretation; geometrically it carries a length in microns so that
/// segmenting and the Theorem 1 length bound can reason per unit length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wire {
    /// Total wire resistance in ohms.
    pub resistance: f64,
    /// Total wire capacitance in farads.
    pub capacitance: f64,
    /// Geometric length in microns. Zero-length wires are legal; they arise
    /// from binarization dummies (paper footnote 1).
    pub length: f64,
}

impl Wire {
    /// Creates a wire from total resistance (ohms), total capacitance
    /// (farads) and length (microns).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite arguments; use [`Wire::try_from_rc`]
    /// for fallible construction.
    pub fn from_rc(resistance: f64, capacitance: f64, length: f64) -> Self {
        Self::try_from_rc(resistance, capacitance, length).expect("invalid wire parameters")
    }

    /// Fallible counterpart of [`Wire::from_rc`].
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidQuantity`] on negative or non-finite
    /// arguments.
    pub fn try_from_rc(resistance: f64, capacitance: f64, length: f64) -> Result<Self, TreeError> {
        check_non_negative("wire resistance", resistance)?;
        check_non_negative("wire capacitance", capacitance)?;
        check_non_negative("wire length", length)?;
        Ok(Wire {
            resistance,
            capacitance,
            length,
        })
    }

    /// A zero-length, zero-RC wire used as a binarization dummy.
    pub fn dummy() -> Self {
        Wire {
            resistance: 0.0,
            capacitance: 0.0,
            length: 0.0,
        }
    }

    /// True if this wire is electrically and geometrically empty.
    pub fn is_dummy(&self) -> bool {
        self.resistance == 0.0 && self.capacitance == 0.0 && self.length == 0.0
    }

    /// Splits the wire into `pieces` equal segments, preserving total R, C
    /// and length.
    ///
    /// # Panics
    ///
    /// Panics if `pieces` is zero.
    pub fn split(&self, pieces: usize) -> Wire {
        assert!(pieces > 0, "cannot split a wire into zero pieces");
        let n = pieces as f64;
        Wire {
            resistance: self.resistance / n,
            capacitance: self.capacitance / n,
            length: self.length / n,
        }
    }
}

/// What lives at a node of the routing tree.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The unique source, driven by a gate.
    Source(Driver),
    /// A sink pin (leaf).
    Sink(SinkSpec),
    /// An internal node: a Steiner branch point, a segmenting point, or a
    /// binarization dummy. `feasible` records whether a buffer may be placed
    /// here (Step 5 of van Ginneken's `Find_Candidates` only considers
    /// feasible nodes).
    Internal {
        /// Whether a buffer may legally be placed at this node.
        feasible: bool,
    },
}

impl NodeKind {
    /// True for [`NodeKind::Sink`].
    pub fn is_sink(&self) -> bool {
        matches!(self, NodeKind::Sink(_))
    }

    /// True for [`NodeKind::Source`].
    pub fn is_source(&self) -> bool {
        matches!(self, NodeKind::Source(_))
    }

    /// True for internal nodes that may receive a buffer.
    pub fn is_feasible_site(&self) -> bool {
        matches!(self, NodeKind::Internal { feasible: true })
    }
}

/// One node of a [`RoutingTree`](crate::RoutingTree) with its parent link.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// What the node is.
    pub kind: NodeKind,
    /// Parent node, `None` only for the source.
    pub parent: Option<NodeId>,
    /// The wire connecting this node to its parent; `None` only for the
    /// source.
    pub parent_wire: Option<Wire>,
    /// Children in left-to-right order; at most two after binarization.
    pub children: Vec<NodeId>,
}

impl Node {
    /// Left child `T_l(v)` if present.
    pub fn left(&self) -> Option<NodeId> {
        self.children.first().copied()
    }

    /// Right child `T_r(v)` if present.
    pub fn right(&self) -> Option<NodeId> {
        self.children.get(1).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    #[allow(clippy::useless_vec)] // the point is indexing a Vec by NodeId
    fn vec_indexing_by_node_id() {
        let v = vec![10, 20, 30];
        assert_eq!(v[NodeId::from_index(1)], 20);
    }

    #[test]
    fn driver_rejects_negative_resistance() {
        assert!(Driver::try_new(-1.0, 0.0).is_err());
        assert!(Driver::try_new(100.0, f64::NAN).is_err());
        assert!(Driver::try_new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sink_allows_infinite_rat() {
        let s = SinkSpec::try_new(10e-15, f64::INFINITY, 0.8).expect("infinite RAT is legal");
        assert!(s.required_arrival_time.is_infinite());
    }

    #[test]
    fn sink_rejects_nan_rat() {
        assert!(SinkSpec::try_new(10e-15, f64::NAN, 0.8).is_err());
    }

    #[test]
    fn sink_name_builder() {
        let s = SinkSpec::new(1e-15, 1e-9, 0.5).with_name("d_in");
        assert_eq!(s.name.as_deref(), Some("d_in"));
    }

    #[test]
    fn wire_split_preserves_totals() {
        let w = Wire::from_rc(900.0, 300e-15, 1500.0);
        let piece = w.split(3);
        assert!((piece.resistance * 3.0 - w.resistance).abs() < 1e-9);
        assert!((piece.capacitance * 3.0 - w.capacitance).abs() < 1e-24);
        assert!((piece.length * 3.0 - w.length).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero pieces")]
    fn wire_split_zero_panics() {
        Wire::dummy().split(0);
    }

    #[test]
    fn dummy_wire_is_dummy() {
        assert!(Wire::dummy().is_dummy());
        assert!(!Wire::from_rc(1.0, 0.0, 0.0).is_dummy());
    }

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Source(Driver::new(1.0, 0.0)).is_source());
        assert!(NodeKind::Sink(SinkSpec::new(0.0, 0.0, 0.0)).is_sink());
        assert!(NodeKind::Internal { feasible: true }.is_feasible_site());
        assert!(!NodeKind::Internal { feasible: false }.is_feasible_site());
    }
}
