use crate::error::TreeError;
use crate::node::{Driver, Node, NodeId, NodeKind, SinkSpec, Wire};
use crate::tree::RoutingTree;

/// Incremental constructor for [`RoutingTree`].
///
/// Nodes may be attached with arbitrary degree; [`TreeBuilder::build`]
/// binarizes the tree by inserting zero-length dummy internal nodes exactly
/// as paper footnote 1 prescribes, so the algorithms always see a binary
/// tree. Dummy nodes are *infeasible* buffer sites.
///
/// # Example
///
/// ```
/// use buffopt_tree::{TreeBuilder, Driver, SinkSpec, Wire};
///
/// # fn main() -> Result<(), buffopt_tree::TreeError> {
/// let mut b = TreeBuilder::new(Driver::new(120.0, 30.0e-12));
/// let branch = b.add_internal(b.source(), Wire::from_rc(200.0, 80.0e-15, 400.0))?;
/// for _ in 0..3 {
///     b.add_sink(branch, Wire::from_rc(50.0, 20.0e-15, 100.0),
///                SinkSpec::new(10.0e-15, 1.0e-9, 0.8))?;
/// }
/// let tree = b.build()?; // third child folded under a dummy node
/// assert!(tree.node_ids().all(|id| tree.children(id).len() <= 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
    sinks: Vec<NodeId>,
}

impl TreeBuilder {
    /// Starts a tree whose source is driven by `driver`.
    pub fn new(driver: Driver) -> Self {
        TreeBuilder {
            nodes: vec![Node {
                kind: NodeKind::Source(driver),
                parent: None,
                parent_wire: None,
                children: Vec::new(),
            }],
            sinks: Vec::new(),
        }
    }

    /// The source node id (always valid).
    pub fn source(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the source exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    fn attach(&mut self, parent: NodeId, wire: Wire, kind: NodeKind) -> Result<NodeId, TreeError> {
        let parent_node = self
            .nodes
            .get(parent.index())
            .ok_or(TreeError::UnknownNode(parent))?;
        if parent_node.kind.is_sink() {
            return Err(TreeError::ChildOfSink(parent));
        }
        let id = NodeId(self.nodes.len() as u32);
        if kind.is_sink() {
            self.sinks.push(id);
        }
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            parent_wire: Some(wire),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// Adds a feasible internal node (candidate buffer site) below `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if `parent` does not exist and
    /// [`TreeError::ChildOfSink`] if `parent` is a sink.
    pub fn add_internal(&mut self, parent: NodeId, wire: Wire) -> Result<NodeId, TreeError> {
        self.attach(parent, wire, NodeKind::Internal { feasible: true })
    }

    /// Adds an internal node where buffers may *not* be placed (e.g. a point
    /// under a wiring blockage).
    ///
    /// # Errors
    ///
    /// Same as [`TreeBuilder::add_internal`].
    pub fn add_infeasible_internal(
        &mut self,
        parent: NodeId,
        wire: Wire,
    ) -> Result<NodeId, TreeError> {
        self.attach(parent, wire, NodeKind::Internal { feasible: false })
    }

    /// Adds a sink leaf below `parent`.
    ///
    /// # Errors
    ///
    /// Same as [`TreeBuilder::add_internal`].
    pub fn add_sink(
        &mut self,
        parent: NodeId,
        wire: Wire,
        sink: SinkSpec,
    ) -> Result<NodeId, TreeError> {
        self.attach(parent, wire, NodeKind::Sink(sink))
    }

    /// Finishes construction: binarizes nodes of degree ≥ 3 with zero-length
    /// dummies and validates the result.
    ///
    /// Binarization keeps the first child in place and folds the remaining
    /// children pairwise under fresh dummy nodes; which children are grouped
    /// does not affect any algorithm's output (paper footnote 1) because the
    /// dummy wires are electrically empty.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NoSinks`] if no sink was ever added.
    pub fn build(mut self) -> Result<RoutingTree, TreeError> {
        if self.sinks.is_empty() {
            return Err(TreeError::NoSinks);
        }
        // Binarize: repeatedly fold surplus children under a dummy node.
        let mut queue: Vec<NodeId> = (0..self.nodes.len() as u32).map(NodeId).collect();
        while let Some(id) = queue.pop() {
            if self.nodes[id.index()].children.len() <= 2 {
                continue;
            }
            // Keep children[0]; fold children[1..] under a dummy.
            let surplus: Vec<NodeId> = self.nodes[id.index()].children.split_off(1);
            let dummy = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node {
                kind: NodeKind::Internal { feasible: false },
                parent: Some(id),
                parent_wire: Some(Wire::dummy()),
                children: surplus.clone(),
            });
            self.nodes[id.index()].children.push(dummy);
            for c in surplus {
                self.nodes[c.index()].parent = Some(dummy);
            }
            // The dummy may itself still have > 2 children.
            queue.push(dummy);
        }
        let tree = RoutingTree {
            nodes: self.nodes,
            source: NodeId(0),
            sinks: self.sinks,
        };
        debug_assert!(tree.check_invariants().is_empty());
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_spec() -> SinkSpec {
        SinkSpec::new(10e-15, 1e-9, 0.8)
    }

    #[test]
    fn empty_builder_has_only_source() {
        let b = TreeBuilder::new(Driver::new(100.0, 0.0));
        assert!(b.is_empty());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn build_without_sinks_fails() {
        let b = TreeBuilder::new(Driver::new(100.0, 0.0));
        assert_eq!(b.build().expect_err("no sinks"), TreeError::NoSinks);
    }

    #[test]
    fn attach_to_unknown_node_fails() {
        let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
        let bogus = NodeId::from_index(99);
        assert!(matches!(
            b.add_internal(bogus, Wire::dummy()),
            Err(TreeError::UnknownNode(_))
        ));
    }

    #[test]
    fn attach_below_sink_fails() {
        let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
        let s = b
            .add_sink(b.source(), Wire::dummy(), sink_spec())
            .expect("add sink");
        assert!(matches!(
            b.add_internal(s, Wire::dummy()),
            Err(TreeError::ChildOfSink(_))
        ));
    }

    #[test]
    fn two_pin_net_builds() {
        let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
        b.add_sink(b.source(), Wire::from_rc(10.0, 1e-15, 10.0), sink_spec())
            .expect("add sink");
        let t = b.build().expect("build");
        assert_eq!(t.len(), 2);
        assert_eq!(t.sinks().len(), 1);
    }

    #[test]
    fn high_degree_node_is_binarized() {
        let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
        let hub = b
            .add_internal(b.source(), Wire::from_rc(10.0, 1e-15, 10.0))
            .expect("hub");
        for _ in 0..5 {
            b.add_sink(hub, Wire::from_rc(1.0, 1e-15, 1.0), sink_spec())
                .expect("sink");
        }
        let t = b.build().expect("build");
        assert!(t.node_ids().all(|id| t.children(id).len() <= 2));
        assert_eq!(t.sinks().len(), 5);
        assert!(t.check_invariants().is_empty());
        // Dummies are electrically empty, so total capacitance is unchanged:
        // 1 + 5*1 fF wires + 5*10 fF pins.
        assert!((t.total_capacitance() - 56e-15).abs() < 1e-27);
    }

    #[test]
    fn binarization_preserves_reachability() {
        let mut b = TreeBuilder::new(Driver::new(50.0, 0.0));
        let hub = b
            .add_internal(b.source(), Wire::from_rc(1.0, 1e-15, 1.0))
            .expect("hub");
        let mut expected = Vec::new();
        for _ in 0..7 {
            expected.push(
                b.add_sink(hub, Wire::from_rc(1.0, 1e-15, 1.0), sink_spec())
                    .expect("sink"),
            );
        }
        let t = b.build().expect("build");
        let mut down = t.downstream_sinks(t.source());
        down.sort();
        let mut want = expected.clone();
        want.sort();
        assert_eq!(down, want);
    }

    #[test]
    fn infeasible_internal_marked() {
        let mut b = TreeBuilder::new(Driver::new(50.0, 0.0));
        let blocked = b
            .add_infeasible_internal(b.source(), Wire::from_rc(1.0, 1e-15, 1.0))
            .expect("blocked");
        b.add_sink(blocked, Wire::from_rc(1.0, 1e-15, 1.0), sink_spec())
            .expect("sink");
        let t = b.build().expect("build");
        assert!(!t.node(blocked).kind.is_feasible_site());
        assert_eq!(t.feasible_site_count(), 0);
    }
}
