//! ASCII rendering of routing trees for logs and CLI dumps.

use std::fmt::Write as _;

use crate::node::NodeKind;
use crate::tree::RoutingTree;

/// Renders the tree as an indented ASCII outline, one node per line with
/// its electrical summary.
///
/// ```
/// use buffopt_tree::{TreeBuilder, Driver, SinkSpec, Wire, render};
///
/// # fn main() -> Result<(), buffopt_tree::TreeError> {
/// let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
/// b.add_sink(b.source(), Wire::from_rc(50.0, 20.0e-15, 100.0),
///            SinkSpec::new(5.0e-15, 1.0e-9, 0.8))?;
/// let text = render(&b.build()?);
/// assert!(text.contains("source"));
/// assert!(text.contains("sink"));
/// # Ok(())
/// # }
/// ```
pub fn render(tree: &RoutingTree) -> String {
    let mut out = String::new();
    render_node(tree, tree.source(), 0, &mut out);
    out
}

fn render_node(tree: &RoutingTree, v: crate::NodeId, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let wire_info = match tree.parent_wire(v) {
        Some(w) => format!(
            " <- wire {:.1} ohm / {:.1} fF / {:.0} um",
            w.resistance,
            w.capacitance * 1e15,
            w.length
        ),
        None => String::new(),
    };
    match &tree.node(v).kind {
        NodeKind::Source(d) => {
            let _ = writeln!(
                out,
                "{v} source (driver {:.0} ohm, {:.1} ps)",
                d.resistance,
                d.intrinsic_delay * 1e12
            );
        }
        NodeKind::Sink(s) => {
            let name = s.name.as_deref().unwrap_or("");
            let rat = if s.required_arrival_time.is_infinite() {
                "inf".to_string()
            } else {
                format!("{:.0} ps", s.required_arrival_time * 1e12)
            };
            let _ = writeln!(
                out,
                "{v} sink {name} ({:.1} fF, RAT {rat}, NM {:.2} V){wire_info}",
                s.capacitance * 1e15,
                s.noise_margin
            );
        }
        NodeKind::Internal { feasible } => {
            let _ = writeln!(
                out,
                "{v} {}{wire_info}",
                if *feasible { "site" } else { "blocked" }
            );
        }
    }
    for &c in tree.children(v) {
        render_node(tree, c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::node::{Driver, SinkSpec, Wire};

    #[test]
    fn renders_every_node_once() {
        let mut b = TreeBuilder::new(Driver::new(200.0, 10e-12));
        let j = b
            .add_internal(b.source(), Wire::from_rc(10.0, 5e-15, 100.0))
            .expect("j");
        b.add_sink(
            j,
            Wire::from_rc(5.0, 2e-15, 50.0),
            SinkSpec::new(1e-15, 1e-9, 0.8).with_name("rx0"),
        )
        .expect("s1");
        b.add_infeasible_internal(j, Wire::from_rc(5.0, 2e-15, 50.0))
            .expect("blocked")
            .index();
        let t = b.build().expect("tree");
        let text = render(&t);
        assert_eq!(text.lines().count(), t.len());
        assert!(text.contains("source (driver 200 ohm"));
        assert!(text.contains("sink rx0"));
        assert!(text.contains("blocked"));
        assert!(text.contains("site"));
    }

    #[test]
    fn infinite_rat_prints_inf() {
        let mut b = TreeBuilder::new(Driver::new(200.0, 0.0));
        b.add_sink(
            b.source(),
            Wire::dummy(),
            SinkSpec::new(1e-15, f64::INFINITY, 0.8),
        )
        .expect("sink");
        let text = render(&b.build().expect("tree"));
        assert!(text.contains("RAT inf"));
    }

    #[test]
    fn indentation_tracks_depth() {
        let mut b = TreeBuilder::new(Driver::new(200.0, 0.0));
        let a = b
            .add_internal(b.source(), Wire::from_rc(1.0, 1e-15, 1.0))
            .expect("a");
        b.add_sink(
            a,
            Wire::from_rc(1.0, 1e-15, 1.0),
            SinkSpec::new(1e-15, 1e-9, 0.8),
        )
        .expect("sink");
        let t = b.build().expect("tree");
        let text = render(&t);
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines[0].starts_with(' '));
        assert!(lines[1].starts_with("  "));
        assert!(lines[2].starts_with("    "));
    }
}
