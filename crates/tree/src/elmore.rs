//! Elmore delay analysis (Section II-A of the paper).
//!
//! The Elmore model is chosen for the same reason the paper gives: it is
//! *additive* — a path delay is the sum of its edge delays — which is what
//! makes the dynamic programs provably optimal (paper footnote 4).

use buffopt_analysis::{pi_wire_term, sweep_down, sweep_up, AdditiveMetric};

use crate::node::{NodeId, Wire};
use crate::tree::RoutingTree;

/// The Elmore-delay instance of the analysis kernel's
/// [`AdditiveMetric`]: nodes inject sink pin capacitance, wires carry
/// their own capacitance as the series quantity, and sinks require their
/// RAT. [`downstream_capacitance`], [`arrival_times`], and
/// [`crate::slack::timing_slack`] are this metric driven through the
/// kernel sweeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct Capacitance;

impl AdditiveMetric<RoutingTree> for Capacitance {
    #[inline]
    fn node_injection(&self, t: &RoutingTree, v: u32) -> Option<f64> {
        Some(
            t.sink_spec(NodeId::from_index(v as usize))
                .map_or(0.0, |s| s.capacitance),
        )
    }

    #[inline]
    fn edge_quantity(&self, t: &RoutingTree, v: u32) -> f64 {
        t.parent_wire(NodeId::from_index(v as usize))
            .expect("non-source child has a wire")
            .capacitance
    }

    #[inline]
    fn edge_resistance(&self, t: &RoutingTree, v: u32) -> f64 {
        t.parent_wire(NodeId::from_index(v as usize))
            .expect("non-source child has a wire")
            .resistance
    }

    #[inline]
    fn requirement(&self, t: &RoutingTree, v: u32) -> Option<f64> {
        t.sink_spec(NodeId::from_index(v as usize))
            .map(|s| s.required_arrival_time)
    }
}

/// Downstream lumped capacitance `C(v)` for every node (eq. 1):
/// the total capacitance of the subtree hanging below `v`, i.e. all subtree
/// wire capacitance plus all subtree sink pin capacitance.
///
/// Runs in `O(n)` over a kernel postorder sweep. Index the result by
/// [`NodeId`].
pub fn downstream_capacitance(tree: &RoutingTree) -> Vec<f64> {
    let mut cap = Vec::new();
    sweep_down(tree, &Capacitance, &mut cap);
    cap
}

/// Elmore delay of a single wire `w = (u, v)` given the downstream load
/// `C(v)` at its lower end (eq. 2): `R_w · (C_w / 2 + C(v))` — the
/// kernel's [`pi_wire_term`].
#[inline]
pub fn wire_delay(wire: &Wire, load_below: f64) -> f64 {
    pi_wire_term(wire.resistance, wire.capacitance, load_below)
}

/// Linear gate delay (eq. 3): `D_g + R_g · C(load)`.
#[inline]
pub fn gate_delay(intrinsic_delay: f64, resistance: f64, load: f64) -> f64 {
    intrinsic_delay + resistance * load
}

/// Signal arrival time at every node of the *unbuffered* tree, with the
/// input arriving at the source gate at time zero (eq. 4).
///
/// `t(source)` is the driver gate delay; each child adds its parent-wire
/// Elmore delay. Index the result by [`NodeId`].
pub fn arrival_times(tree: &RoutingTree) -> Vec<f64> {
    let cap = downstream_capacitance(tree);
    arrival_times_with_loads(tree, &cap)
}

/// Same as [`arrival_times`] but reuses a precomputed
/// [`downstream_capacitance`] table.
///
/// # Panics
///
/// Panics if `cap` has a different length than the tree.
pub fn arrival_times_with_loads(tree: &RoutingTree, cap: &[f64]) -> Vec<f64> {
    assert_eq!(cap.len(), tree.len(), "load table does not match tree");
    let d = tree.driver();
    let root_term = gate_delay(d.intrinsic_delay, d.resistance, cap[tree.source().index()]);
    let mut t = Vec::new();
    sweep_up(tree, &Capacitance, cap, cap, root_term, &mut t).expect("table length checked above");
    t
}

/// Source-to-sink Elmore delay `Delay(s_o → s_i)` including the driver gate
/// delay, or `None` if `sink` is not a sink of the tree.
pub fn source_to_sink_delay(tree: &RoutingTree, sink: NodeId) -> Option<f64> {
    tree.sink_spec(sink)?;
    Some(arrival_times(tree)[sink.index()])
}

/// The maximum source-to-sink delay of the unbuffered tree.
pub fn max_sink_delay(tree: &RoutingTree) -> f64 {
    let t = arrival_times(tree);
    tree.sinks()
        .iter()
        .map(|&s| t[s.index()])
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::node::{Driver, SinkSpec};

    const EPS: f64 = 1e-18;

    /// Two-pin net with hand-computed Elmore numbers.
    fn two_pin() -> RoutingTree {
        let mut b = TreeBuilder::new(Driver::new(100.0, 10.0e-12));
        b.add_sink(
            b.source(),
            Wire::from_rc(200.0, 100.0e-15, 500.0),
            SinkSpec::new(20.0e-15, 1.0e-9, 0.8),
        )
        .expect("sink");
        b.build().expect("tree")
    }

    #[test]
    fn two_pin_load() {
        let t = two_pin();
        let cap = downstream_capacitance(&t);
        // Source sees wire + pin; sink sees only its own pin.
        assert!((cap[t.source().index()] - 120.0e-15).abs() < EPS);
        assert!((cap[t.sinks()[0].index()] - 20.0e-15).abs() < EPS);
    }

    #[test]
    fn two_pin_delay_by_hand() {
        let t = two_pin();
        // driver: 10ps + 100 * 120f = 10ps + 12ps = 22ps
        // wire: 200 * (50f + 20f) = 14ps
        let d = source_to_sink_delay(&t, t.sinks()[0]).expect("is a sink");
        assert!((d - 36.0e-12).abs() < 1e-15, "got {d}");
    }

    #[test]
    fn delay_of_non_sink_is_none() {
        let t = two_pin();
        assert!(source_to_sink_delay(&t, t.source()).is_none());
    }

    #[test]
    fn branch_loads_add() {
        // source -(w0)- a -{ s1, s2 }
        let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
        let a = b
            .add_internal(b.source(), Wire::from_rc(100.0, 40e-15, 100.0))
            .expect("a");
        b.add_sink(
            a,
            Wire::from_rc(50.0, 10e-15, 50.0),
            SinkSpec::new(5e-15, 1e-9, 0.8),
        )
        .expect("s1");
        b.add_sink(
            a,
            Wire::from_rc(80.0, 20e-15, 80.0),
            SinkSpec::new(7e-15, 1e-9, 0.8),
        )
        .expect("s2");
        let t = b.build().expect("tree");
        let cap = downstream_capacitance(&t);
        assert!((cap[a.index()] - (10e-15 + 5e-15 + 20e-15 + 7e-15)).abs() < EPS);
        assert!((cap[t.source().index()] - (40e-15 + cap[a.index()])).abs() < EPS);
    }

    #[test]
    fn arrival_time_is_monotone_down_the_tree() {
        let mut b = TreeBuilder::new(Driver::new(100.0, 1e-12));
        let mut prev = b.source();
        for _ in 0..10 {
            prev = b
                .add_internal(prev, Wire::from_rc(10.0, 5e-15, 10.0))
                .expect("chain");
        }
        b.add_sink(
            prev,
            Wire::from_rc(10.0, 5e-15, 10.0),
            SinkSpec::new(2e-15, 1e-9, 0.8),
        )
        .expect("sink");
        let t = b.build().expect("tree");
        let times = arrival_times(&t);
        for v in t.node_ids() {
            if let Some(p) = t.parent(v) {
                assert!(times[v.index()] >= times[p.index()]);
            }
        }
    }

    #[test]
    fn path_delay_is_sum_of_edge_delays() {
        // The additivity property the paper relies on (footnote 4).
        let mut b = TreeBuilder::new(Driver::new(150.0, 2e-12));
        let a = b
            .add_internal(b.source(), Wire::from_rc(120.0, 60e-15, 300.0))
            .expect("a");
        let s = b
            .add_sink(
                a,
                Wire::from_rc(90.0, 30e-15, 150.0),
                SinkSpec::new(12e-15, 1e-9, 0.8),
            )
            .expect("s");
        let t = b.build().expect("tree");
        let cap = downstream_capacitance(&t);
        let drv = gate_delay(2e-12, 150.0, cap[t.source().index()]);
        let e1 = wire_delay(t.parent_wire(a).expect("wire"), cap[a.index()]);
        let e2 = wire_delay(t.parent_wire(s).expect("wire"), cap[s.index()]);
        let total = source_to_sink_delay(&t, s).expect("sink");
        assert!((total - (drv + e1 + e2)).abs() < 1e-18);
    }

    #[test]
    fn max_sink_delay_picks_worst() {
        let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
        let a = b
            .add_internal(b.source(), Wire::from_rc(10.0, 1e-15, 10.0))
            .expect("a");
        let near = b
            .add_sink(
                a,
                Wire::from_rc(1.0, 1e-15, 1.0),
                SinkSpec::new(1e-15, 1e-9, 0.8),
            )
            .expect("near");
        let far = b
            .add_sink(
                a,
                Wire::from_rc(500.0, 200e-15, 1000.0),
                SinkSpec::new(1e-15, 1e-9, 0.8),
            )
            .expect("far");
        let t = b.build().expect("tree");
        let times = arrival_times(&t);
        assert!(times[far.index()] > times[near.index()]);
        assert!((max_sink_delay(&t) - times[far.index()]).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "load table")]
    fn mismatched_load_table_panics() {
        let t = two_pin();
        let _ = arrival_times_with_loads(&t, &[0.0]);
    }
}
