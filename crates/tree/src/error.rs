use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Error raised while constructing or transforming a routing tree.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TreeError {
    /// A referenced node does not exist in the tree being built.
    UnknownNode(NodeId),
    /// A child was attached under a sink, which must stay a leaf.
    ChildOfSink(NodeId),
    /// The finished tree has no sinks.
    NoSinks,
    /// A numeric argument that must be finite and non-negative was not.
    InvalidQuantity {
        /// Human-readable name of the offending quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A numeric argument that must be strictly positive was not.
    NonPositiveQuantity {
        /// Human-readable name of the offending quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            TreeError::ChildOfSink(id) => {
                write!(f, "cannot attach a child below sink node {id}")
            }
            TreeError::NoSinks => write!(f, "routing tree has no sinks"),
            TreeError::InvalidQuantity { what, value } => {
                write!(f, "{what} must be finite and non-negative, got {value}")
            }
            TreeError::NonPositiveQuantity { what, value } => {
                write!(f, "{what} must be strictly positive, got {value}")
            }
        }
    }
}

impl Error for TreeError {}

pub(crate) fn check_non_negative(what: &'static str, value: f64) -> Result<(), TreeError> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(TreeError::InvalidQuantity { what, value })
    }
}

pub(crate) fn check_positive(what: &'static str, value: f64) -> Result<(), TreeError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(TreeError::NonPositiveQuantity { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_quantity_name() {
        let err = TreeError::InvalidQuantity {
            what: "wire resistance",
            value: -1.0,
        };
        let text = err.to_string();
        assert!(text.contains("wire resistance"));
        assert!(text.contains("-1"));
    }

    #[test]
    fn check_non_negative_accepts_zero() {
        assert!(check_non_negative("x", 0.0).is_ok());
        assert!(check_non_negative("x", 1.5).is_ok());
    }

    #[test]
    fn check_non_negative_rejects_nan_and_negative() {
        assert!(check_non_negative("x", f64::NAN).is_err());
        assert!(check_non_negative("x", -0.1).is_err());
        assert!(check_non_negative("x", f64::INFINITY).is_err());
    }

    #[test]
    fn check_positive_rejects_zero() {
        assert!(check_positive("x", 0.0).is_err());
        assert!(check_positive("x", 1.0e-18).is_ok());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TreeError>();
    }
}
