//! Wire segmenting (Alpert–Devgan, paper reference \[1\]).
//!
//! Van Ginneken-style dynamic programs can place at most one buffer per
//! wire. Long wires are therefore pre-split into chains of shorter segments
//! joined by *feasible* internal nodes — candidate buffer sites. The
//! segment length trades solution quality against run time (paper
//! footnote 3).

use crate::builder::TreeBuilder;
use crate::error::{check_positive, TreeError};
use crate::node::{NodeId, NodeKind};
use crate::tree::RoutingTree;

/// The result of segmenting: the refined tree plus a map from each new node
/// back to the original node it came from (`None` for freshly inserted
/// segmenting points).
#[derive(Debug, Clone)]
pub struct Segmented {
    /// The refined routing tree.
    pub tree: RoutingTree,
    /// For each node of `tree` (indexed by [`NodeId`]): the node of the
    /// original tree it corresponds to, or `None` for new segmenting nodes.
    pub original: Vec<Option<NodeId>>,
}

impl Segmented {
    /// New nodes introduced by segmenting.
    pub fn new_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.original
            .iter()
            .enumerate()
            .filter(|(_, orig)| orig.is_none())
            .map(|(i, _)| NodeId::from_index(i))
    }
}

/// How many pieces a wire of length `length` (µm) must be cut into so each
/// piece is at most `max_segment` (µm) long. Zero-length wires stay whole.
pub fn piece_count(length: f64, max_segment: f64) -> usize {
    if length <= max_segment || length == 0.0 {
        1
    } else {
        (length / max_segment).ceil() as usize
    }
}

/// Splits every wire longer than `max_segment` microns into equal pieces
/// joined by feasible internal nodes, preserving total R, C and length of
/// every wire.
///
/// # Errors
///
/// Returns [`TreeError::NonPositiveQuantity`] if `max_segment` is not a
/// strictly positive finite number.
pub fn segment_wires(tree: &RoutingTree, max_segment: f64) -> Result<Segmented, TreeError> {
    check_positive("maximum segment length", max_segment)?;
    let mut builder = TreeBuilder::new(*tree.driver());
    // Map original node -> new node.
    let mut new_of = vec![None::<NodeId>; tree.len()];
    new_of[tree.source().index()] = Some(builder.source());
    let mut original = vec![Some(tree.source())];

    for v in tree.preorder() {
        if v == tree.source() {
            continue;
        }
        let parent = tree.parent(v).expect("non-source has parent");
        let wire = *tree.parent_wire(v).expect("non-source has wire");
        let mut attach_to = new_of[parent.index()].expect("parent visited in preorder");
        let pieces = piece_count(wire.length, max_segment);
        let piece = wire.split(pieces);
        for _ in 1..pieces {
            attach_to = builder.add_internal(attach_to, piece)?;
            original.push(None);
        }
        let id = match &tree.node(v).kind {
            NodeKind::Sink(s) => builder.add_sink(attach_to, piece, s.clone())?,
            NodeKind::Internal { feasible: true } => builder.add_internal(attach_to, piece)?,
            NodeKind::Internal { feasible: false } => {
                builder.add_infeasible_internal(attach_to, piece)?
            }
            NodeKind::Source(_) => unreachable!("only one source per tree"),
        };
        original.push(Some(v));
        new_of[v.index()] = Some(id);
    }
    let tree = builder.build()?;
    debug_assert_eq!(original.len(), tree.len());
    Ok(Segmented { tree, original })
}

/// Segments so that every original wire is cut into exactly
/// `pieces_per_wire` equal pieces regardless of length (useful for
/// quality/run-time sweeps).
///
/// # Errors
///
/// Returns [`TreeError::NonPositiveQuantity`] if `pieces_per_wire` is zero.
pub fn segment_uniform(tree: &RoutingTree, pieces_per_wire: usize) -> Result<Segmented, TreeError> {
    if pieces_per_wire == 0 {
        return Err(TreeError::NonPositiveQuantity {
            what: "pieces per wire",
            value: 0.0,
        });
    }
    let mut builder = TreeBuilder::new(*tree.driver());
    let mut new_of = vec![None::<NodeId>; tree.len()];
    new_of[tree.source().index()] = Some(builder.source());
    let mut original = vec![Some(tree.source())];

    for v in tree.preorder() {
        if v == tree.source() {
            continue;
        }
        let parent = tree.parent(v).expect("non-source has parent");
        let wire = *tree.parent_wire(v).expect("non-source has wire");
        let mut attach_to = new_of[parent.index()].expect("parent visited");
        let pieces = if wire.is_dummy() { 1 } else { pieces_per_wire };
        let piece = wire.split(pieces);
        for _ in 1..pieces {
            attach_to = builder.add_internal(attach_to, piece)?;
            original.push(None);
        }
        let id = match &tree.node(v).kind {
            NodeKind::Sink(s) => builder.add_sink(attach_to, piece, s.clone())?,
            NodeKind::Internal { feasible: true } => builder.add_internal(attach_to, piece)?,
            NodeKind::Internal { feasible: false } => {
                builder.add_infeasible_internal(attach_to, piece)?
            }
            NodeKind::Source(_) => unreachable!("only one source per tree"),
        };
        original.push(Some(v));
        new_of[v.index()] = Some(id);
    }
    let tree = builder.build()?;
    Ok(Segmented { tree, original })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elmore;
    use crate::node::{Driver, SinkSpec, Wire};

    fn long_two_pin(length: f64) -> RoutingTree {
        let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
        b.add_sink(
            b.source(),
            Wire::from_rc(length * 0.5, length * 0.2e-15, length),
            SinkSpec::new(10e-15, 1e-9, 0.8),
        )
        .expect("sink");
        b.build().expect("tree")
    }

    #[test]
    fn piece_count_boundaries() {
        assert_eq!(piece_count(0.0, 100.0), 1);
        assert_eq!(piece_count(100.0, 100.0), 1);
        assert_eq!(piece_count(100.1, 100.0), 2);
        assert_eq!(piece_count(1000.0, 100.0), 10);
        assert_eq!(piece_count(1001.0, 100.0), 11);
    }

    #[test]
    fn segmenting_preserves_totals() {
        let t = long_two_pin(4000.0);
        let seg = segment_wires(&t, 500.0).expect("segment");
        assert!((seg.tree.total_wire_length() - t.total_wire_length()).abs() < 1e-9);
        assert!((seg.tree.total_capacitance() - t.total_capacitance()).abs() < 1e-27);
        assert_eq!(seg.tree.len(), 2 + 7); // 8 pieces -> 7 new nodes
    }

    #[test]
    fn segmenting_preserves_elmore_delay_structure() {
        // Splitting a lumped-π wire into n lumped-π pieces changes Elmore
        // delay by a known amount: the distributed limit is R·C/2 + R·C_L.
        // What must be exactly preserved is total R, total C and therefore
        // the delay *formula per piece* summing to R(C/2n·(stuff)). Here we
        // check the segmented delay approaches the distributed value from
        // above and is monotone in the piece count.
        let t = long_two_pin(4000.0);
        let d1 = elmore::max_sink_delay(&t);
        let d4 = elmore::max_sink_delay(&segment_wires(&t, 1000.0).expect("seg").tree);
        let d16 = elmore::max_sink_delay(&segment_wires(&t, 250.0).expect("seg").tree);
        // For a single lumped π wire the Elmore source-to-sink delay is
        // identical regardless of segmentation (R/n sums telescope):
        // check numerically.
        assert!((d1 - d4).abs() / d1 < 1e-12);
        assert!((d1 - d16).abs() / d1 < 1e-12);
    }

    #[test]
    fn new_nodes_are_feasible_sites() {
        let t = long_two_pin(1000.0);
        let seg = segment_wires(&t, 100.0).expect("segment");
        for id in seg.new_nodes() {
            assert!(seg.tree.node(id).kind.is_feasible_site());
        }
        assert_eq!(seg.new_nodes().count(), 9);
    }

    #[test]
    fn short_wires_untouched() {
        let t = long_two_pin(50.0);
        let seg = segment_wires(&t, 100.0).expect("segment");
        assert_eq!(seg.tree.len(), t.len());
        assert_eq!(seg.new_nodes().count(), 0);
    }

    #[test]
    fn original_map_tracks_sinks() {
        let t = long_two_pin(1000.0);
        let sink = t.sinks()[0];
        let seg = segment_wires(&t, 300.0).expect("segment");
        let new_sink = seg.tree.sinks()[0];
        assert_eq!(seg.original[new_sink.index()], Some(sink));
    }

    #[test]
    fn uniform_segmentation_splits_every_wire() {
        let mut b = TreeBuilder::new(Driver::new(100.0, 0.0));
        let a = b
            .add_internal(b.source(), Wire::from_rc(10.0, 1e-15, 10.0))
            .expect("a");
        b.add_sink(
            a,
            Wire::from_rc(10.0, 1e-15, 10.0),
            SinkSpec::new(1e-15, 1e-9, 0.8),
        )
        .expect("s1");
        b.add_sink(
            a,
            Wire::from_rc(10.0, 1e-15, 10.0),
            SinkSpec::new(1e-15, 1e-9, 0.8),
        )
        .expect("s2");
        let t = b.build().expect("tree");
        let seg = segment_uniform(&t, 3).expect("segment");
        // 3 wires x 2 extra nodes each.
        assert_eq!(seg.tree.len(), t.len() + 6);
        assert!((seg.tree.total_wire_length() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_zero_pieces_rejected() {
        let t = long_two_pin(100.0);
        assert!(segment_uniform(&t, 0).is_err());
    }

    #[test]
    fn invalid_max_segment_rejected() {
        let t = long_two_pin(100.0);
        assert!(segment_wires(&t, 0.0).is_err());
        assert!(segment_wires(&t, f64::NAN).is_err());
        assert!(segment_wires(&t, -5.0).is_err());
    }

    #[test]
    fn segmented_tree_invariants_hold() {
        let t = long_two_pin(4000.0);
        let seg = segment_wires(&t, 333.0).expect("segment");
        assert!(seg.tree.check_invariants().is_empty());
    }
}
