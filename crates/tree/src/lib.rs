//! Routing-tree substrate for interconnect optimization.
//!
//! This crate provides the data structures and analyses that every algorithm
//! in the BuffOpt reproduction is built on:
//!
//! * [`RoutingTree`] — an arena-backed, binary routing tree with a unique
//!   source (driver), a set of sinks, and RC wires (Section II of the paper);
//! * [`elmore`] — downstream load capacitance (eq. 1), Elmore wire delay
//!   (eq. 2), linear gate delay (eq. 3), and source-to-sink path delay
//!   (eq. 4);
//! * [`slack`] — required-arrival-time propagation and the per-node timing
//!   slack `q(v) = min_{s ∈ SI(v)} (RAT(s) − Delay(v → s))` (eq. 5);
//! * [`segment`] — the Alpert–Devgan wire-segmenting preprocessing step that
//!   turns long wires into chains of candidate buffer sites;
//! * [`Technology`] — per-micron wire resistance/capacitance presets.
//!
//! # Conventions
//!
//! All electrical quantities are SI: ohms, farads, seconds, volts, amperes.
//! Geometric lengths are microns. Each non-source node `v` owns the unique
//! *parent wire* that connects it to its parent, so a wire is addressed by
//! the [`NodeId`] of its lower (child) endpoint.
//!
//! # Example
//!
//! ```
//! use buffopt_tree::{TreeBuilder, Driver, SinkSpec, Wire};
//!
//! # fn main() -> Result<(), buffopt_tree::TreeError> {
//! let mut b = TreeBuilder::new(Driver::new(100.0, 20.0e-12));
//! let mid = b.add_internal(b.source(), Wire::from_rc(500.0, 200.0e-15, 1000.0))?;
//! b.add_sink(mid, Wire::from_rc(250.0, 100.0e-15, 500.0),
//!            SinkSpec::new(50.0e-15, 1.0e-9, 0.8))?;
//! let tree = b.build()?;
//! let loads = buffopt_tree::elmore::downstream_capacitance(&tree);
//! assert!(loads[tree.source()] > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod display;
pub mod elmore;
mod error;
mod node;
pub mod segment;
pub mod slack;
mod technology;
mod tree;

pub use builder::TreeBuilder;
pub use display::render;
pub use error::TreeError;
pub use node::{Driver, Node, NodeId, NodeKind, SinkSpec, Wire};
pub use technology::Technology;
pub use tree::{Postorder, Preorder, RoutingTree};
