//! Reproducible memo-subsystem snapshot: cold vs memo-warm DP passes.
//!
//! Builds a deterministic perturbed-net-family workload (base nets from
//! the population generator, variants from `buffopt_workload::perturbed`
//! — sink-cap jitter, wire resegmenting, subtree grafts), then times a
//! full optimization pass over every tree with the structural subtree
//! memo off versus with a shared warm [`MemoTable`]. Writes one
//! machine-readable JSON file — `BENCH_memo.json` by default — with the
//! median pass times, the steady-state subtree hit rate, and the table
//! counters, and **fails** (nonzero exit) if the warm hit rate is not at
//! least 30 %, if any seeded solution deviates bitwise from its cold
//! twin, or if a small-budget table overruns its byte budget.
//!
//! Usage: `memo_snapshot [--quick] [--out PATH]`

use std::sync::Arc;
use std::time::Instant;

use buffopt::buffopt::{self as algo3, BuffOptOptions};
use buffopt::{MemoTable, RunBudget};
use buffopt_buffers::catalog;
use buffopt_noise::NoiseScenario;
use buffopt_tree::{segment, RoutingTree};
use buffopt_workload::{
    estimation_scenario, generate, perturbed_family, PerturbationConfig, SinkDistribution,
    WorkloadConfig,
};

struct Measured {
    median_ns: u64,
    min_ns: u64,
}

/// Medians over `samples` timed runs of `f` (no implicit warm-up; the
/// caller decides what state the first timed run sees).
fn measure(samples: usize, mut f: impl FnMut()) -> Measured {
    let mut times: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        f();
        times.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    times.sort_unstable();
    Measured {
        median_ns: times[times.len() / 2],
        min_ns: times[0],
    }
}

/// The perturbed-family workload: multi-sink bases (1-sink nets have no
/// merge points, so they never consult the memo) with a few local-edit
/// variants each, all segmented at the pipeline's default 500 µm pitch.
fn build_cases(quick: bool) -> (usize, Vec<(RoutingTree, NoiseScenario)>) {
    let wl = WorkloadConfig {
        net_count: 6,
        distribution: SinkDistribution {
            buckets: vec![(2, 4, 4), (5, 8, 2)],
        },
        ..WorkloadConfig::default()
    };
    let bases = generate(&wl);
    let pcfg = PerturbationConfig {
        variants: if quick { 3 } else { 4 },
        edits_per_variant: 2,
        ..PerturbationConfig::default()
    };
    let mut cases = Vec::new();
    for base in &bases {
        let mut family = vec![base.tree.clone()];
        family.extend(perturbed_family(&base.tree, &pcfg));
        for tree in family {
            let seg = segment::segment_wires(&tree, 500.0).expect("segment").tree;
            let scenario = estimation_scenario(&seg, &wl);
            cases.push((seg, scenario));
        }
    }
    (bases.len(), cases)
}

fn options(memo: Option<Arc<MemoTable>>) -> BuffOptOptions {
    BuffOptOptions {
        max_buffers: None,
        conservative_pruning: false,
        polarity_aware: false,
        budget: RunBudget::default(),
        memo,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_memo.json", |s| s.as_str());
    let samples = if quick { 5 } else { 31 };

    let lib = catalog::ibm_like();
    let (families, cases) = build_cases(quick);
    let family_pass = |memo: Option<&Arc<MemoTable>>| {
        for (tree, scenario) in &cases {
            // Infeasible nets participate too: the memo must replay the
            // error outcome identically, and its lookups still count.
            let _ = algo3::optimize(tree, scenario, &lib, &options(memo.cloned()));
        }
    };

    // Differential gate: every seeded solution is bitwise-equal to cold.
    let check_table = Arc::new(MemoTable::new(64 << 20, 8));
    family_pass(Some(&check_table)); // warm
    let mut optimized = 0usize;
    for (i, (tree, scenario)) in cases.iter().enumerate() {
        let cold = algo3::optimize(tree, scenario, &lib, &options(None));
        let seeded = algo3::optimize(
            tree,
            scenario,
            &lib,
            &options(Some(Arc::clone(&check_table))),
        );
        match (cold, seeded) {
            (Ok(c), Ok(s)) => {
                assert!(
                    c.slack.to_bits() == s.slack.to_bits()
                        && c.buffers == s.buffers
                        && c.cost.to_bits() == s.cost.to_bits()
                        && c.assignment.iter().collect::<Vec<_>>()
                            == s.assignment.iter().collect::<Vec<_>>(),
                    "case {i}: seeded solution deviates from cold"
                );
                optimized += 1;
            }
            (Err(ce), Err(se)) => assert_eq!(ce, se, "case {i}: seeded error deviates from cold"),
            _ => panic!("case {i}: cold and seeded runs disagree on success"),
        }
    }
    eprintln!(
        "{} trees across {families} families ({optimized} optimizable): seeded == cold bitwise",
        cases.len()
    );

    // Timing: cold (memo off) vs steady-state warm shared table.
    family_pass(None); // untimed warm-up for the allocator/caches
    let cold = measure(samples, || family_pass(None));
    let table = Arc::new(MemoTable::new(64 << 20, 8));
    family_pass(Some(&table)); // untimed warm-up populates the table
    let s0 = table.stats();
    let warm = measure(samples, || family_pass(Some(&table)));
    let s1 = table.stats();
    let lookups = (s1.hits - s0.hits) + (s1.misses - s0.misses);
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        (s1.hits - s0.hits) as f64 / lookups as f64
    };
    let speedup = cold.median_ns as f64 / warm.median_ns.max(1) as f64;
    eprintln!(
        "cold {:>9} ns/pass, warm {:>9} ns/pass ({speedup:.2}x), \
         hit rate {:.1}% ({} lookups), {} entries / {} bytes",
        cold.median_ns,
        warm.median_ns,
        hit_rate * 100.0,
        lookups,
        s1.entries,
        s1.bytes,
    );

    // Governor gate: a deliberately tiny table must stay within budget
    // (evicting, not growing) across repeated family passes.
    let tiny = Arc::new(MemoTable::new(256 << 10, 2));
    family_pass(Some(&tiny));
    family_pass(Some(&tiny));
    let ts = tiny.stats();
    let respected = ts.bytes <= ts.budget_bytes;
    eprintln!(
        "tiny table: {} bytes of {} budget ({} evictions) — {}",
        ts.bytes,
        ts.budget_bytes,
        ts.evictions,
        if respected { "respected" } else { "OVERRUN" }
    );

    let json = format!(
        "{{\"bench\":\"memo_snapshot\",\"mode\":\"{}\",\"samples\":{samples},\
         \"families\":{families},\"trees\":{},\"optimizable\":{optimized},\
         \"cold\":{{\"median_ns\":{},\"min_ns\":{}}},\
         \"warm\":{{\"median_ns\":{},\"min_ns\":{}}},\
         \"speedup\":{speedup:.3},\"hit_rate\":{hit_rate:.4},\
         \"warm_stats\":{{\"hits\":{},\"misses\":{},\"sig_conflicts\":{},\
         \"seeded_merges\":{},\"stores\":{},\"evictions\":{},\"bytes\":{},\
         \"entries\":{},\"budget_bytes\":{}}},\"bitwise_equal\":true,\
         \"small_budget\":{{\"budget_bytes\":{},\"bytes\":{},\
         \"evictions\":{},\"respected\":{respected}}}}}\n",
        if quick { "quick" } else { "full" },
        cases.len(),
        cold.median_ns,
        cold.min_ns,
        warm.median_ns,
        warm.min_ns,
        s1.hits,
        s1.misses,
        s1.sig_conflicts,
        s1.seeded,
        s1.stores,
        s1.evictions,
        s1.bytes,
        s1.entries,
        s1.budget_bytes,
        ts.budget_bytes,
        ts.bytes,
        ts.evictions,
    );
    std::fs::write(out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");

    if hit_rate < 0.30 {
        eprintln!(
            "FAIL: warm hit rate {:.1}% below the 30% floor",
            hit_rate * 100.0
        );
        std::process::exit(1);
    }
    if !respected {
        eprintln!("FAIL: small-budget table overran its byte budget");
        std::process::exit(1);
    }
}
