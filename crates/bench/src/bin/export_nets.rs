//! Exports the synthetic population as `.net` files for `buffopt-cli`,
//! turning the workload into a file-based benchmark suite.
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin export_nets -- OUT_DIR [COUNT]
//! ```

use buffopt_netlist::{write, ParsedNet};
use buffopt_workload::{estimation_scenario, generate, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let out_dir = args.next().unwrap_or_else(|| "nets".to_string());
    let count: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);
    let cfg = WorkloadConfig {
        net_count: count,
        ..WorkloadConfig::default()
    };
    std::fs::create_dir_all(&out_dir)?;
    let nets = generate(&cfg);
    for net in &nets {
        let scenario = estimation_scenario(&net.tree, &cfg);
        let parsed = ParsedNet {
            name: Some(format!("net{:03}", net.id)),
            node_names: net
                .tree
                .node_ids()
                .map(|v| {
                    if v == net.tree.source() {
                        Some("source".to_string())
                    } else {
                        Some(format!("n{}", v.index()))
                    }
                })
                .collect(),
            tree: net.tree.clone(),
            scenario,
        };
        let path = format!("{out_dir}/net{:03}.net", net.id);
        std::fs::write(&path, write(&parsed))?;
    }
    println!(
        "wrote {} nets to {out_dir}/ — try: buffopt-cli {out_dir}/net000.net --verify",
        nets.len()
    );
    Ok(())
}
