//! Fig. 3 — the worked noise-computation example: a driver, a branch
//! node, and two sinks; the harness prints the downstream currents
//! (eq. 7), per-wire noise (eq. 8) and sink noise (eq. 9) step by step.
//! The same instance is locked down as a hand-computed unit test in
//! `buffopt-noise`.
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin fig3
//! ```

use buffopt_noise::{metric, NoiseScenario};
use buffopt_tree::{Driver, SinkSpec, TreeBuilder, Wire};

fn main() {
    let r_so = 50.0;
    let mut b = TreeBuilder::new(Driver::new(r_so, 0.0));
    let a = b
        .add_internal(b.source(), Wire::from_rc(100.0, 100.0e-15, 500.0))
        .expect("a");
    let s1 = b
        .add_sink(
            a,
            Wire::from_rc(80.0, 60.0e-15, 300.0),
            SinkSpec::new(5e-15, 1e-9, 0.8),
        )
        .expect("s1");
    let s2 = b
        .add_sink(
            a,
            Wire::from_rc(120.0, 40.0e-15, 200.0),
            SinkSpec::new(5e-15, 1e-9, 0.6),
        )
        .expect("s2");
    let tree = b.build().expect("tree");
    let factor = 1.0e9; // λ·µ chosen so each wire's current is 1e9 · C_w
    let mut scenario = NoiseScenario::quiet(&tree);
    for v in [a, s1, s2] {
        scenario.set_factor(v, factor);
    }

    println!("Fig. 3: example noise computation (driver so, branch a, sinks s1 s2)");
    let currents = metric::downstream_current(&tree, &scenario);
    println!("eq. 7  downstream currents:");
    println!("  I(s1) = {:.1} uA", currents[s1.index()] * 1e6);
    println!("  I(s2) = {:.1} uA", currents[s2.index()] * 1e6);
    println!("  I(a)  = {:.1} uA", currents[a.index()] * 1e6);
    println!("  I(so) = {:.1} uA", currents[tree.source().index()] * 1e6);
    println!("eq. 8  per-wire noise:");
    for (name, v) in [("w1 = (so,a)", a), ("w2 = (a,s1)", s1), ("w3 = (a,s2)", s2)] {
        println!(
            "  Noise({name}) = {:.2} mV",
            metric::wire_noise(&tree, &scenario, v, &currents).expect("tables match") * 1e3
        );
    }
    println!("eq. 9  sink noise from the driver (Rso = {r_so} ohm):");
    for sn in metric::sink_noise(&tree, &scenario) {
        println!(
            "  Noise(so -> {}) = {:.2} mV (margin {:.0} mV, {})",
            sn.sink,
            sn.noise * 1e3,
            sn.margin * 1e3,
            if sn.is_violation() { "VIOLATION" } else { "ok" }
        );
    }
    let ns = metric::noise_slack(&tree, &scenario);
    println!("eq. 12 noise slacks:");
    println!("  NS(a)  = {:.4} V", ns[a.index()]);
    println!("  NS(so) = {:.4} V", ns[tree.source().index()]);
}
