//! Worker-pool throughput: batch wall time vs `--jobs`, plus the
//! solution cache's effect on a repeated batch.
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin throughput [-- NETS [JOBS...]]
//! ```
//!
//! Runs the same prepared batch through engines with increasing pool
//! sizes (default 1, 2, 4) and reports wall time and speedup over the
//! serial engine, then re-submits the batch to a warm cache. Per-net
//! results are checked identical across pool sizes (modulo measured
//! wall times), so the table measures the pool, not noise in the work.
//! Speedups track the machine's actual core count — on a single-core
//! host every row lands near 1.0×.

use std::time::Instant;

use buffopt_bench::{prepare, ExperimentSetup};
use buffopt_pipeline::{NetInput, PipelineConfig};
use buffopt_server::{Engine, EngineOptions, Job};

fn normalize_wall(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    let mut rest = jsonl;
    while let Some(at) = rest.find("\"wall_ms\":") {
        let after = at + "\"wall_ms\":".len();
        out.push_str(&rest[..after]);
        out.push('X');
        rest = rest[after..]
            .trim_start_matches(|c: char| c.is_ascii_digit() || matches!(c, '.' | 'e' | '-' | '+'));
    }
    out.push_str(rest);
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let nets: usize = args
        .next()
        .map(|v| v.parse().expect("NETS is a number"))
        .unwrap_or(100);
    let pool_sizes: Vec<usize> = {
        let rest: Vec<usize> = args.map(|v| v.parse().expect("JOBS is a number")).collect();
        if rest.is_empty() {
            vec![1, 2, 4]
        } else {
            rest
        }
    };

    let mut setup = ExperimentSetup::default();
    setup.config.net_count = nets;
    let prepared = prepare(&setup).expect("population prepares");
    println!(
        "throughput: {} nets, pools {:?}, {} cores available",
        prepared.len(),
        pool_sizes,
        buffopt_server::default_jobs()
    );

    let batch = || -> Vec<Job> {
        prepared
            .iter()
            .map(|n| Job {
                input: NetInput::Parsed {
                    name: format!("net{}", n.id),
                    tree: n.tree.clone(),
                    scenario: n.scenario.clone(),
                },
                cache_key: None,
            })
            .collect()
    };
    let cfg = || PipelineConfig {
        max_segment: None, // `prepare` already segmented the trees
        ..PipelineConfig::new(setup.library.clone())
    };

    println!("{:>6} {:>10} {:>8}", "jobs", "wall", "speedup");
    let mut serial_wall = None;
    let mut reference: Option<String> = None;
    for &jobs in &pool_sizes {
        let engine = Engine::new(
            cfg(),
            EngineOptions {
                jobs,
                cache_capacity: 0,
                ..EngineOptions::default()
            },
        );
        let report = engine.run_jobs(batch());
        let wall = report.wall;
        let base = *serial_wall.get_or_insert(wall);
        println!(
            "{:>6} {:>9.2}s {:>7.2}x",
            jobs,
            wall.as_secs_f64(),
            base.as_secs_f64() / wall.as_secs_f64()
        );
        let normalized = normalize_wall(&report.to_jsonl());
        match &reference {
            None => reference = Some(normalized),
            Some(r) => assert_eq!(*r, normalized, "records must not depend on the pool size"),
        }
    }

    // Cache effect: the same batch twice against one engine, keyed.
    let engine = Engine::new(
        cfg(),
        EngineOptions {
            jobs: *pool_sizes.last().expect("non-empty"),
            cache_capacity: 2 * nets,
            ..EngineOptions::default()
        },
    );
    let keyed = || -> Vec<Job> {
        batch()
            .into_iter()
            .map(|j| Job {
                cache_key: Some(engine.key_for(j.input.name(), "throughput-body")),
                input: j.input,
            })
            .collect()
    };
    let cold_t = Instant::now();
    let cold = engine.run_jobs(keyed());
    let cold_wall = cold_t.elapsed();
    let warm_t = Instant::now();
    let warm = engine.run_jobs(keyed());
    let warm_wall = warm_t.elapsed();
    assert_eq!(cold.to_jsonl(), warm.to_jsonl(), "hits replay records");
    let stats = engine.metrics_snapshot();
    println!(
        "cache: cold {:.2}s, warm {:.3}s ({:.0}x), {} hits / {} misses",
        cold_wall.as_secs_f64(),
        warm_wall.as_secs_f64(),
        cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9),
        stats.cache.hits,
        stats.cache.misses,
    );
}
