//! Serving saturation snapshot: the sharded epoll reactor under
//! connection-count sweeps, against the thread-per-connection baseline.
//!
//! Spawns the server as a child process (its own fd budget — the 10k+
//! tiers need ~10k sockets on each side of the loopback), ramps N
//! concurrent connections with a nonblocking `buffopt-netpoll` client
//! loop, and drives two waves per tier:
//!
//! * **hot** — every connection asks for the same (primed) net, so each
//!   response is a solution-cache hit and the measured latency is the
//!   serving stack itself: accept fan-out, shard event loops, responder
//!   hand-off, write backpressure. p50/p99/p999 and throughput per tier.
//! * **cold** — every connection asks for a distinct net, flooding the
//!   engines' bounded admission queue: the shed-rate curve (typed
//!   `overloaded` refusals / total) per tier, the degrade-under-overload
//!   contract at the TCP layer.
//!
//! A `comparison` section reruns the hot wave at the comparison tier
//! against the legacy threaded front end **in the same run** and gates
//! the reactor's p99 against it (`--max-ratio`, default 1.25): the
//! re-platform must not cost tail latency. `--gate BASELINE` furthermore
//! compares that ratio against a committed snapshot (tolerance
//! `--gate-tolerance-pct`, default 75%) so drift shows up in CI without
//! punishing slower machines — both front ends share the hardware, so
//! the ratio is portable where raw microseconds are not.
//!
//! Usage: `serve_snapshot [--quick] [--out PATH] [--max-ratio R]
//!                        [--gate BASELINE] [--gate-tolerance-pct P]`
//!
//! The full sweep (default) runs tiers 64–10240; `--quick` stops at
//! 1024 (CI smoke). Writes `BENCH_serve.json` by default.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use buffopt_netlist::{parse, write as write_net, ParsedNet};
use buffopt_netpoll::{
    set_nonblocking, Event, FillOutcome, FlushOutcome, Interest, Poller, RecvBuf, SendBuf, TakeLine,
};
use buffopt_pipeline::{NetInput, PipelineConfig};
use buffopt_server::{
    serve_sharded, serve_threaded, Engine, EngineOptions, NetDecoder, ServeOptions,
};
use buffopt_workload::{adversarial, WorkloadConfig};

/// Request-line cap mirrored on the client's receive side.
const MAX_LINE: usize = 1 << 20;
/// Hard wall per wave; a stuck wave fails the snapshot instead of
/// hanging CI.
const WAVE_DEADLINE: Duration = Duration::from_secs(300);
/// Connections per ramp burst (the listener backlog is finite; bursting
/// past it would throw the client into SYN-retransmit stalls).
const RAMP_BURST: usize = 256;

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        max_tree_nodes: Some(70),
        time_limit: Some(Duration::from_secs(60)),
        ..PipelineConfig::new(buffopt_buffers::catalog::ibm_like())
    }
}

fn decoder() -> NetDecoder {
    Arc::new(|name: &str, body: &str| match parse(body) {
        Ok(net) => NetInput::Parsed {
            name: name.to_string(),
            tree: net.tree,
            scenario: net.scenario,
        },
        Err(e) => NetInput::Failed {
            name: name.to_string(),
            error: e.to_string(),
        },
    })
}

/// The one healthy net every request carries (deterministic).
fn net_text_escaped() -> String {
    let (tree, scenario) = adversarial::valid_net(&WorkloadConfig::default());
    let node_names = (0..tree.len()).map(|_| None).collect();
    let text = write_net(&ParsedNet {
        name: None,
        tree,
        scenario,
        node_names,
    });
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn request(id: &str, escaped_net: &str) -> String {
    format!("{{\"id\":\"{id}\",\"net\":\"{escaped_net}\"}}\n")
}

// ---------------------------------------------------------------------
// Child-process server (--server): its own pid, its own fd budget.
// ---------------------------------------------------------------------

fn run_server(mode: &str, shards: usize, jobs: usize, queue_depth: usize) -> ! {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    println!("listening on {addr}");
    std::io::stdout().flush().expect("flush");
    let mk = || {
        Arc::new(Engine::new(
            pipeline_config(),
            EngineOptions {
                jobs,
                queue_depth,
                ..EngineOptions::default()
            },
        ))
    };
    let opts = ServeOptions::default();
    let result = match mode {
        "threaded" => serve_threaded(listener, mk(), decoder(), opts),
        _ => serve_sharded(
            listener,
            (0..shards).map(|_| mk()).collect(),
            decoder(),
            opts,
        ),
    };
    result.expect("serve runs");
    std::process::exit(0)
}

fn spawn_server(mode: &str, shards: usize, jobs: usize, queue_depth: usize) -> (Child, SocketAddr) {
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .args([
            "--server",
            "--mode",
            mode,
            "--shards",
            &shards.to_string(),
            "--jobs",
            &jobs.to_string(),
            "--queue-depth",
            &queue_depth.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn server child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("listening prefix")
        .parse()
        .expect("socket addr");
    (child, addr)
}

fn shutdown_server(addr: SocketAddr, mut child: Child) {
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    stream
        .write_all(b"{\"cmd\":\"shutdown\"}\n")
        .expect("send shutdown");
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack).expect("ack");
    assert_eq!(ack.trim_end(), "{\"ok\":\"shutdown\"}", "shutdown ack");
    let status = child.wait().expect("child exits");
    assert!(status.success(), "server child exited cleanly");
}

/// One blocking round-trip: primes the solution cache so hot waves are
/// pure cache-hit serving.
fn prime(addr: SocketAddr, req: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect for prime");
    stream.write_all(req.as_bytes()).expect("send prime");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("primed");
    assert!(
        line.contains("\"outcome\":\"optimized\""),
        "prime failed: {line}"
    );
}

// ---------------------------------------------------------------------
// Nonblocking client driver.
// ---------------------------------------------------------------------

/// Per-connection wave state; the `TcpStream` itself stays in the
/// caller's slab (no `try_clone` — at 10k+ connections a cloned fd per
/// stream would double the descriptor bill).
struct ClientConn {
    recv: RecvBuf,
    send: SendBuf,
    issued: Instant,
    done: bool,
}

struct WaveResult {
    n: usize,
    served: usize,
    shed: usize,
    errors: usize,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    wall_ms: f64,
    throughput_rps: f64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Opens `n` connections, bursting below the listener backlog.
fn ramp(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    let mut conns = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && i % RAMP_BURST == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stream = TcpStream::connect(addr).expect("ramp connect");
        set_nonblocking(stream.as_raw_fd(), true).expect("nonblocking");
        conns.push(stream);
    }
    conns
}

/// Sends one request per connection and collects every response,
/// entirely readiness-driven.
fn run_wave(conns: &mut [TcpStream], requests: &[String]) -> WaveResult {
    assert_eq!(conns.len(), requests.len());
    let poller = Poller::new().expect("poller");
    let started = Instant::now();
    let mut clients: Vec<ClientConn> = requests
        .iter()
        .map(|req| {
            let mut send = SendBuf::new();
            send.queue(req.as_bytes());
            ClientConn {
                recv: RecvBuf::new(),
                send,
                issued: Instant::now(),
                done: false,
            }
        })
        .collect();
    for (i, stream) in conns.iter().enumerate() {
        poller
            .register(stream.as_raw_fd(), i as u64, Interest::BOTH)
            .expect("register");
    }

    let mut latencies: Vec<u64> = Vec::with_capacity(clients.len());
    let mut served = 0usize;
    let mut shed = 0usize;
    let mut errors = 0usize;
    let mut done = 0usize;
    let mut events: Vec<Event> = Vec::new();
    while done < clients.len() {
        assert!(
            started.elapsed() < WAVE_DEADLINE,
            "wave stuck: {done}/{} responses after {WAVE_DEADLINE:?}",
            clients.len()
        );
        poller
            .wait(&mut events, 1024, Some(Duration::from_millis(100)))
            .expect("wait");
        for ev in &events {
            let idx = ev.token as usize;
            let c = &mut clients[idx];
            let stream = &mut conns[idx];
            if c.done {
                continue;
            }
            if ev.error {
                let _ = poller.deregister(stream.as_raw_fd());
                c.done = true;
                errors += 1;
                done += 1;
                continue;
            }
            if ev.writable && !c.send.is_empty() {
                match c.send.flush_to(stream) {
                    FlushOutcome::Closed => {
                        let _ = poller.deregister(stream.as_raw_fd());
                        c.done = true;
                        errors += 1;
                        done += 1;
                        continue;
                    }
                    FlushOutcome::Done => {
                        poller
                            .modify(stream.as_raw_fd(), ev.token, Interest::READ)
                            .expect("modify");
                    }
                    FlushOutcome::Pending => {}
                }
            }
            if ev.readable || ev.rdhup || ev.hup {
                let outcome = c.recv.fill_from(stream, MAX_LINE + 4096);
                let at_eof = matches!(outcome, Err(_) | Ok(FillOutcome::Eof));
                if let TakeLine::Line(line) = c.recv.take_line(MAX_LINE) {
                    latencies.push(c.issued.elapsed().as_micros() as u64);
                    if line.starts_with(b"{\"error\":\"overloaded\"") {
                        shed += 1;
                    } else {
                        served += 1;
                    }
                    let _ = poller.deregister(stream.as_raw_fd());
                    c.done = true;
                    done += 1;
                } else if at_eof {
                    // EOF before a full line: the server cut us off.
                    let _ = poller.deregister(stream.as_raw_fd());
                    c.done = true;
                    errors += 1;
                    done += 1;
                }
            }
        }
    }
    let wall = started.elapsed();
    latencies.sort_unstable();
    WaveResult {
        n: clients.len(),
        served,
        shed,
        errors,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: if wall.as_secs_f64() > 0.0 {
            latencies.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
    }
}

fn wave_json(w: &WaveResult) -> String {
    format!(
        "{{\"n\":{},\"served\":{},\"shed\":{},\"errors\":{},\"shed_rate\":{:.4},\
         \"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"wall_ms\":{:.1},\
         \"throughput_rps\":{:.0}}}",
        w.n,
        w.served,
        w.shed,
        w.errors,
        w.shed as f64 / w.n.max(1) as f64,
        w.p50_us,
        w.p99_us,
        w.p999_us,
        w.wall_ms,
        w.throughput_rps,
    )
}

/// Hot wave (primed id, cache hits) and optionally the cold wave
/// (distinct ids, admission flood) at one connection count.
fn run_tier(
    addr: SocketAddr,
    conns_n: usize,
    tier_tag: &str,
    escaped: &str,
    with_cold: bool,
) -> (WaveResult, Option<WaveResult>) {
    let mut conns = ramp(addr, conns_n);
    let hot_reqs: Vec<String> = (0..conns_n).map(|_| request("hot", escaped)).collect();
    let hot = run_wave(&mut conns, &hot_reqs);
    let cold = if with_cold {
        let cold_reqs: Vec<String> = (0..conns_n)
            .map(|i| request(&format!("cold-{tier_tag}-{i}"), escaped))
            .collect();
        Some(run_wave(&mut conns, &cold_reqs))
    } else {
        None
    };
    (hot, cold)
}

/// Pulls `"ratio":<float>` out of a committed snapshot's comparison
/// section without a JSON parser.
fn baseline_ratio(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let comparison = text.find("\"comparison\"")?;
    let tail = &text[comparison..];
    let key = tail.find("\"ratio\":")?;
    let after = &tail[key + "\"ratio\":".len()..];
    let end = after
        .find(|ch: char| ch != '.' && ch != '-' && !ch.is_ascii_digit())
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut server_mode = false;
    let mut mode = "reactor".to_string();
    let mut shards = 2usize;
    let mut jobs = 1usize;
    let mut queue_depth = 64usize;
    let mut quick = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut max_ratio = 1.25f64;
    let mut gate: Option<String> = None;
    let mut gate_tolerance_pct = 75.0f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--server" => server_mode = true,
            "--mode" => mode = args.next().expect("--mode value"),
            "--shards" => shards = args.next().expect("--shards value").parse().expect("usize"),
            "--jobs" => jobs = args.next().expect("--jobs value").parse().expect("usize"),
            "--queue-depth" => {
                queue_depth = args
                    .next()
                    .expect("--queue-depth value")
                    .parse()
                    .expect("usize")
            }
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out value"),
            "--max-ratio" => {
                max_ratio = args
                    .next()
                    .expect("--max-ratio value")
                    .parse()
                    .expect("float")
            }
            "--gate" => gate = Some(args.next().expect("--gate value")),
            "--gate-tolerance-pct" => {
                gate_tolerance_pct = args
                    .next()
                    .expect("--gate-tolerance-pct value")
                    .parse()
                    .expect("float")
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if server_mode {
        run_server(&mode, shards, jobs, queue_depth);
    }

    let tiers: &[usize] = if quick {
        &[64, 256, 1024]
    } else {
        &[64, 256, 1024, 4096, 10240]
    };
    let comparison_tier = 1024usize;
    let escaped = net_text_escaped();

    // --- The reactor sweep ---
    let (child, addr) = spawn_server("reactor", shards, jobs, queue_depth);
    prime(addr, &request("hot", &escaped));
    let mut tier_rows = Vec::new();
    let mut reactor_cmp_p99 = 0u64;
    for &n in tiers {
        eprintln!("reactor tier {n} ...");
        let (hot, cold) = run_tier(addr, n, &format!("r{n}"), &escaped, true);
        assert_eq!(hot.errors, 0, "hot wave at {n} conns had socket errors");
        assert_eq!(
            hot.shed, 0,
            "hot wave at {n} conns was shed; cache-hit serving must not touch admission"
        );
        if n == comparison_tier {
            reactor_cmp_p99 = hot.p99_us;
        }
        eprintln!(
            "  hot p50/p99/p999 {}/{}/{} us, {:.0} rps; cold shed {}/{}",
            hot.p50_us,
            hot.p99_us,
            hot.p999_us,
            hot.throughput_rps,
            cold.as_ref().map_or(0, |c| c.shed),
            n
        );
        tier_rows.push(format!(
            "    {{\"conns\":{n},\"hot\":{},\"cold\":{}}}",
            wave_json(&hot),
            wave_json(cold.as_ref().expect("cold wave ran")),
        ));
    }
    shutdown_server(addr, child);

    // --- The threaded baseline at the comparison tier, same run ---
    eprintln!("threaded comparison tier {comparison_tier} ...");
    let (child, addr) = spawn_server("threaded", 1, jobs, queue_depth);
    prime(addr, &request("hot", &escaped));
    let (threaded_hot, _) = run_tier(addr, comparison_tier, "t", &escaped, false);
    shutdown_server(addr, child);
    assert_eq!(
        threaded_hot.errors, 0,
        "threaded hot wave had socket errors"
    );

    let ratio = reactor_cmp_p99 as f64 / threaded_hot.p99_us.max(1) as f64;
    eprintln!(
        "comparison at {comparison_tier} conns: reactor p99 {} us, threaded p99 {} us, ratio {:.3}",
        reactor_cmp_p99, threaded_hot.p99_us, ratio
    );

    let json = format!(
        "{{\n  \"meta\":{{\"quick\":{quick},\"shards\":{shards},\"jobs\":{jobs},\
         \"queue_depth\":{queue_depth}}},\n  \"tiers\":[\n{}\n  ],\n  \
         \"comparison\":{{\"conns\":{comparison_tier},\"reactor_p99_us\":{reactor_cmp_p99},\
         \"threaded_p99_us\":{},\"threaded_hot\":{},\"ratio\":{ratio:.4}}}\n}}\n",
        tier_rows.join(",\n"),
        threaded_hot.p99_us,
        wave_json(&threaded_hot),
    );
    std::fs::write(&out, &json).expect("write snapshot");
    eprintln!("wrote {out}");

    let mut failed = false;
    if ratio > max_ratio {
        eprintln!(
            "GATE: reactor p99 is {ratio:.3}x the threaded baseline at \
             {comparison_tier} conns (max allowed {max_ratio})"
        );
        failed = true;
    }
    if let Some(path) = gate {
        match baseline_ratio(&path) {
            Some(base) => {
                let limit = base * (1.0 + gate_tolerance_pct / 100.0);
                if ratio > limit {
                    eprintln!(
                        "GATE: p99 ratio {ratio:.3} drifted past the committed \
                         baseline {base:.3} by more than {gate_tolerance_pct}% \
                         (limit {limit:.3})"
                    );
                    failed = true;
                } else {
                    eprintln!(
                        "gate ok: ratio {ratio:.3} within {gate_tolerance_pct}% of \
                         committed {base:.3}"
                    );
                }
            }
            None => {
                eprintln!("GATE: no comparison ratio found in {path}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
