//! Fig. 2 — wire segmenting against multiple aggressor nets: a two-pin
//! victim whose span is cut into pieces so each piece couples to either
//! zero, one, or two of four aggressors; the harness prints the per-piece
//! injected currents and the resulting sink noise.
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin fig2
//! ```

use buffopt_noise::{metric, Aggressor, NoiseScenario};
use buffopt_tree::{Driver, SinkSpec, Technology, TreeBuilder};

fn main() {
    // Victim of 9 pieces (paper Fig. 2 cuts a single wire into nine);
    // aggressors A1..A4 each couple to a contiguous run of pieces.
    let tech = Technology::global_layer();
    let piece = 500.0;
    let mut b = TreeBuilder::new(Driver::new(250.0, 0.0));
    let mut nodes = Vec::new();
    let mut parent = b.source();
    for i in 0..9 {
        if i < 8 {
            parent = b.add_internal(parent, tech.wire(piece)).expect("segment");
        } else {
            parent = b
                .add_sink(parent, tech.wire(piece), SinkSpec::new(20e-15, 1e-9, 0.8))
                .expect("sink");
        }
        nodes.push(parent);
    }
    let tree = b.build().expect("tree");

    // Aggressor spans over piece indices, with distinct slopes.
    let aggressors = [
        ("A1", 0..3, Aggressor::from_rise_time(0.6, 1.8, 0.3e-9)),
        ("A2", 2..5, Aggressor::from_rise_time(0.5, 1.8, 0.25e-9)),
        ("A3", 4..7, Aggressor::from_rise_time(0.7, 1.8, 0.2e-9)),
        ("A4", 6..9, Aggressor::from_rise_time(0.4, 1.8, 0.35e-9)),
    ];
    let per_wire: Vec<(buffopt_tree::NodeId, Vec<Aggressor>)> = nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let list = aggressors
                .iter()
                .filter(|(_, span, _)| span.contains(&i))
                .map(|&(_, _, a)| a)
                .collect();
            (n, list)
        })
        .collect();
    let scenario = NoiseScenario::from_aggressors(&tree, per_wire.clone());

    println!("Fig. 2: wire segmenting for multiple aggressor nets");
    println!(
        "{:<8} {:<22} {:>14}",
        "piece", "coupled aggressors", "I_w (uA)"
    );
    for (i, (n, _)) in per_wire.iter().enumerate() {
        let names: Vec<&str> = aggressors
            .iter()
            .filter(|(_, span, _)| span.contains(&i))
            .map(|&(name, _, _)| name)
            .collect();
        let iw = scenario.wire_current(&tree, *n) * 1e6;
        println!(
            "{:<8} {:<22} {:>14.2}",
            i,
            if names.is_empty() {
                "(quiet)".to_string()
            } else {
                names.join("+")
            },
            iw
        );
    }
    let noise = metric::sink_noise(&tree, &scenario);
    println!();
    println!(
        "sink noise (Devgan metric): {:.1} mV against an 800 mV margin ({})",
        noise[0].noise * 1e3,
        if noise[0].is_violation() {
            "VIOLATION"
        } else {
            "ok"
        }
    );

    // Cross-check with the transient referee, each aggressor on its own
    // rail (simultaneous switching = the metric's worst case).
    use buffopt_sim::referee::{stage_peak_noise_with_aggressors, RefereeOptions, TimedAggressor};
    let timed: Vec<_> = per_wire
        .iter()
        .enumerate()
        .map(|(i, (n, _))| {
            let list = aggressors
                .iter()
                .filter(|(_, span, _)| span.contains(&i))
                .map(|&(_, _, a)| TimedAggressor {
                    coupling_ratio: a.coupling_ratio,
                    slope: a.slope,
                    start: 0.0,
                })
                .collect::<Vec<_>>();
            (*n, list)
        })
        .collect();
    let sink = tree.sinks()[0];
    let m = stage_peak_noise_with_aggressors(
        &tree,
        &timed,
        tree.source(),
        tree.driver().resistance,
        &[(sink, 20e-15)],
        &RefereeOptions::default(),
    )
    .expect("grounded stage");
    println!(
        "sink noise (transient sim):  {:.1} mV, half-peak width {:.0} ps",
        m[0].peak * 1e3,
        m[0].width_at_half_peak * 1e12
    );
}
