//! Table III — noise-avoidance comparison of BuffOpt vs DelayOpt(k):
//! remaining metric violations, nets-by-buffer-count histogram, total
//! buffers, CPU time.
//!
//! Paper shape: DelayOpt(4) inserts far more buffers than BuffOpt yet
//! leaves violations; BuffOpt leaves none and is *faster* than
//! DelayOpt(k ≥ 3) because noise pruning shrinks its candidate lists.
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin table3
//! ```

use buffopt_bench::{
    metric_violations, prepare, run_buffopt, run_delayopt_k, secs, ExperimentSetup, RunOutcome,
};

fn row(
    name: &str,
    nets: &[buffopt_bench::PreparedNet],
    lib: &buffopt_buffers::BufferLibrary,
    run: &RunOutcome,
) {
    let violations = metric_violations(nets, lib, &run.solutions);
    let (hist, total) = run.buffer_histogram();
    println!(
        "{:<12} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
        name,
        violations,
        hist[0],
        hist[1],
        hist[2],
        hist[3],
        hist[4],
        total,
        secs(run.cpu)
    );
}

fn main() -> std::process::ExitCode {
    let setup = ExperimentSetup::default();
    eprintln!("preparing {} nets ...", setup.config.net_count);
    let nets = match prepare(&setup) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("population preparation failed: {e}");
            return std::process::ExitCode::from(3);
        }
    };

    println!("Table III: BuffOpt vs DelayOpt(k) noise avoidance");
    println!(
        "{:<12} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
        "algorithm", "violations", "0 buf", "1 buf", "2 buf", "3 buf", "4+ buf", "total", "cpu(s)"
    );

    eprintln!("running BuffOpt ...");
    let b = run_buffopt(&nets, &setup.library);
    row("BuffOpt", &nets, &setup.library, &b);

    for k in 1..=4 {
        eprintln!("running DelayOpt({k}) ...");
        let d = run_delayopt_k(&nets, &setup.library, k);
        row(&format!("DelayOpt({k})"), &nets, &setup.library, &d);
    }

    println!();
    println!(
        "violations = nets with at least one Devgan-metric violation after \
         insertion (unbuffered nets that violate count for DelayOpt rows \
         whenever delay optimization left them noisy)"
    );
    std::process::ExitCode::SUCCESS
}
