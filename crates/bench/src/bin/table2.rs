//! Table II — noise violations reported by the detailed analysis
//! (transient-simulation referee, the 3dnoise substitute) before and
//! after running BuffOpt, compared with the conservative Devgan metric.
//!
//! Paper values: metric 423, 3dnoise-before 386, 3dnoise-after 0.
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin table2
//! ```

use std::process::ExitCode;

use buffopt_bench::{
    metric_violations, prepare, referee_violations, run_buffopt, secs, ExperimentSetup,
};
use buffopt_sim::RefereeOptions;

fn main() -> ExitCode {
    let setup = ExperimentSetup::default();
    eprintln!("preparing {} nets ...", setup.config.net_count);
    let nets = match prepare(&setup) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("population preparation failed: {e}");
            return ExitCode::from(3);
        }
    };
    let none = vec![None; nets.len()];

    eprintln!("metric analysis (unbuffered) ...");
    let metric_before = metric_violations(&nets, &setup.library, &none);

    let ref_opts = RefereeOptions::default();
    eprintln!("simulation referee (unbuffered) ...");
    let sim_before = referee_violations(&nets, &setup.library, &none, &ref_opts);

    eprintln!("running BuffOpt ...");
    let run = run_buffopt(&nets, &setup.library);
    let unsolved = run.solutions.iter().filter(|s| s.is_none()).count();

    eprintln!("metric analysis (buffered) ...");
    let metric_after = metric_violations(&nets, &setup.library, &run.solutions);
    eprintln!("simulation referee (buffered) ...");
    let sim_after = referee_violations(&nets, &setup.library, &run.solutions, &ref_opts);

    println!("Table II: noise violations before and after BuffOpt");
    println!("{:<38} {:>8} {:>8}", "analysis", "before", "after");
    println!(
        "{:<38} {:>8} {:>8}",
        "Devgan metric (BuffOpt's own)", metric_before, metric_after
    );
    println!(
        "{:<38} {:>8} {:>8}",
        "simulation referee (3dnoise substitute)", sim_before, sim_after
    );
    println!();
    println!(
        "metric flags {} more nets than the referee: the metric is a \
         conservative upper bound",
        metric_before.saturating_sub(sim_before)
    );
    println!(
        "BuffOpt solved {} / {} nets in {} s ({} unsolved)",
        nets.len() - unsolved,
        nets.len(),
        secs(run.cpu),
        unsolved
    );
    ExitCode::SUCCESS
}
