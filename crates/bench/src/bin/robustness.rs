//! Seed-robustness sweep: the headline numbers of Tables II–IV are a
//! property of the population *distribution*, not of one seed. This
//! harness re-runs the core experiment (metric violations before/after
//! BuffOpt, buffer totals, delay penalty) across several seeds.
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin robustness [SEEDS]
//! ```

use buffopt::delayopt::{self, DelayOptOptions};
use buffopt::Assignment;
use buffopt_bench::{audited_max_delay, metric_violations, prepare, run_buffopt, ExperimentSetup};

fn main() -> std::process::ExitCode {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("robustness sweep over {seeds} seeds (500 nets each)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12}",
        "seed", "violating", "after", "buffers", "penalty"
    );
    for k in 0..seeds {
        let mut setup = ExperimentSetup::default();
        setup.config.seed = setup.config.seed.wrapping_add(k.wrapping_mul(0x9E37_79B9));
        let nets = match prepare(&setup) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("population preparation failed: {e}");
                return std::process::ExitCode::from(3);
            }
        };
        let none = vec![None; nets.len()];
        let before = metric_violations(&nets, &setup.library, &none);
        let run = run_buffopt(&nets, &setup.library);
        let after = metric_violations(&nets, &setup.library, &run.solutions);
        let (_, total) = run.buffer_histogram();

        // Delay penalty at matched counts.
        let (mut red_b, mut red_d) = (0.0f64, 0.0f64);
        for (net, sol) in nets.iter().zip(&run.solutions) {
            let Some(sol) = sol else { continue };
            if sol.buffers == 0 {
                continue;
            }
            let base = audited_max_delay(&net.tree, &setup.library, &Assignment::empty(&net.tree));
            red_b += base - audited_max_delay(&net.tree, &setup.library, &sol.assignment);
            let d = delayopt::optimize(
                &net.tree,
                &setup.library,
                &DelayOptOptions {
                    max_buffers: Some(sol.buffers),
                    ..Default::default()
                },
            )
            .expect("delay-only solves");
            red_d += base - audited_max_delay(&net.tree, &setup.library, &d.assignment);
        }
        let penalty = if red_d > 0.0 {
            format!("{:.2}%", (red_d - red_b) / red_d * 100.0)
        } else {
            "-".into()
        };
        println!(
            "{:<#10x} {before:>10} {after:>10} {total:>10} {penalty:>12}",
            setup.config.seed
        );
    }
    println!();
    println!(
        "expected shape on every seed: most nets violate before, zero after, \
         penalty well under the paper's 2% bound"
    );
    std::process::ExitCode::SUCCESS
}
