//! Table I — sink distribution of the 500 test nets.
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin table1
//! ```

use buffopt_workload::{generate, sink_histogram, WorkloadConfig};

fn main() {
    let cfg = WorkloadConfig::default();
    let nets = generate(&cfg);
    let hist = sink_histogram(&nets);

    println!("Table I: sink distribution of the {} test nets", nets.len());
    println!("{:<10} {:>10}", "sinks", "nets");
    for (label, count) in &hist {
        println!("{label:<10} {count:>10}");
    }
    println!(
        "{:<10} {:>10}",
        "total",
        hist.iter().map(|(_, c)| c).sum::<usize>()
    );

    let total_cap: f64 = nets.iter().map(|n| n.tree.total_capacitance()).sum();
    let total_len: f64 = nets.iter().map(|n| n.tree.total_wire_length()).sum();
    println!();
    println!(
        "population: {:.1} mm total wire, {:.1} pF total capacitance, seed {:#x}",
        total_len / 1000.0,
        total_cap * 1e12,
        cfg.seed
    );
}
