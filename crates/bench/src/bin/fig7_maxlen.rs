//! Figs. 6–7 and Theorem 1 — the maximum un-buffered wire length, swept
//! against driver resistance and noise slack, plus the iterative buffer
//! placement of Algorithm 1 on a long line (Fig. 7 shows the insertion
//! order from the sink up).
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin fig7_maxlen
//! ```

use buffopt::algorithm1;
use buffopt_buffers::{BufferLibrary, BufferType};
use buffopt_noise::theorem1::{max_unbuffered_length, MaxLength};
use buffopt_noise::NoiseScenario;
use buffopt_tree::{Driver, SinkSpec, Technology, TreeBuilder};

fn main() {
    let tech = Technology::global_layer();
    let r = tech.resistance_per_micron;
    let i = 0.7 * 7.2e9 * tech.capacitance_per_micron; // λ·µ·c per µm

    println!("Theorem 1: maximum un-buffered length l_max (µm)");
    println!("technology: r = {r} ohm/um, i = {:.3e} A/um", i);
    println!();
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "Rb \\ NS", "0.2 V", "0.4 V", "0.6 V", "0.8 V"
    );
    for rb in [0.0, 100.0, 200.0, 400.0, 800.0] {
        let mut row = format!("{rb:<12}");
        for ns in [0.2, 0.4, 0.6, 0.8] {
            let cell = match max_unbuffered_length(rb, r, i, 0.0, ns) {
                MaxLength::Bounded(l) => format!("{l:>10.0}"),
                MaxLength::Unbounded => format!("{:>10}", "inf"),
                MaxLength::Infeasible => format!("{:>10}", "-"),
            };
            row.push_str(&cell);
        }
        println!("{row}");
    }
    println!();
    println!(
        "limit with Rb = 0, I(v) = 0: sqrt(2 NS / (r i)) = {:.0} um at NS = 0.8 V",
        (2.0 * 0.8 / (r * i)).sqrt()
    );

    // Fig. 7: iterative application on a 20 mm line.
    println!();
    println!("Fig. 7: Algorithm 1 on a 20 mm line (buffers placed sink-to-source)");
    let mut b = TreeBuilder::new(Driver::new(300.0, 20e-12));
    b.add_sink(
        b.source(),
        tech.wire(20_000.0),
        SinkSpec::new(20e-15, 2e-9, 0.8),
    )
    .expect("sink");
    let tree = b.build().expect("tree");
    let scenario = NoiseScenario::estimation(&tree, 0.7, 7.2e9);
    let lib = BufferLibrary::single(BufferType::new("buf", 12e-15, 200.0, 25e-12, 0.9));
    let sol = algorithm1::avoid_noise(&tree, &scenario, &lib).expect("solvable");
    println!(
        "inserted {} buffers; positions from the sink:",
        sol.inserted()
    );
    // Walk up from the sink, printing cumulative distances of buffers.
    let mut v = sol.tree.sinks()[0];
    let mut dist = 0.0;
    let mut idx = 1;
    while let Some(p) = sol.tree.parent(v) {
        dist += sol.tree.parent_wire(v).expect("wire").length;
        if sol.assignment.buffer_at(p).is_some() {
            println!("  b{idx}: {dist:.0} um above the sink");
            idx += 1;
        }
        v = p;
    }
}
