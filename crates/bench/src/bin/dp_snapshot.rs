//! Reproducible DP performance snapshot: arena engine vs seed engine.
//!
//! Runs both van Ginneken engines over comb nets of growing sink count
//! (the `dp_scaling` shape) and writes one machine-readable JSON file —
//! `BENCH_dp.json` by default — with per-size median wall time, candidate
//! pressure, and (under `--features alloc-count`) heap allocation counts
//! per run. A `scaling` section repeats the engine comparison on 64–512
//! sink nets from the `buffopt-workload` scaling generator, where the
//! predictive windowed merge separates from the seed engine's full
//! cross-product enumeration (few samples — the reference engine is
//! O(Σ |L|·|R|) there). A further `analysis` section times the greedy
//! iterative optimizer with incremental probe re-analysis against the
//! seed's full-resweep scoring, per size. This is the artifact
//! `scripts/bench_snapshot.sh` produces and CI archives, so the perf
//! trajectory of the DP core is diffable across commits.
//!
//! Usage: `dp_snapshot [--quick] [--out PATH] [--gate BASELINE]
//!                     [--gate-tolerance-pct P]`
//!
//! `--quick` drops the per-size sample count (CI smoke); the full mode is
//! what EXPERIMENTS.md records.
//!
//! `--gate BASELINE` compares the fresh snapshot against a committed
//! baseline (typically the repo's `BENCH_dp.json`) and exits nonzero if
//! any size's arena-vs-reference median ratio drifted by more than the
//! tolerance (default 2%). Gating on the *ratio* — not the raw medians —
//! makes the check portable across machines: both engines share the
//! hardware, so a genuine regression in the arena engine (say, integrity
//! bookkeeping leaking into the DP hot path) moves the ratio while mere
//! machine speed does not.

use std::time::Instant;

use buffopt::dp_reference::{run_arena, run_reference, EngineConfig};
use buffopt::iterative::{self, IterativeOptions};
use buffopt::{DpWorkspace, RunBudget};
use buffopt_buffers::catalog;
use buffopt_noise::NoiseScenario;
use buffopt_tree::{segment, Driver, RoutingTree, SinkSpec, Technology, TreeBuilder};
use buffopt_workload::{scaling_net, ScalingConfig};

/// Counting global allocator, compiled in only when the snapshot should
/// report allocator traffic (`--features alloc-count`). Counts every
/// `alloc`/`realloc` call and the bytes requested; `dealloc` is free.
#[cfg(feature = "alloc-count")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static BYTES: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static A: CountingAlloc = CountingAlloc;

    pub fn reading() -> (u64, u64) {
        (
            ALLOCS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }
}

#[cfg(not(feature = "alloc-count"))]
mod counting_alloc {
    pub fn reading() -> (u64, u64) {
        (0, 0)
    }
}

/// The `dp_scaling` comb: a trunk of 800 µm spans with one tooth per
/// sink, segmented at 400 µm.
fn comb_net(sinks: usize) -> RoutingTree {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(300.0, 20e-12));
    let mut trunk = b.source();
    for i in 0..sinks {
        trunk = b.add_internal(trunk, tech.wire(800.0)).expect("trunk");
        b.add_sink(
            trunk,
            tech.wire(600.0 + 100.0 * (i % 5) as f64),
            SinkSpec::new(15e-15, 1.5e-9, 0.8),
        )
        .expect("tooth");
    }
    segment::segment_wires(&b.build().expect("tree"), 400.0)
        .expect("segment")
        .tree
}

struct Measured {
    median_ns: u64,
    min_ns: u64,
    allocs_per_run: u64,
    alloc_bytes_per_run: u64,
}

/// Medians over `samples` timed runs of `f`, with allocator traffic
/// averaged across the whole timed region (per-sample counting would
/// attribute the warm-up of reused scratch unevenly).
fn measure(samples: usize, mut f: impl FnMut()) -> Measured {
    // One untimed warm-up so one-time growth (workspace capacity, lazy
    // init) lands outside the measurement.
    f();
    let mut times: Vec<u64> = Vec::with_capacity(samples);
    let (a0, b0) = counting_alloc::reading();
    for _ in 0..samples {
        let t = Instant::now();
        f();
        times.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let (a1, b1) = counting_alloc::reading();
    times.sort_unstable();
    Measured {
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        allocs_per_run: (a1 - a0) / samples as u64,
        alloc_bytes_per_run: (b1 - b0) / samples as u64,
    }
}

fn json_engine(m: &Measured) -> String {
    format!(
        "{{\"median_ns\":{},\"min_ns\":{},\"allocs_per_run\":{},\"alloc_bytes_per_run\":{}}}",
        m.median_ns, m.min_ns, m.allocs_per_run, m.alloc_bytes_per_run
    )
}

/// The integer right after `field` in `json`, or `None`.
fn number_after(json: &str, field: &str) -> Option<u64> {
    let rest = &json[json.find(field)? + field.len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// `(sinks, arena (median_ns, min_ns), reference (median_ns, min_ns))`.
type SizeRow = (u64, (u64, u64), (u64, u64));

/// Per size row of a snapshot's `sizes` and `scaling` sections.
fn size_medians(json: &str) -> Vec<SizeRow> {
    // The `analysis` rows also carry `"sinks"`, so only read up to there.
    let sizes = json.split("\"analysis\":").next().unwrap_or(json);
    let mut out = Vec::new();
    for row in sizes.split("{\"sinks\":").skip(1) {
        let digits: String = row.chars().take_while(|c| c.is_ascii_digit()).collect();
        let (Ok(sinks), Some(arena_at), Some(ref_at)) = (
            digits.parse::<u64>(),
            row.find("\"arena\":"),
            row.find("\"reference\":"),
        ) else {
            continue;
        };
        if let (Some(arena), Some(arena_min), Some(reference), Some(ref_min)) = (
            number_after(&row[arena_at..], "\"median_ns\":"),
            number_after(&row[arena_at..], "\"min_ns\":"),
            number_after(&row[ref_at..], "\"median_ns\":"),
            number_after(&row[ref_at..], "\"min_ns\":"),
        ) {
            out.push((sinks, (arena, arena_min), (reference, ref_min)));
        }
    }
    out
}

/// Compares the fresh snapshot's arena/reference median ratios against
/// `baseline`'s, size by size. A size fails only if both its median
/// ratio *and* its min-time ratio drifted beyond `tolerance_pct` — the
/// min is far less sampling-noisy than a 5-sample median, so a genuine
/// slowdown (which moves both) still trips while scheduler jitter on one
/// sample does not. Returns `Err` naming the first failing size.
fn gate_against(baseline: &str, fresh: &str, tolerance_pct: f64) -> Result<(), String> {
    let base = size_medians(baseline);
    let new = size_medians(fresh);
    if base.is_empty() {
        return Err("baseline has no sizes section".to_string());
    }
    for (sinks, arena, reference) in &new {
        let Some((_, b_arena, b_reference)) = base.iter().find(|(s, _, _)| s == sinks) else {
            // A fresh snapshot may carry sizes (e.g. a new scaling tier)
            // an older committed baseline predates; gate only on the
            // sizes present in both.
            eprintln!("gate: sinks {sinks:>2}: no baseline row, skipped");
            continue;
        };
        let drift = |n: u64, d: u64, bn: u64, bd: u64| {
            let base_ratio = bn as f64 / bd.max(1) as f64;
            let ratio = n as f64 / d.max(1) as f64;
            (ratio / base_ratio - 1.0) * 100.0
        };
        let median_drift = drift(arena.0, reference.0, b_arena.0, b_reference.0);
        let min_drift = drift(arena.1, reference.1, b_arena.1, b_reference.1);
        eprintln!(
            "gate: sinks {sinks:>2}: arena/reference median drift {median_drift:+.1}%, \
             min drift {min_drift:+.1}%"
        );
        if median_drift > tolerance_pct && min_drift > tolerance_pct {
            return Err(format!(
                "{sinks}-sink arena/reference ratio regressed (median {median_drift:+.1}%, \
                 min {min_drift:+.1}%; tolerance {tolerance_pct}%)"
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_dp.json", |s| s.as_str());
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1));
    let tolerance_pct: f64 = args
        .iter()
        .position(|a| a == "--gate-tolerance-pct")
        .and_then(|i| args.get(i + 1))
        .map_or(2.0, |s| s.parse().expect("numeric tolerance"));
    let samples = if quick { 5 } else { 31 };

    let lib = catalog::ibm_like();
    let cfg = EngineConfig::default();
    let budget = RunBudget::default();
    let mut ws = DpWorkspace::new();

    let mut rows: Vec<String> = Vec::new();
    let mut analysis_rows: Vec<String> = Vec::new();
    for sinks in [2usize, 4, 8, 16] {
        let tree = comb_net(sinks);
        let scenario = NoiseScenario::estimation(&tree, 0.7, 7.2e9);

        let (_, stats) = run_arena(&tree, Some(&scenario), &lib, &cfg, &budget, &mut ws)
            .expect("comb net solves");
        let arena = measure(samples, || {
            run_arena(&tree, Some(&scenario), &lib, &cfg, &budget, &mut ws).expect("solves");
        });
        let (_, ref_stats) =
            run_reference(&tree, Some(&scenario), &lib, &cfg, &budget).expect("comb net solves");
        let reference = measure(samples, || {
            run_reference(&tree, Some(&scenario), &lib, &cfg, &budget).expect("solves");
        });

        let speedup = reference.median_ns as f64 / arena.median_ns.max(1) as f64;
        eprintln!(
            "sinks {sinks:>2}: arena {:>9} ns, reference {:>9} ns ({speedup:.2}x), \
             peak {} candidates / {} merge product, {} vs {} allocs/run",
            arena.median_ns,
            reference.median_ns,
            stats.peak_candidates,
            stats.peak_merge_product,
            arena.allocs_per_run,
            reference.allocs_per_run,
        );
        rows.push(format!(
            "{{\"sinks\":{},\"nodes\":{},\"arena\":{},\"reference\":{},\
             \"speedup\":{:.3},\"peak_candidates\":{},\"peak_merge_product\":{},\
             \"merge_enumerated\":{},\"merge_pruned\":{},\
             \"reference_peak_candidates\":{}}}",
            sinks,
            tree.len(),
            json_engine(&arena),
            json_engine(&reference),
            speedup,
            stats.peak_candidates,
            stats.peak_merge_product,
            stats.merge_products_enumerated,
            stats.merge_products_pruned,
            ref_stats.peak_candidates,
        ));

        // Greedy iterative insertion, probe-scored two ways: incremental
        // O(depth) table refreshes vs the seed's from-scratch re-audit of
        // the whole tree per trial. Same objective, same result; the gap
        // is the analysis kernel's incremental re-analysis payoff.
        let incr_opts = IterativeOptions {
            noise: true,
            ..IterativeOptions::default()
        };
        let full_opts = IterativeOptions {
            full_resweep: true,
            ..incr_opts.clone()
        };
        let incremental = measure(samples, || {
            iterative::optimize(&tree, &scenario, &lib, &incr_opts).expect("greedy solves");
        });
        let full = measure(samples, || {
            iterative::optimize(&tree, &scenario, &lib, &full_opts).expect("greedy solves");
        });
        let greedy_speedup = full.median_ns as f64 / incremental.median_ns.max(1) as f64;
        eprintln!(
            "          greedy incremental {:>9} ns, full resweep {:>9} ns ({greedy_speedup:.2}x)",
            incremental.median_ns, full.median_ns,
        );
        analysis_rows.push(format!(
            "{{\"sinks\":{},\"nodes\":{},\"incremental\":{},\"full_resweep\":{},\
             \"speedup\":{:.3}}}",
            sinks,
            tree.len(),
            json_engine(&incremental),
            json_engine(&full),
            greedy_speedup,
        ));
    }

    // Scaling tier: full 11-buffer library on 64–512-sink generated nets
    // (the `buffopt-workload` scaling generator), where the predictive
    // windowed merge separates from the seed engine's full cross-product
    // enumeration. The reference engine is O(Σ |L|·|R|) here, so the tier
    // runs far fewer samples than the comb sizes.
    let scaling_sizes: &[usize] = if quick { &[64] } else { &[64, 128, 256, 512] };
    let scaling_samples = if quick { 3 } else { 5 };
    let mut scaling_rows: Vec<String> = Vec::new();
    for &sinks in scaling_sizes {
        let tree = scaling_net(&ScalingConfig {
            sinks,
            ..ScalingConfig::default()
        });
        let scenario = NoiseScenario::estimation(&tree, 0.7, 7.2e9);
        let (_, stats) = run_arena(&tree, Some(&scenario), &lib, &cfg, &budget, &mut ws)
            .expect("scaling net solves");
        let arena = measure(scaling_samples, || {
            run_arena(&tree, Some(&scenario), &lib, &cfg, &budget, &mut ws).expect("solves");
        });
        let (_, ref_stats) =
            run_reference(&tree, Some(&scenario), &lib, &cfg, &budget).expect("scaling net solves");
        let reference = measure(scaling_samples, || {
            run_reference(&tree, Some(&scenario), &lib, &cfg, &budget).expect("solves");
        });
        let speedup = reference.median_ns as f64 / arena.median_ns.max(1) as f64;
        eprintln!(
            "scaling {sinks:>3}: arena {:>10} ns, reference {:>10} ns ({speedup:.2}x), \
             enumerated {} / pruned {} of {} raw pairs",
            arena.median_ns,
            reference.median_ns,
            stats.merge_products_enumerated,
            stats.merge_products_pruned,
            ref_stats.merge_products_enumerated + ref_stats.merge_products_pruned,
        );
        scaling_rows.push(format!(
            "{{\"sinks\":{},\"nodes\":{},\"arena\":{},\"reference\":{},\
             \"speedup\":{:.3},\"peak_candidates\":{},\"peak_merge_product\":{},\
             \"merge_enumerated\":{},\"merge_pruned\":{},\
             \"reference_merge_enumerated\":{}}}",
            sinks,
            tree.len(),
            json_engine(&arena),
            json_engine(&reference),
            speedup,
            stats.peak_candidates,
            stats.peak_merge_product,
            stats.merge_products_enumerated,
            stats.merge_products_pruned,
            ref_stats.merge_products_enumerated,
        ));
    }

    let alloc_counted = cfg!(feature = "alloc-count");
    // The `scaling` rows sit before `analysis` so `size_medians` (and
    // therefore the gate) covers them alongside the comb sizes.
    let json = format!(
        "{{\"bench\":\"dp_snapshot\",\"mode\":\"{}\",\"samples\":{},\
         \"scaling_samples\":{},\
         \"alloc_counted\":{},\"net\":\"comb/400um\",\"sizes\":[{}],\
         \"scaling\":[{}],\
         \"analysis\":[{}]}}\n",
        if quick { "quick" } else { "full" },
        samples,
        scaling_samples,
        alloc_counted,
        rows.join(","),
        scaling_rows.join(","),
        analysis_rows.join(",")
    );
    std::fs::write(out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");

    if let Some(base_path) = gate_path {
        let baseline = std::fs::read_to_string(base_path)
            .unwrap_or_else(|e| panic!("cannot read gate baseline {base_path}: {e}"));
        match gate_against(&baseline, &json, tolerance_pct) {
            Ok(()) => eprintln!("gate: medians within {tolerance_pct}% of {base_path}"),
            Err(why) => {
                eprintln!("gate FAILED against {base_path}: {why}");
                std::process::exit(1);
            }
        }
    }
}
