//! Reproducible DP performance snapshot: arena engine vs seed engine.
//!
//! Runs both van Ginneken engines over comb nets of growing sink count
//! (the `dp_scaling` shape) and writes one machine-readable JSON file —
//! `BENCH_dp.json` by default — with per-size median wall time, candidate
//! pressure, and (under `--features alloc-count`) heap allocation counts
//! per run. A second `analysis` section times the greedy iterative
//! optimizer with incremental probe re-analysis against the seed's
//! full-resweep scoring, per size. This is the artifact
//! `scripts/bench_snapshot.sh` produces and CI archives, so the perf
//! trajectory of the DP core is diffable across commits.
//!
//! Usage: `dp_snapshot [--quick] [--out PATH]`
//!
//! `--quick` drops the per-size sample count (CI smoke); the full mode is
//! what EXPERIMENTS.md records.

use std::time::Instant;

use buffopt::dp_reference::{run_arena, run_reference, EngineConfig};
use buffopt::iterative::{self, IterativeOptions};
use buffopt::{DpWorkspace, RunBudget};
use buffopt_buffers::catalog;
use buffopt_noise::NoiseScenario;
use buffopt_tree::{segment, Driver, RoutingTree, SinkSpec, Technology, TreeBuilder};

/// Counting global allocator, compiled in only when the snapshot should
/// report allocator traffic (`--features alloc-count`). Counts every
/// `alloc`/`realloc` call and the bytes requested; `dealloc` is free.
#[cfg(feature = "alloc-count")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static BYTES: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static A: CountingAlloc = CountingAlloc;

    pub fn reading() -> (u64, u64) {
        (
            ALLOCS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }
}

#[cfg(not(feature = "alloc-count"))]
mod counting_alloc {
    pub fn reading() -> (u64, u64) {
        (0, 0)
    }
}

/// The `dp_scaling` comb: a trunk of 800 µm spans with one tooth per
/// sink, segmented at 400 µm.
fn comb_net(sinks: usize) -> RoutingTree {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(300.0, 20e-12));
    let mut trunk = b.source();
    for i in 0..sinks {
        trunk = b.add_internal(trunk, tech.wire(800.0)).expect("trunk");
        b.add_sink(
            trunk,
            tech.wire(600.0 + 100.0 * (i % 5) as f64),
            SinkSpec::new(15e-15, 1.5e-9, 0.8),
        )
        .expect("tooth");
    }
    segment::segment_wires(&b.build().expect("tree"), 400.0)
        .expect("segment")
        .tree
}

struct Measured {
    median_ns: u64,
    min_ns: u64,
    allocs_per_run: u64,
    alloc_bytes_per_run: u64,
}

/// Medians over `samples` timed runs of `f`, with allocator traffic
/// averaged across the whole timed region (per-sample counting would
/// attribute the warm-up of reused scratch unevenly).
fn measure(samples: usize, mut f: impl FnMut()) -> Measured {
    // One untimed warm-up so one-time growth (workspace capacity, lazy
    // init) lands outside the measurement.
    f();
    let mut times: Vec<u64> = Vec::with_capacity(samples);
    let (a0, b0) = counting_alloc::reading();
    for _ in 0..samples {
        let t = Instant::now();
        f();
        times.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let (a1, b1) = counting_alloc::reading();
    times.sort_unstable();
    Measured {
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        allocs_per_run: (a1 - a0) / samples as u64,
        alloc_bytes_per_run: (b1 - b0) / samples as u64,
    }
}

fn json_engine(m: &Measured) -> String {
    format!(
        "{{\"median_ns\":{},\"min_ns\":{},\"allocs_per_run\":{},\"alloc_bytes_per_run\":{}}}",
        m.median_ns, m.min_ns, m.allocs_per_run, m.alloc_bytes_per_run
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_dp.json", |s| s.as_str());
    let samples = if quick { 5 } else { 31 };

    let lib = catalog::ibm_like();
    let cfg = EngineConfig::default();
    let budget = RunBudget::default();
    let mut ws = DpWorkspace::new();

    let mut rows: Vec<String> = Vec::new();
    let mut analysis_rows: Vec<String> = Vec::new();
    for sinks in [2usize, 4, 8, 16] {
        let tree = comb_net(sinks);
        let scenario = NoiseScenario::estimation(&tree, 0.7, 7.2e9);

        let (_, stats) = run_arena(&tree, Some(&scenario), &lib, &cfg, &budget, &mut ws)
            .expect("comb net solves");
        let arena = measure(samples, || {
            run_arena(&tree, Some(&scenario), &lib, &cfg, &budget, &mut ws).expect("solves");
        });
        let (_, ref_stats) =
            run_reference(&tree, Some(&scenario), &lib, &cfg, &budget).expect("comb net solves");
        let reference = measure(samples, || {
            run_reference(&tree, Some(&scenario), &lib, &cfg, &budget).expect("solves");
        });

        let speedup = reference.median_ns as f64 / arena.median_ns.max(1) as f64;
        eprintln!(
            "sinks {sinks:>2}: arena {:>9} ns, reference {:>9} ns ({speedup:.2}x), \
             peak {} candidates / {} merge product, {} vs {} allocs/run",
            arena.median_ns,
            reference.median_ns,
            stats.peak_candidates,
            stats.peak_merge_product,
            arena.allocs_per_run,
            reference.allocs_per_run,
        );
        rows.push(format!(
            "{{\"sinks\":{},\"nodes\":{},\"arena\":{},\"reference\":{},\
             \"speedup\":{:.3},\"peak_candidates\":{},\"peak_merge_product\":{},\
             \"reference_peak_candidates\":{}}}",
            sinks,
            tree.len(),
            json_engine(&arena),
            json_engine(&reference),
            speedup,
            stats.peak_candidates,
            stats.peak_merge_product,
            ref_stats.peak_candidates,
        ));

        // Greedy iterative insertion, probe-scored two ways: incremental
        // O(depth) table refreshes vs the seed's from-scratch re-audit of
        // the whole tree per trial. Same objective, same result; the gap
        // is the analysis kernel's incremental re-analysis payoff.
        let incr_opts = IterativeOptions {
            noise: true,
            ..IterativeOptions::default()
        };
        let full_opts = IterativeOptions {
            full_resweep: true,
            ..incr_opts.clone()
        };
        let incremental = measure(samples, || {
            iterative::optimize(&tree, &scenario, &lib, &incr_opts).expect("greedy solves");
        });
        let full = measure(samples, || {
            iterative::optimize(&tree, &scenario, &lib, &full_opts).expect("greedy solves");
        });
        let greedy_speedup = full.median_ns as f64 / incremental.median_ns.max(1) as f64;
        eprintln!(
            "          greedy incremental {:>9} ns, full resweep {:>9} ns ({greedy_speedup:.2}x)",
            incremental.median_ns, full.median_ns,
        );
        analysis_rows.push(format!(
            "{{\"sinks\":{},\"nodes\":{},\"incremental\":{},\"full_resweep\":{},\
             \"speedup\":{:.3}}}",
            sinks,
            tree.len(),
            json_engine(&incremental),
            json_engine(&full),
            greedy_speedup,
        ));
    }

    let alloc_counted = cfg!(feature = "alloc-count");
    let json = format!(
        "{{\"bench\":\"dp_snapshot\",\"mode\":\"{}\",\"samples\":{},\
         \"alloc_counted\":{},\"net\":\"comb/400um\",\"sizes\":[{}],\
         \"analysis\":[{}]}}\n",
        if quick { "quick" } else { "full" },
        samples,
        alloc_counted,
        rows.join(","),
        analysis_rows.join(",")
    );
    std::fs::write(out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
}
