//! Table IV — average delay reduction from buffer insertion, BuffOpt vs
//! DelayOpt at matched buffer counts, and the overall delay penalty of
//! noise avoidance.
//!
//! Paper shape: an apples-to-apples comparison (DelayOpt capped at the
//! buffer count BuffOpt chose per net) shows BuffOpt giving up < 2 % of
//! the delay reduction on average.
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin table4
//! ```

use buffopt::delayopt::{self, DelayOptOptions};
use buffopt::Assignment;
use buffopt_bench::{audited_max_delay, prepare, run_buffopt, ExperimentSetup};

fn main() -> std::process::ExitCode {
    let setup = ExperimentSetup::default();
    eprintln!("preparing {} nets ...", setup.config.net_count);
    let nets = match prepare(&setup) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("population preparation failed: {e}");
            return std::process::ExitCode::from(3);
        }
    };
    eprintln!("running BuffOpt ...");
    let b = run_buffopt(&nets, &setup.library);

    // Group nets by the number of buffers BuffOpt inserted; for each net
    // run DelayOpt with the same cap.
    const MAXK: usize = 10;
    let mut count = [0usize; MAXK + 1];
    let mut red_buffopt = [0.0f64; MAXK + 1];
    let mut red_delayopt = [0.0f64; MAXK + 1];

    eprintln!("running matched DelayOpt and audits ...");
    for (net, sol) in nets.iter().zip(&b.solutions) {
        let Some(sol) = sol else { continue };
        if sol.buffers == 0 {
            count[0] += 1;
            continue;
        }
        let k = sol.buffers.min(MAXK);
        let unbuffered =
            audited_max_delay(&net.tree, &setup.library, &Assignment::empty(&net.tree));
        let with_buffopt = audited_max_delay(&net.tree, &setup.library, &sol.assignment);
        let d = delayopt::optimize(
            &net.tree,
            &setup.library,
            &DelayOptOptions {
                max_buffers: Some(sol.buffers),
                ..Default::default()
            },
        )
        .expect("delay-only optimization always has candidates");
        let with_delayopt = audited_max_delay(&net.tree, &setup.library, &d.assignment);
        count[k] += 1;
        red_buffopt[k] += unbuffered - with_buffopt;
        red_delayopt[k] += unbuffered - with_delayopt;
    }

    println!("Table IV: average delay reduction (ps) by inserted buffer count");
    println!(
        "{:<8} {:>6} {:>14} {:>14} {:>12}",
        "buffers", "nets", "BuffOpt", "DelayOpt", "penalty"
    );
    let mut tot_nets = 0usize;
    let (mut tot_b, mut tot_d) = (0.0f64, 0.0f64);
    for k in 1..=MAXK {
        if count[k] == 0 {
            continue;
        }
        let rb = red_buffopt[k] / count[k] as f64 * 1e12;
        let rd = red_delayopt[k] / count[k] as f64 * 1e12;
        let pen = if rd.abs() > 1e-9 {
            format!("{:.2}%", (rd - rb) / rd * 100.0)
        } else {
            "-".into()
        };
        println!("{k:<8} {:>6} {rb:>14.1} {rd:>14.1} {pen:>12}", count[k]);
        tot_nets += count[k];
        tot_b += red_buffopt[k];
        tot_d += red_delayopt[k];
    }
    if tot_nets > 0 {
        let avg_b = tot_b / tot_nets as f64 * 1e12;
        let avg_d = tot_d / tot_nets as f64 * 1e12;
        println!(
            "{:<8} {:>6} {avg_b:>14.1} {avg_d:>14.1} {:>11.2}%",
            "overall",
            tot_nets,
            (avg_d - avg_b) / avg_d * 100.0
        );
        println!();
        println!(
            "average delay penalty for avoiding noise: {:.2}% (paper: < 2%)",
            (avg_d - avg_b) / avg_d * 100.0
        );
    }
    println!(
        "nets with zero buffers (excluded from averages): {}",
        count[0]
    );
    std::process::ExitCode::SUCCESS
}
