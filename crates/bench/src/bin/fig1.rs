//! Fig. 1 — the noise effect on a victim net (a) without and (b) with a
//! buffer, regenerated numerically: the transient-simulation referee
//! reports the victim's peak noise in both configurations, next to the
//! Devgan-metric bound.
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin fig1
//! ```

use buffopt::audit;
use buffopt::Assignment;
use buffopt_buffers::{BufferLibrary, BufferType};
use buffopt_noise::{metric, NoiseScenario};
use buffopt_sim::referee::{self, RefereeOptions};
use buffopt_tree::{segment, Driver, SinkSpec, Technology, TreeBuilder};

fn main() {
    // A 4 mm victim running parallel to an aggressor over its whole span.
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(250.0, 30e-12));
    b.add_sink(
        b.source(),
        tech.wire(4_000.0),
        SinkSpec::new(20e-15, 1.2e-9, 0.8),
    )
    .expect("sink");
    let seg = segment::segment_wires(&b.build().expect("tree"), 2_000.0).expect("segment");
    let tree = seg.tree;
    let scenario = NoiseScenario::estimation(&tree, 0.7, 7.2e9);
    let lib = BufferLibrary::single(BufferType::new("buf", 15e-15, 180.0, 30e-12, 0.9));
    let ropts = RefereeOptions::default();

    println!("Fig. 1: noise on a victim net without and with a buffer");
    println!(
        "{:<28} {:>14} {:>18} {:>10} {:>12}",
        "configuration", "sim peak (mV)", "metric bound (mV)", "margin", "width (ps)"
    );

    // (a) no buffer.
    let sim_a = referee::net_peak_noise(&tree, &scenario, &ropts).expect("sim");
    let met_a = metric::sink_noise(&tree, &scenario);
    println!(
        "{:<28} {:>14.1} {:>18.1} {:>9.1}mV {:>12.0}",
        "(a) unbuffered",
        sim_a[0].peak * 1e3,
        met_a[0].noise * 1e3,
        800.0,
        sim_a[0].width_at_half_peak * 1e12
    );

    // (b) buffer at the midpoint (the segmenting node).
    let mid = tree
        .node_ids()
        .find(|&v| tree.node(v).kind.is_feasible_site())
        .expect("segmenting created a midpoint");
    let mut a = Assignment::empty(&tree);
    a.insert(mid, buffopt_buffers::BufferId::from_index(0));
    let n_audit = audit::noise(&tree, &scenario, &lib, &a).expect("audit");
    let worst_metric = n_audit
        .checks
        .iter()
        .map(|c| c.noise)
        .fold(0.0f64, f64::max);
    let stages = audit::stages(&tree, &lib, &a);
    let mut worst_sim = 0.0f64;
    let mut worst_width = 0.0f64;
    for st in &stages {
        let ends: Vec<_> = st.ends.iter().map(|&(n, _, c)| (n, c)).collect();
        for m in
            referee::stage_peak_noise(&tree, &scenario, st.root, st.gate_resistance, &ends, &ropts)
                .expect("sim")
        {
            if m.peak > worst_sim {
                worst_sim = m.peak;
                worst_width = m.width_at_half_peak;
            }
        }
    }
    println!(
        "{:<28} {:>14.1} {:>18.1} {:>9.1}mV {:>12.0}",
        "(b) buffer at midpoint",
        worst_sim * 1e3,
        worst_metric * 1e3,
        800.0,
        worst_width * 1e12
    );

    println!();
    let fixed_a = met_a[0].noise <= 0.8;
    let fixed_b = !n_audit.has_violation();
    println!(
        "unbuffered: {} | buffered: {}",
        if fixed_a {
            "meets margin"
        } else {
            "VIOLATES margin"
        },
        if fixed_b {
            "meets margin"
        } else {
            "VIOLATES margin"
        },
    );
    println!(
        "the buffer splits the coupled run, restoring the signal mid-way; \
         both wires now see roughly half the injected charge"
    );
}
