//! Estimation-mode parameter sensitivity: how the violation count and
//! buffer demand react to the coupling ratio λ and the aggressor rise
//! time — the two knobs of the paper's Section V setup (λ = 0.7,
//! 0.25 ns).
//!
//! ```text
//! cargo run --release -p buffopt-bench --bin sensitivity
//! ```

use buffopt_bench::{metric_violations, prepare, run_buffopt, ExperimentSetup};

fn main() -> std::process::ExitCode {
    println!("sensitivity of the 500-net experiment to estimation-mode parameters");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "lambda", "rise (ns)", "violating", "buffers"
    );
    for (lambda, rise) in [
        (0.5, 0.25e-9),
        (0.7, 0.25e-9), // the paper's setting
        (0.9, 0.25e-9),
        (0.7, 0.5e-9),
        (0.7, 0.125e-9),
    ] {
        let mut setup = ExperimentSetup::default();
        setup.config.coupling_ratio = lambda;
        setup.config.rise_time = rise;
        let nets = match prepare(&setup) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("population preparation failed: {e}");
                return std::process::ExitCode::from(3);
            }
        };
        let none = vec![None; nets.len()];
        let before = metric_violations(&nets, &setup.library, &none);
        let run = run_buffopt(&nets, &setup.library);
        let after = metric_violations(&nets, &setup.library, &run.solutions);
        let (_, total) = run.buffer_histogram();
        assert_eq!(after, 0, "BuffOpt must clear every configuration");
        println!(
            "{lambda:>8.2} {:>10.3} {before:>12} {total:>10}",
            rise * 1e9
        );
    }
    println!();
    println!(
        "stronger coupling (higher lambda, faster edges) -> more violations \
         and more repeaters; BuffOpt clears all of them in every setting"
    );
    std::process::ExitCode::SUCCESS
}
