//! Shared experiment machinery for regenerating the paper's tables and
//! figures.
//!
//! Every table harness (`src/bin/table*.rs`) and Criterion bench runs the
//! same flow:
//!
//! 1. [`prepare`] — generate the seeded 500-net population, segment every
//!    wire (Alpert–Devgan preprocessing) and attach the estimation-mode
//!    noise scenario;
//! 2. run BuffOpt (Problem 3 production mode) and/or `DelayOpt(k)`;
//! 3. audit each solution independently ([`buffopt::audit`]) and, where
//!    the experiment calls for it, verify with the transient-simulation
//!    referee ([`buffopt_sim::referee`]), the reproduction's 3dnoise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use buffopt::audit;
use buffopt::delayopt::{self, DelayOptOptions, Solution};
use buffopt::Assignment;
use buffopt_buffers::{catalog, BufferLibrary};
use buffopt_noise::NoiseScenario;
use buffopt_pipeline::{run_batch, BatchReport, NetInput, PipelineConfig};
use buffopt_sim::referee::{self, RefereeOptions};
use buffopt_tree::{segment, RoutingTree, TreeError};
use buffopt_workload::{estimation_scenario, generate, WorkloadConfig};

/// Experiment-wide setup: workload, library, segmenting granularity.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// Population configuration (paper Section V defaults).
    pub config: WorkloadConfig,
    /// Buffer library (paper: 5 inverting + 6 non-inverting).
    pub library: BufferLibrary,
    /// Maximum wire-segment length (µm) for the Alpert–Devgan
    /// preprocessing.
    pub max_segment: f64,
}

impl Default for ExperimentSetup {
    fn default() -> Self {
        ExperimentSetup {
            config: WorkloadConfig::default(),
            library: catalog::ibm_like(),
            max_segment: 500.0,
        }
    }
}

/// A net prepared for optimization: segmented tree plus noise scenario.
#[derive(Debug, Clone)]
pub struct PreparedNet {
    /// Stable population index.
    pub id: usize,
    /// Sink count of the original net.
    pub sink_count: usize,
    /// Segmented routing tree.
    pub tree: RoutingTree,
    /// Estimation-mode scenario on the segmented tree.
    pub scenario: NoiseScenario,
}

/// Generates and prepares the whole population.
///
/// # Errors
///
/// Propagates the segmentation error (e.g. a non-positive
/// `max_segment`) instead of panicking, so harnesses can report it and
/// exit cleanly.
pub fn prepare(setup: &ExperimentSetup) -> Result<Vec<PreparedNet>, TreeError> {
    generate(&setup.config)
        .into_iter()
        .map(|net| {
            let seg = segment::segment_wires(&net.tree, setup.max_segment)?;
            let scenario = estimation_scenario(&net.tree, &setup.config).for_segmented(&seg);
            Ok(PreparedNet {
                id: net.id,
                sink_count: net.tree.sinks().len(),
                tree: seg.tree,
                scenario,
            })
        })
        .collect()
}

/// Outcome of one optimizer run over the population.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-net solutions (`None` when the optimizer found no feasible
    /// candidate, which the tables report as an unresolved violation).
    pub solutions: Vec<Option<Solution>>,
    /// Total wall-clock time of the optimizer calls.
    pub cpu: Duration,
}

impl RunOutcome {
    /// Histogram of inserted-buffer counts `0, 1, 2, 3, ≥4` plus total.
    pub fn buffer_histogram(&self) -> ([usize; 5], usize) {
        let mut hist = [0usize; 5];
        let mut total = 0;
        for sol in self.solutions.iter().flatten() {
            hist[sol.buffers.min(4)] += 1;
            total += sol.buffers;
        }
        (hist, total)
    }
}

/// Runs BuffOpt in its production mode (Problem 3: fewest buffers meeting
/// noise and timing, slack secondary) over every net, through the
/// fault-isolated pipeline: a net that panics, busts its budget, or turns
/// out infeasible yields `None` instead of taking the run down.
pub fn run_buffopt(nets: &[PreparedNet], library: &BufferLibrary) -> RunOutcome {
    let report = run_buffopt_batch(nets, library);
    RunOutcome {
        solutions: report.outcomes.into_iter().map(|o| o.solution).collect(),
        cpu: report.wall,
    }
}

/// The same run with the full per-net outcome records (degradation rung,
/// attempts, wall time) preserved, for harnesses that report them.
pub fn run_buffopt_batch(nets: &[PreparedNet], library: &BufferLibrary) -> BatchReport {
    let inputs: Vec<NetInput> = nets
        .iter()
        .map(|n| NetInput::Parsed {
            name: format!("net{}", n.id),
            tree: n.tree.clone(),
            scenario: n.scenario.clone(),
        })
        .collect();
    let cfg = PipelineConfig {
        max_segment: None, // `prepare` already segmented the trees
        ..PipelineConfig::new(library.clone())
    };
    run_batch(&inputs, &cfg)
}

/// Runs `DelayOpt(k)` (delay-optimal with at most `k` buffers) over every
/// net.
pub fn run_delayopt_k(nets: &[PreparedNet], library: &BufferLibrary, k: usize) -> RunOutcome {
    let opts = DelayOptOptions {
        max_buffers: Some(k),
        ..Default::default()
    };
    let start = Instant::now();
    let solutions = nets
        .iter()
        .map(|n| delayopt::optimize(&n.tree, library, &opts).ok())
        .collect();
    RunOutcome {
        solutions,
        cpu: start.elapsed(),
    }
}

/// Counts nets whose (possibly buffered) state violates the **Devgan
/// metric** according to the independent audit.
pub fn metric_violations(
    nets: &[PreparedNet],
    library: &BufferLibrary,
    solutions: &[Option<Solution>],
) -> usize {
    nets.iter()
        .zip(solutions)
        .filter(|(n, sol)| {
            let empty = Assignment::empty(&n.tree);
            let a = sol.as_ref().map(|s| &s.assignment).unwrap_or(&empty);
            audit::noise(&n.tree, &n.scenario, library, a)
                .expect("prepared nets audit cleanly")
                .has_violation()
        })
        .count()
}

/// Counts nets whose state violates according to the **simulation
/// referee** (3dnoise substitute): every restoring stage is simulated and
/// each end compared against its margin.
pub fn referee_violations(
    nets: &[PreparedNet],
    library: &BufferLibrary,
    solutions: &[Option<Solution>],
    opts: &RefereeOptions,
) -> usize {
    nets.iter()
        .zip(solutions)
        .filter(|(n, sol)| {
            let empty = Assignment::empty(&n.tree);
            let a = sol.as_ref().map(|s| &s.assignment).unwrap_or(&empty);
            net_has_referee_violation(&n.tree, &n.scenario, library, a, opts)
        })
        .count()
}

/// Simulates every stage of a buffered net and reports whether any end
/// exceeds its noise margin.
pub fn net_has_referee_violation(
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    library: &BufferLibrary,
    assignment: &Assignment,
    opts: &RefereeOptions,
) -> bool {
    for stage in audit::stages(tree, library, assignment) {
        if stage.ends.is_empty() {
            continue;
        }
        let ends: Vec<_> = stage.ends.iter().map(|&(n, _, c)| (n, c)).collect();
        let peaks = referee::stage_peak_noise(
            tree,
            scenario,
            stage.root,
            stage.gate_resistance,
            &ends,
            opts,
        )
        .expect("stage networks are grounded through the gate");
        for (peak, &(_, margin, _)) in peaks.iter().zip(&stage.ends) {
            if peak.peak > margin + 1e-12 {
                return true;
            }
        }
    }
    false
}

/// Audited worst source-to-sink delay of a net under an assignment.
pub fn audited_max_delay(
    tree: &RoutingTree,
    library: &BufferLibrary,
    assignment: &Assignment,
) -> f64 {
    audit::delay(tree, library, assignment)
        .expect("prepared nets audit cleanly")
        .max_delay()
}

/// Formats a `Duration` in seconds with two decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_setup() -> ExperimentSetup {
        let mut s = ExperimentSetup::default();
        s.config.net_count = 20;
        s
    }

    #[test]
    fn prepare_produces_segmented_nets() {
        let setup = small_setup();
        let nets = prepare(&setup).expect("prepare");
        assert_eq!(nets.len(), 20);
        for n in &nets {
            assert!(n.tree.check_invariants().is_empty());
            assert_eq!(n.scenario.len(), n.tree.len());
            // Every wire is at most max_segment long.
            for v in n.tree.node_ids() {
                if let Some(w) = n.tree.parent_wire(v) {
                    assert!(w.length <= setup.max_segment + 1e-9);
                }
            }
        }
    }

    #[test]
    fn buffopt_clears_metric_violations_on_sample() {
        let setup = small_setup();
        let nets = prepare(&setup).expect("prepare");
        let before = metric_violations(&nets, &setup.library, &vec![None; nets.len()]);
        let run = run_buffopt(&nets, &setup.library);
        let after = metric_violations(&nets, &setup.library, &run.solutions);
        assert!(before > 0, "sample population should violate");
        assert_eq!(after, 0, "BuffOpt fixes everything the metric flags");
        assert!(run.solutions.iter().all(Option::is_some));
    }

    #[test]
    fn referee_flags_at_most_metric_count() {
        let setup = small_setup();
        let nets = prepare(&setup).expect("prepare");
        let none = vec![None; nets.len()];
        let metric = metric_violations(&nets, &setup.library, &none);
        let refv = referee_violations(
            &nets,
            &setup.library,
            &none,
            &RefereeOptions {
                segments_per_wire: 2,
                steps_per_rise: 60,
                ..RefereeOptions::default()
            },
        );
        assert!(
            refv <= metric,
            "the referee is more accurate: {refv} > {metric}"
        );
    }

    #[test]
    fn histogram_sums_to_population() {
        let setup = small_setup();
        let nets = prepare(&setup).expect("prepare");
        let run = run_buffopt(&nets, &setup.library);
        let (hist, total) = run.buffer_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 20);
        assert!(total >= hist[1]);
    }

    #[test]
    fn delayopt_k_respects_cap() {
        let setup = small_setup();
        let nets = prepare(&setup).expect("prepare");
        let run = run_delayopt_k(&nets, &setup.library, 2);
        for sol in run.solutions.iter().flatten() {
            assert!(sol.buffers <= 2);
        }
    }
}
