//! Runtime scaling of the dynamic programs (the paper's Table III CPU
//! column, generalized): DelayOpt vs BuffOpt over growing net sizes.
//!
//! The paper observes BuffOpt running *faster* than DelayOpt(k ≥ 3)
//! because pruning noise-violating candidates shrinks the lists; the
//! `candidate_pressure` group measures exactly that effect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use buffopt::buffopt::{self as algo3, BuffOptOptions};
use buffopt::delayopt::{self, DelayOptOptions};
use buffopt_buffers::catalog;
use buffopt_noise::NoiseScenario;
use buffopt_tree::{segment, Driver, RoutingTree, SinkSpec, Technology, TreeBuilder};

/// A comb-shaped net: a trunk with `sinks` teeth — representative of the
/// multi-sink global nets in the population.
fn comb_net(sinks: usize) -> RoutingTree {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(300.0, 20e-12));
    let mut trunk = b.source();
    for i in 0..sinks {
        trunk = b.add_internal(trunk, tech.wire(800.0)).expect("trunk");
        b.add_sink(
            trunk,
            tech.wire(600.0 + 100.0 * (i % 5) as f64),
            SinkSpec::new(15e-15, 1.5e-9, 0.8),
        )
        .expect("tooth");
    }
    segment::segment_wires(&b.build().expect("tree"), 400.0)
        .expect("segment")
        .tree
}

fn bench_scaling(c: &mut Criterion) {
    let lib = catalog::ibm_like();
    let mut group = c.benchmark_group("dp_scaling");
    group.sample_size(10);
    for sinks in [2usize, 4, 8, 16] {
        let tree = comb_net(sinks);
        let scenario = NoiseScenario::estimation(&tree, 0.7, 7.2e9);
        group.bench_with_input(BenchmarkId::new("delayopt", sinks), &sinks, |b, _| {
            b.iter(|| delayopt::optimize(&tree, &lib, &DelayOptOptions::default()).expect("solves"))
        });
        group.bench_with_input(BenchmarkId::new("buffopt", sinks), &sinks, |b, _| {
            b.iter(|| {
                algo3::optimize(&tree, &scenario, &lib, &BuffOptOptions::default()).expect("solves")
            })
        });
    }
    group.finish();
}

fn bench_candidate_pressure(c: &mut Criterion) {
    // With a hard buffer cap (the paper's DelayOpt(4) setting) noise
    // pruning gives BuffOpt fewer candidates than DelayOpt.
    let lib = catalog::ibm_like();
    let tree = comb_net(10);
    let scenario = NoiseScenario::estimation(&tree, 0.7, 7.2e9);
    let mut group = c.benchmark_group("candidate_pressure");
    group.sample_size(10);
    group.bench_function("delayopt_k4", |b| {
        b.iter(|| {
            delayopt::optimize(
                &tree,
                &lib,
                &DelayOptOptions {
                    max_buffers: Some(4),
                    ..Default::default()
                },
            )
            .expect("solves")
        })
    });
    group.bench_function("buffopt_k4", |b| {
        b.iter(|| {
            algo3::optimize(
                &tree,
                &scenario,
                &lib,
                &BuffOptOptions {
                    max_buffers: Some(4),
                    ..BuffOptOptions::default()
                },
            )
            .expect("solves")
        })
    });
    group.finish();
}

fn bench_greedy_baseline(c: &mut Criterion) {
    // The related-work greedy (one audited buffer per round) against the
    // DP on the same net: slower *and* suboptimal, which is the paper's
    // case for building on van Ginneken.
    use buffopt::iterative::{self, IterativeOptions};
    let lib = catalog::ibm_like();
    let tree = comb_net(6);
    let scenario = NoiseScenario::estimation(&tree, 0.7, 7.2e9);
    let mut group = c.benchmark_group("greedy_vs_dp");
    group.sample_size(10);
    group.bench_function("greedy", |b| {
        b.iter(|| {
            iterative::optimize(
                &tree,
                &scenario,
                &lib,
                &IterativeOptions {
                    noise: false,
                    max_buffers: None,
                    ..Default::default()
                },
            )
            .expect("solves")
        })
    });
    group.bench_function("dp", |b| {
        b.iter(|| delayopt::optimize(&tree, &lib, &DelayOptOptions::default()).expect("solves"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling,
    bench_candidate_pressure,
    bench_greedy_baseline
);
criterion_main!(benches);
