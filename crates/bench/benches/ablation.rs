//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * wire-segmenting granularity (the Alpert–Devgan quality/run-time
//!   trade-off, paper reference [1] and footnote 3);
//! * paper pruning vs conservative 4-D pruning in the BuffOpt DP;
//! * buffer-library size (1 vs 11 types).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use buffopt::buffopt::{self as algo3, BuffOptOptions};
use buffopt_buffers::{catalog, BufferLibrary};
use buffopt_noise::NoiseScenario;
use buffopt_tree::{segment, Driver, RoutingTree, SinkSpec, Technology, TreeBuilder};

fn base_net() -> RoutingTree {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(300.0, 20e-12));
    let j = b.add_internal(b.source(), tech.wire(4_000.0)).expect("j");
    for i in 0..3 {
        b.add_sink(
            j,
            tech.wire(3_000.0 + 1_000.0 * i as f64),
            SinkSpec::new(15e-15, 1.5e-9, 0.8),
        )
        .expect("sink");
    }
    b.build().expect("tree")
}

fn prepared(max_segment: f64) -> (RoutingTree, NoiseScenario) {
    let t0 = base_net();
    let seg = segment::segment_wires(&t0, max_segment).expect("segment");
    let scenario = NoiseScenario::estimation(&t0, 0.7, 7.2e9).for_segmented(&seg);
    (seg.tree, scenario)
}

fn bench_segmenting(c: &mut Criterion) {
    let lib = catalog::ibm_like();
    let mut group = c.benchmark_group("segment_granularity");
    group.sample_size(10);
    // Coarser than ~1 mm leaves too few candidate sites for the noise
    // constraints on this net (the Theorem 1 spacing is ~2.2 mm from a
    // clean state but shrinks near the junction).
    for max_seg in [1_000.0, 500.0, 250.0, 125.0] {
        let (tree, scenario) = prepared(max_seg);
        group.bench_with_input(
            BenchmarkId::from_parameter(max_seg as usize),
            &max_seg,
            |b, _| {
                b.iter(|| {
                    algo3::optimize(&tree, &scenario, &lib, &BuffOptOptions::default())
                        .expect("solves")
                })
            },
        );
    }
    group.finish();
}

fn bench_pruning_modes(c: &mut Criterion) {
    let lib = catalog::ibm_like();
    let (tree, scenario) = prepared(400.0);
    let mut group = c.benchmark_group("pruning_mode");
    group.sample_size(10);
    group.bench_function("paper_cq", |b| {
        b.iter(|| {
            algo3::optimize(&tree, &scenario, &lib, &BuffOptOptions::default()).expect("solves")
        })
    });
    group.bench_function("conservative_4d", |b| {
        b.iter(|| {
            algo3::optimize(
                &tree,
                &scenario,
                &lib,
                &BuffOptOptions {
                    conservative_pruning: true,
                    ..BuffOptOptions::default()
                },
            )
            .expect("solves")
        })
    });
    group.finish();
}

fn bench_library_size(c: &mut Criterion) {
    let (tree, scenario) = prepared(400.0);
    let full = catalog::ibm_like();
    let single = catalog::single_buffer();
    let non_inverting: BufferLibrary = full.non_inverting();
    let mut group = c.benchmark_group("library_size");
    group.sample_size(10);
    for (name, lib) in [
        ("single", &single),
        ("non_inverting_6", &non_inverting),
        ("full_11", &full),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                algo3::optimize(&tree, &scenario, lib, &BuffOptOptions::default()).expect("solves")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_segmenting,
    bench_pruning_modes,
    bench_library_size
);
criterion_main!(benches);
