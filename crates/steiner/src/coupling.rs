//! Geometric coupling extraction: from routed victim wires and aggressor
//! tracks in the plane to a per-wire Devgan [`NoiseScenario`].
//!
//! The paper's premise (Section I): "the amount of coupling capacitance
//! from one net to another is proportional to the distance that the two
//! nets run parallel to each other", and the coupling ratio falls off
//! inversely with separation, `λ(d) = κ / d` (the form behind eq. 17's
//! separation-distance result). This module evaluates exactly that model
//! over rectilinear geometry:
//!
//! * for each victim wire segment and each parallel aggressor segment,
//!   compute the *overlap length* of their projections and the
//!   perpendicular separation `d`;
//! * the wire's effective coupling ratio accumulates
//!   `(overlap / wire length) · κ / d`, clamped by a minimum spacing and
//!   cut off beyond a maximum;
//! * multiplied by the aggressor's slope µ it becomes the wire's
//!   `Σ λ·µ` factor (eq. 6).
//!
//! Perpendicular crossings contribute nothing (their parallel run is a
//! point), matching the usual extraction simplification.

use buffopt_noise::NoiseScenario;
use buffopt_tree::NodeId;

use crate::{Point, RoutedNet};

/// A switching neighbour, described by its planar path and signal slope.
#[derive(Debug, Clone, PartialEq)]
pub struct AggressorTrack {
    /// Rectilinear polyline (consecutive points axis-aligned; non-axis-
    /// aligned segments couple to nothing).
    pub path: Vec<Point>,
    /// Signal slope µ in V/s (e.g. `vdd / rise_time`).
    pub slope: f64,
}

/// The `λ(d) = κ / d` coupling model of the paper's eq. 16–17.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingModel {
    /// Proportionality constant κ (µm): `λ = κ / d` for separation `d`.
    pub kappa: f64,
    /// Minimum separation (µm); smaller distances clamp here (wires
    /// cannot be closer than one routing pitch).
    pub min_distance: f64,
    /// Maximum separation (µm); beyond it coupling is negligible.
    pub max_distance: f64,
}

impl Default for CouplingModel {
    /// κ = 0.42 µm with 0.6–6 µm range: a victim at minimum pitch sees
    /// λ = 0.7, the paper's estimation-mode ratio.
    fn default() -> Self {
        CouplingModel {
            kappa: 0.42,
            min_distance: 0.6,
            max_distance: 6.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Orientation {
    Horizontal,
    Vertical,
}

fn orientation(a: Point, b: Point) -> Option<Orientation> {
    let dx = (a.x - b.x).abs();
    let dy = (a.y - b.y).abs();
    if dx > 0.0 && dy == 0.0 {
        Some(Orientation::Horizontal)
    } else if dy > 0.0 && dx == 0.0 {
        Some(Orientation::Vertical)
    } else {
        None // zero-length or diagonal
    }
}

/// Overlap length and separation of two parallel segments, or `None` when
/// they do not run parallel with positive overlap.
fn parallel_overlap(v0: Point, v1: Point, a0: Point, a1: Point) -> Option<(f64, f64)> {
    let ov = orientation(v0, v1)?;
    let oa = orientation(a0, a1)?;
    if ov != oa {
        return None;
    }
    let (v_lo, v_hi, v_perp, a_lo, a_hi, a_perp) = match ov {
        Orientation::Horizontal => (
            v0.x.min(v1.x),
            v0.x.max(v1.x),
            v0.y,
            a0.x.min(a1.x),
            a0.x.max(a1.x),
            a0.y,
        ),
        Orientation::Vertical => (
            v0.y.min(v1.y),
            v0.y.max(v1.y),
            v0.x,
            a0.y.min(a1.y),
            a0.y.max(a1.y),
            a0.x,
        ),
    };
    let overlap = (v_hi.min(a_hi) - v_lo.max(a_lo)).max(0.0);
    if overlap <= 0.0 {
        return None;
    }
    Some((overlap, (v_perp - a_perp).abs()))
}

/// Effective `Σ λ·µ` factor (V/s) for an arbitrary axis-aligned segment
/// against the aggressor tracks: the per-unit-length coupling the segment
/// would carry as a victim wire. Zero-length or diagonal segments return
/// zero.
pub fn segment_coupling_factor(
    a: Point,
    b: Point,
    tracks: &[AggressorTrack],
    model: &CouplingModel,
) -> f64 {
    let len = a.manhattan(b);
    if len <= 0.0 || orientation(a, b).is_none() {
        return 0.0;
    }
    let mut factor = 0.0;
    for track in tracks {
        for seg in track.path.windows(2) {
            let Some((overlap, d)) = parallel_overlap(a, b, seg[0], seg[1]) else {
                continue;
            };
            if d > model.max_distance {
                continue;
            }
            let lambda = model.kappa / d.max(model.min_distance);
            factor += (overlap / len) * lambda.min(1.0) * track.slope;
        }
    }
    factor
}

/// Noise-aware Steiner estimation: for every MST edge, pick the L-shape
/// orientation (lower-L vs upper-L — identical wirelength and RC) whose
/// legs collect the smaller injected coupling current, then extract the
/// final scenario. A lightweight take on simultaneous routing and noise
/// avoidance (the paper cites Okamoto–Cong \[23\] for the full problem).
///
/// Returns the routed net together with its extracted scenario.
///
/// # Errors
///
/// Returns [`buffopt_tree::TreeError::NoSinks`] if the net has no sinks.
pub fn noise_aware_steiner(
    net: &crate::NetGeometry,
    tech: &buffopt_tree::Technology,
    tracks: &[AggressorTrack],
    model: &CouplingModel,
) -> Result<(RoutedNet, NoiseScenario), buffopt_tree::TreeError> {
    let c_per_um = tech.capacitance_per_micron;
    let routed = crate::steiner_tree_routed_with(net, tech, &mut |_, from, to| {
        let legs = |bend: Point| -> f64 {
            // Injected current of the two legs (factor · capacitance).
            segment_coupling_factor(from, bend, tracks, model) * (from.manhattan(bend) * c_per_um)
                + segment_coupling_factor(bend, to, tracks, model) * (bend.manhattan(to) * c_per_um)
        };
        let lower = legs(Point::new(to.x, from.y));
        let upper = legs(Point::new(from.x, to.y));
        if upper < lower {
            crate::BendPolicy::VerticalFirst
        } else {
            crate::BendPolicy::HorizontalFirst
        }
    })?;
    let scenario = extract_scenario(&routed, tracks, model);
    Ok((routed, scenario))
}

/// Extracts a [`NoiseScenario`] for `routed` from the aggressor tracks
/// under `model`. Wires without geometry (binarization dummies, taps)
/// stay quiet.
///
/// # Panics
///
/// Panics if the model is degenerate (non-positive κ or distances, or
/// `min_distance > max_distance`) or an aggressor slope is negative.
pub fn extract_scenario(
    routed: &RoutedNet,
    tracks: &[AggressorTrack],
    model: &CouplingModel,
) -> NoiseScenario {
    assert!(
        model.kappa > 0.0 && model.min_distance > 0.0 && model.max_distance >= model.min_distance,
        "degenerate coupling model"
    );
    let tree = &routed.tree;
    let mut scenario = NoiseScenario::quiet(tree);
    for v in tree.node_ids() {
        let Some(Some((p0, p1))) = routed.segments.get(v.index()).copied() else {
            continue;
        };
        let Some(w) = tree.parent_wire(v) else {
            continue;
        };
        if w.length <= 0.0 {
            continue;
        }
        let mut factor = 0.0;
        for track in tracks {
            assert!(track.slope >= 0.0, "aggressor slope must be non-negative");
            for seg in track.path.windows(2) {
                let Some((overlap, d)) = parallel_overlap(p0, p1, seg[0], seg[1]) else {
                    continue;
                };
                if d > model.max_distance {
                    continue;
                }
                let lambda = model.kappa / d.max(model.min_distance);
                factor += (overlap / w.length) * lambda.min(1.0) * track.slope;
            }
        }
        scenario.set_factor(NodeId::from_index(v.index()), factor);
    }
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{steiner_tree_routed, NetGeometry};
    use buffopt_noise::metric;
    use buffopt_tree::{Driver, SinkSpec, Technology};

    fn straight_victim(len: f64) -> RoutedNet {
        let net = NetGeometry {
            source: Point::new(0.0, 0.0),
            driver: Driver::new(300.0, 10e-12),
            sinks: vec![(Point::new(len, 0.0), SinkSpec::new(20e-15, 1e-9, 0.8))],
        };
        steiner_tree_routed(&net, &Technology::global_layer()).expect("routed")
    }

    fn track_at(y: f64, x0: f64, x1: f64, slope: f64) -> AggressorTrack {
        AggressorTrack {
            path: vec![Point::new(x0, y), Point::new(x1, y)],
            slope,
        }
    }

    #[test]
    fn full_parallel_run_gives_kappa_over_d() {
        let routed = straight_victim(4_000.0);
        let d = 1.2;
        let mu = 7.2e9;
        let s = extract_scenario(
            &routed,
            &[track_at(d, 0.0, 4_000.0, mu)],
            &CouplingModel::default(),
        );
        let sink = routed.tree.sinks()[0];
        let expect = (0.42 / d) * mu;
        assert!(
            (s.factor(sink) - expect).abs() / expect < 1e-12,
            "factor {} vs {expect}",
            s.factor(sink)
        );
    }

    #[test]
    fn partial_overlap_scales_proportionally() {
        let routed = straight_victim(4_000.0);
        let full = extract_scenario(
            &routed,
            &[track_at(1.0, 0.0, 4_000.0, 7.2e9)],
            &CouplingModel::default(),
        );
        let half = extract_scenario(
            &routed,
            &[track_at(1.0, 1_000.0, 3_000.0, 7.2e9)],
            &CouplingModel::default(),
        );
        let sink = routed.tree.sinks()[0];
        assert!((half.factor(sink) * 2.0 - full.factor(sink)).abs() < 1.0);
    }

    #[test]
    fn perpendicular_crossing_couples_nothing() {
        let routed = straight_victim(4_000.0);
        let crossing = AggressorTrack {
            path: vec![Point::new(2_000.0, -100.0), Point::new(2_000.0, 100.0)],
            slope: 7.2e9,
        };
        let s = extract_scenario(&routed, &[crossing], &CouplingModel::default());
        let sink = routed.tree.sinks()[0];
        assert_eq!(s.factor(sink), 0.0);
    }

    #[test]
    fn distance_cutoff_and_clamp() {
        let routed = straight_victim(2_000.0);
        let sink = routed.tree.sinks()[0];
        let model = CouplingModel::default();
        // Beyond max distance: nothing.
        let far = extract_scenario(&routed, &[track_at(10.0, 0.0, 2_000.0, 7.2e9)], &model);
        assert_eq!(far.factor(sink), 0.0);
        // Below min distance: clamps to λ(min) = 0.42/0.6 = 0.7, the
        // paper's estimation-mode ratio.
        let near = extract_scenario(&routed, &[track_at(0.1, 0.0, 2_000.0, 7.2e9)], &model);
        assert!((near.factor(sink) - 0.7 * 7.2e9).abs() < 1.0);
    }

    #[test]
    fn multiple_tracks_accumulate() {
        let routed = straight_victim(3_000.0);
        let sink = routed.tree.sinks()[0];
        let t1 = track_at(1.0, 0.0, 3_000.0, 4.0e9);
        let t2 = track_at(-2.0, 0.0, 3_000.0, 8.0e9);
        let both = extract_scenario(
            &routed,
            &[t1.clone(), t2.clone()],
            &CouplingModel::default(),
        );
        let only1 = extract_scenario(&routed, &[t1], &CouplingModel::default());
        let only2 = extract_scenario(&routed, &[t2], &CouplingModel::default());
        assert!(
            (both.factor(sink) - only1.factor(sink) - only2.factor(sink)).abs() < 1.0,
            "eq. 6: aggressor currents add"
        );
    }

    #[test]
    fn noise_decreases_monotonically_with_separation() {
        let routed = straight_victim(5_000.0);
        let mut prev = f64::INFINITY;
        for d in [0.8, 1.2, 2.0, 3.5, 5.5] {
            let s = extract_scenario(
                &routed,
                &[track_at(d, 0.0, 5_000.0, 7.2e9)],
                &CouplingModel::default(),
            );
            let noise = metric::sink_noise(&routed.tree, &s)[0].noise;
            assert!(
                noise < prev,
                "noise must fall with distance: {noise} at {d}"
            );
            prev = noise;
        }
    }

    #[test]
    fn separation_distance_cross_checks_theorem1() {
        // Place the aggressor at the eq. 17 minimum separation; the
        // extracted scenario should then meet the margin with ~equality.
        use buffopt_noise::theorem1::{min_separation, Separation};
        let len = 3_000.0;
        let routed = straight_victim(len);
        let tech = Technology::global_layer();
        let model = CouplingModel::default();
        let mu = 7.2e9;
        let rso = 300.0;
        let nm = 0.8;
        let Separation::AtLeast(d) = min_separation(
            model.kappa,
            mu,
            tech.capacitance_per_micron,
            rso,
            tech.resistance_per_micron,
            len,
            0.0,
            nm,
        ) else {
            panic!("expected a finite separation");
        };
        assert!(d > model.min_distance && d < model.max_distance, "d = {d}");
        let s = extract_scenario(&routed, &[track_at(d, 0.0, len, mu)], &model);
        let noise = metric::sink_noise(&routed.tree, &s)[0].noise;
        assert!(
            (noise - nm).abs() < 1e-6,
            "at the eq. 17 distance the margin is met with equality: {noise}"
        );
    }

    #[test]
    fn noise_aware_routing_dodges_the_aggressor() {
        // The aggressor hugs the lower-L path; the upper-L is quiet. The
        // noise-aware estimator must pick the upper-L and beat the default
        // embedding's noise.
        use buffopt_tree::Technology;
        let net = NetGeometry {
            source: Point::new(0.0, 0.0),
            driver: Driver::new(300.0, 10e-12),
            sinks: vec![(
                Point::new(3_000.0, 2_000.0),
                SinkSpec::new(20e-15, 1e-9, 0.8),
            )],
        };
        let tech = Technology::global_layer();
        let model = CouplingModel::default();
        // Track along y = -1 µm: parallel to the lower-L's horizontal leg
        // (which runs at y = 0), far from the upper-L's (at y = 2000).
        let tracks = [AggressorTrack {
            path: vec![Point::new(0.0, -1.0), Point::new(3_000.0, -1.0)],
            slope: 7.2e9,
        }];
        let (aware, aware_scen) =
            noise_aware_steiner(&net, &tech, &tracks, &model).expect("routed");
        let default = steiner_tree_routed(&net, &tech).expect("routed");
        let default_scen = extract_scenario(&default, &tracks, &model);
        let n_aware = metric::sink_noise(&aware.tree, &aware_scen)[0].noise;
        let n_default = metric::sink_noise(&default.tree, &default_scen)[0].noise;
        assert!(
            n_aware < n_default / 10.0,
            "aware {n_aware} should be far below default {n_default}"
        );
        // Same wirelength either way.
        assert!((aware.tree.total_wire_length() - default.tree.total_wire_length()).abs() < 1e-9);
    }

    #[test]
    fn segment_factor_handles_degenerate_segments() {
        let tracks = [track_at(1.0, 0.0, 100.0, 1e9)];
        let model = CouplingModel::default();
        let p = Point::new(0.0, 0.0);
        assert_eq!(segment_coupling_factor(p, p, &tracks, &model), 0.0);
        let diag = Point::new(50.0, 50.0);
        assert_eq!(segment_coupling_factor(p, diag, &tracks, &model), 0.0);
        let par = Point::new(100.0, 0.0);
        assert!(segment_coupling_factor(p, par, &tracks, &model) > 0.0);
    }

    #[test]
    fn l_shaped_victim_couples_per_leg() {
        // Victim bends; an aggressor parallel to the vertical leg only
        // couples there.
        let net = NetGeometry {
            source: Point::new(0.0, 0.0),
            driver: Driver::new(300.0, 10e-12),
            sinks: vec![(
                Point::new(2_000.0, 3_000.0),
                SinkSpec::new(20e-15, 1e-9, 0.8),
            )],
        };
        let routed = steiner_tree_routed(&net, &Technology::global_layer()).expect("routed");
        let vertical_agg = AggressorTrack {
            path: vec![Point::new(2_001.0, 0.0), Point::new(2_001.0, 3_000.0)],
            slope: 7.2e9,
        };
        let s = extract_scenario(&routed, &[vertical_agg], &CouplingModel::default());
        // Find the horizontal-leg node (bend) and the sink (vertical leg).
        let sink = routed.tree.sinks()[0];
        let bend = routed.tree.parent(sink).expect("bend");
        assert_eq!(s.factor(bend), 0.0, "horizontal leg is unperturbed");
        assert!(s.factor(sink) > 0.0, "vertical leg couples");
    }
}
