//! Rectilinear Steiner-tree estimation.
//!
//! The paper assumes "the input routing tree topology is fixed or that a
//! Steiner estimation has been computed for the given net" (Section II).
//! This crate provides that estimation for the synthetic workload: a
//! Prim rectilinear MST over the pin locations with L-shape edge
//! embedding (one bend per edge), yielding a [`RoutingTree`] whose wire
//! lengths are Manhattan distances scaled by a [`Technology`].
//!
//! # Example
//!
//! ```
//! use buffopt_steiner::{NetGeometry, Point, steiner_tree};
//! use buffopt_tree::{Driver, SinkSpec, Technology};
//!
//! # fn main() -> Result<(), buffopt_tree::TreeError> {
//! let net = NetGeometry {
//!     source: Point::new(0.0, 0.0),
//!     driver: Driver::new(200.0, 20.0e-12),
//!     sinks: vec![
//!         (Point::new(3000.0, 1000.0), SinkSpec::new(15.0e-15, 1.0e-9, 0.8)),
//!         (Point::new(1000.0, 2500.0), SinkSpec::new(10.0e-15, 1.0e-9, 0.8)),
//!     ],
//! };
//! let tree = steiner_tree(&net, &Technology::global_layer())?;
//! assert_eq!(tree.sinks().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coupling;
mod mst;
mod point;

pub use mst::prim_mst;
pub use point::Point;

use buffopt_tree::{Driver, NodeId, RoutingTree, SinkSpec, Technology, TreeBuilder, TreeError};

/// A routing tree that remembers where each wire runs in the plane, so
/// coupling can be extracted geometrically ([`coupling`]).
#[derive(Debug, Clone)]
pub struct RoutedNet {
    /// The electrical routing tree.
    pub tree: RoutingTree,
    /// Per-node geometry of the parent wire as `(upper end, lower end)`
    /// points; `None` for the source and for binarization dummies.
    pub segments: Vec<Option<(Point, Point)>>,
}

/// Geometric description of a net: driver location plus sink pins.
#[derive(Debug, Clone, PartialEq)]
pub struct NetGeometry {
    /// Location of the driving gate's output pin (µm).
    pub source: Point,
    /// The driving gate.
    pub driver: Driver,
    /// Sink pins with their electrical/timing specs.
    pub sinks: Vec<(Point, SinkSpec)>,
}

impl NetGeometry {
    /// Half-perimeter of the pin bounding box (µm) — the classic net-size
    /// estimate.
    pub fn half_perimeter(&self) -> f64 {
        let xs = std::iter::once(self.source.x).chain(self.sinks.iter().map(|(p, _)| p.x));
        let ys = std::iter::once(self.source.y).chain(self.sinks.iter().map(|(p, _)| p.y));
        let (mut xmin, mut xmax, mut ymin, mut ymax) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for x in xs {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
        }
        for y in ys {
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        (xmax - xmin) + (ymax - ymin)
    }
}

/// Builds a routing tree for `net`: Prim rectilinear MST over
/// source + sinks, L-shape embedding (horizontal leg first), wires scaled
/// by `tech`. A sink that has MST children receives a co-located Steiner
/// tap so sinks stay leaves.
///
/// # Errors
///
/// Returns [`TreeError::NoSinks`] if the net has no sinks.
pub fn steiner_tree(net: &NetGeometry, tech: &Technology) -> Result<RoutingTree, TreeError> {
    steiner_tree_routed(net, tech).map(|r| r.tree)
}

/// Which leg of an L-shaped edge is routed first (from the parent end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BendPolicy {
    /// Horizontal leg first, then vertical — the classic lower-L.
    #[default]
    HorizontalFirst,
    /// Vertical leg first, then horizontal — the upper-L.
    VerticalFirst,
}

/// Like [`steiner_tree`], but also returns the planar geometry of every
/// wire for coupling extraction.
///
/// # Errors
///
/// Returns [`TreeError::NoSinks`] if the net has no sinks.
pub fn steiner_tree_routed(net: &NetGeometry, tech: &Technology) -> Result<RoutedNet, TreeError> {
    steiner_tree_routed_with(net, tech, &mut |_, _, _| BendPolicy::HorizontalFirst)
}

/// Like [`steiner_tree_routed`], with a per-edge bend-policy callback
/// `(edge index, from, to) → policy`. Both L orientations have identical
/// wirelength and RC; they differ only in *where* the wire runs, which is
/// what geometric coupling extraction cares about (see
/// [`coupling::noise_aware_steiner`]).
///
/// # Errors
///
/// Returns [`TreeError::NoSinks`] if the net has no sinks.
pub fn steiner_tree_routed_with(
    net: &NetGeometry,
    tech: &Technology,
    policy: &mut dyn FnMut(usize, Point, Point) -> BendPolicy,
) -> Result<RoutedNet, TreeError> {
    if net.sinks.is_empty() {
        return Err(TreeError::NoSinks);
    }
    // Points: 0 = source, 1.. = sinks.
    let points: Vec<Point> = std::iter::once(net.source)
        .chain(net.sinks.iter().map(|(p, _)| *p))
        .collect();
    let edges = prim_mst(&points);
    // Orient edges away from the source via BFS.
    let n = points.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut order: Vec<(usize, usize)> = Vec::new(); // (parent, child)
    let mut seen = vec![false; n];
    seen[0] = true;
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                order.push((u, v));
                queue.push_back(v);
            }
        }
    }

    let mut builder = TreeBuilder::new(net.driver);
    // Representative builder node for each point (where children attach).
    let mut rep: Vec<Option<NodeId>> = vec![None; n];
    rep[0] = Some(builder.source());
    // Per-builder-node wire geometry (index order matches node creation).
    let mut segments: Vec<Option<(Point, Point)>> = vec![None];
    // Sinks with MST children need a Steiner tap; find child counts.
    let mut child_count = vec![0usize; n];
    for &(p, _) in &order {
        child_count[p] += 1;
    }

    // Create each point's node(s) in BFS order.
    for (edge_idx, &(p, c)) in order.iter().enumerate() {
        let from = points[p];
        let to = points[c];
        let parent_node = rep[p].expect("BFS order");
        // L-shape: first leg per policy, then the other.
        let dx = (to.x - from.x).abs();
        let dy = (to.y - from.y).abs();
        let (bend, first_len, second_len) = match policy(edge_idx, from, to) {
            BendPolicy::HorizontalFirst => (Point::new(to.x, from.y), dx, dy),
            BendPolicy::VerticalFirst => (Point::new(from.x, to.y), dy, dx),
        };
        let mut attach = parent_node;
        let mut leg_start = from;
        if dx > 0.0 && dy > 0.0 {
            attach = builder.add_internal(attach, tech.wire(first_len))?;
            segments.push(Some((from, bend)));
            leg_start = bend;
        }
        let last_leg = if dx > 0.0 && dy > 0.0 {
            second_len
        } else {
            dx + dy // straight edge (one of them is zero)
        };
        let wire = tech.wire(last_leg);
        // c is always a sink index (≥ 1 maps to sinks[c-1]).
        let spec = net.sinks[c - 1].1.clone();
        if child_count[c] > 0 {
            // Steiner tap at the sink location; the pin hangs off it.
            let tap = builder.add_internal(attach, wire)?;
            segments.push(Some((leg_start, to)));
            builder.add_sink(tap, tech.wire(0.0), spec)?;
            segments.push(Some((to, to)));
            rep[c] = Some(tap);
        } else {
            let leaf = builder.add_sink(attach, wire, spec)?;
            segments.push(Some((leg_start, to)));
            rep[c] = Some(leaf);
        }
    }
    let tree = builder.build()?;
    // Binarization dummies (if any) carry no geometry.
    while segments.len() < tree.len() {
        segments.push(None);
    }
    Ok(RoutedNet { tree, segments })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(x: f64, y: f64) -> (Point, SinkSpec) {
        (Point::new(x, y), SinkSpec::new(10e-15, 1e-9, 0.8))
    }

    fn net(sinks: Vec<(Point, SinkSpec)>) -> NetGeometry {
        NetGeometry {
            source: Point::new(0.0, 0.0),
            driver: Driver::new(200.0, 10e-12),
            sinks,
        }
    }

    fn mst_length(points: &[Point]) -> f64 {
        prim_mst(points)
            .iter()
            .map(|&(a, b)| points[a].manhattan(points[b]))
            .sum()
    }

    #[test]
    fn two_pin_straight() {
        let n = net(vec![sink(5000.0, 0.0)]);
        let t = steiner_tree(&n, &Technology::global_layer()).expect("tree");
        assert_eq!(t.sinks().len(), 1);
        assert!((t.total_wire_length() - 5000.0).abs() < 1e-9);
        assert!(t.check_invariants().is_empty());
    }

    #[test]
    fn two_pin_l_shape_has_bend() {
        let n = net(vec![sink(3000.0, 2000.0)]);
        let t = steiner_tree(&n, &Technology::global_layer()).expect("tree");
        assert!((t.total_wire_length() - 5000.0).abs() < 1e-9);
        // Source, bend, sink.
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn wirelength_equals_mst_length() {
        // L-shape embedding preserves Manhattan edge lengths.
        let sinks = vec![
            sink(1000.0, 4000.0),
            sink(-2000.0, 1500.0),
            sink(3000.0, -500.0),
            sink(500.0, 500.0),
            sink(4000.0, 4000.0),
        ];
        let n = net(sinks);
        let points: Vec<Point> = std::iter::once(n.source)
            .chain(n.sinks.iter().map(|(p, _)| *p))
            .collect();
        let t = steiner_tree(&n, &Technology::global_layer()).expect("tree");
        assert!((t.total_wire_length() - mst_length(&points)).abs() < 1e-6);
        assert_eq!(t.sinks().len(), 5);
        assert!(t.check_invariants().is_empty());
    }

    #[test]
    fn coincident_sink_gets_zero_wire() {
        let n = net(vec![sink(0.0, 0.0), sink(1000.0, 0.0)]);
        let t = steiner_tree(&n, &Technology::global_layer()).expect("tree");
        assert_eq!(t.sinks().len(), 2);
        assert!((t.total_wire_length() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn chained_sinks_produce_taps() {
        // Three collinear sinks: the middle ones carry MST children, so
        // they must become taps with leaf pins.
        let n = net(vec![
            sink(1000.0, 0.0),
            sink(2000.0, 0.0),
            sink(3000.0, 0.0),
        ]);
        let t = steiner_tree(&n, &Technology::global_layer()).expect("tree");
        assert_eq!(t.sinks().len(), 3);
        for &s in t.sinks() {
            assert!(t.children(s).is_empty(), "sinks stay leaves");
        }
        assert!((t.total_wire_length() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn no_sinks_is_an_error() {
        let n = net(vec![]);
        assert!(matches!(
            steiner_tree(&n, &Technology::global_layer()),
            Err(TreeError::NoSinks)
        ));
    }

    #[test]
    fn half_perimeter() {
        let n = net(vec![sink(3000.0, -1000.0), sink(-500.0, 2000.0)]);
        assert!((n.half_perimeter() - (3500.0 + 3000.0)).abs() < 1e-9);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
            prop::collection::vec((0.0f64..10_000.0, 0.0f64..10_000.0), 1..25)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// L-shape embedding preserves total MST length exactly, the
            /// tree is well-formed, and wirelength ≥ half-perimeter.
            #[test]
            fn embedding_preserves_mst_length(pts in arb_points()) {
                let n = net(pts.iter().map(|&(x, y)| sink(x, y)).collect());
                let points: Vec<Point> = std::iter::once(n.source)
                    .chain(n.sinks.iter().map(|(p, _)| *p))
                    .collect();
                let t = steiner_tree(&n, &Technology::global_layer()).expect("tree");
                prop_assert!((t.total_wire_length() - mst_length(&points)).abs() < 1e-6);
                prop_assert!(t.check_invariants().is_empty());
                prop_assert_eq!(t.sinks().len(), n.sinks.len());
                prop_assert!(t.total_wire_length() >= n.half_perimeter() - 1e-6);
            }
        }
    }

    #[test]
    fn big_random_net_is_well_formed() {
        let mut sinks = Vec::new();
        let mut state = 0x1234_5678_u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64
        };
        for _ in 0..40 {
            sinks.push(sink(rnd(), rnd()));
        }
        let n = net(sinks);
        let t = steiner_tree(&n, &Technology::global_layer()).expect("tree");
        assert_eq!(t.sinks().len(), 40);
        assert!(t.check_invariants().is_empty());
        assert!(t.total_wire_length() >= n.half_perimeter() - 1e-9);
    }
}
