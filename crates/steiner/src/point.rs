use std::fmt;

/// A 2-D location in microns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate (µm).
    pub x: f64,
    /// Y coordinate (µm).
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates in microns.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is not finite.
    pub fn new(x: f64, y: f64) -> Self {
        assert!(x.is_finite() && y.is_finite(), "coordinates must be finite");
        Point { x, y }
    }

    /// Manhattan (rectilinear) distance to `other`, in microns.
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, -4.0);
        assert!((a.manhattan(b) - 7.0).abs() < 1e-12);
        assert!((b.manhattan(a) - 7.0).abs() < 1e-12);
        assert_eq!(a.manhattan(a), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_coordinate_panics() {
        Point::new(f64::NAN, 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1.0, 2.5)");
    }
}
