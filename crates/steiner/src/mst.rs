//! Prim's minimum spanning tree under the Manhattan metric — the
//! topology backbone of the Steiner estimation. `O(n²)`, which is exact
//! and plenty fast for net-sized point sets.

use crate::point::Point;

/// Computes the MST edges over `points` (indices into the slice) under
/// Manhattan distance. Returns `points.len() − 1` edges; an empty or
/// single-point input yields no edges.
pub fn prim_mst(points: &[Point]) -> Vec<(usize, usize)> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_link = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = points[0].manhattan(points[j]);
    }
    for _ in 1..n {
        // Closest out-of-tree point.
        let (next, _) = best_dist
            .iter()
            .enumerate()
            .filter(|&(j, _)| !in_tree[j])
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite distances"))
            .expect("some point remains");
        in_tree[next] = true;
        edges.push((best_link[next], next));
        for j in 0..n {
            if !in_tree[j] {
                let d = points[next].manhattan(points[j]);
                if d < best_dist[j] {
                    best_dist[j] = d;
                    best_link[j] = next;
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(points: &[Point], edges: &[(usize, usize)]) -> f64 {
        edges
            .iter()
            .map(|&(a, b)| points[a].manhattan(points[b]))
            .sum()
    }

    #[test]
    fn empty_and_single() {
        assert!(prim_mst(&[]).is_empty());
        assert!(prim_mst(&[Point::new(0.0, 0.0)]).is_empty());
    }

    #[test]
    fn two_points_one_edge() {
        let pts = [Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        let e = prim_mst(&pts);
        assert_eq!(e, vec![(0, 1)]);
    }

    #[test]
    fn collinear_chain() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let e = prim_mst(&pts);
        assert_eq!(e.len(), 4);
        assert!((total(&pts, &e) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn square_spanning() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
        ];
        let e = prim_mst(&pts);
        assert_eq!(e.len(), 3);
        assert!((total(&pts, &e) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn matches_exhaustive_on_small_sets() {
        // Check Prim's total against brute-force over all spanning trees
        // (via Kruskal-like enumeration of edge subsets) for 5 points.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(7.0, 2.0),
            Point::new(3.0, 9.0),
            Point::new(8.0, 8.0),
            Point::new(1.0, 4.0),
        ];
        let prim_total = total(&pts, &prim_mst(&pts));
        // All edges.
        let mut all = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                all.push((i, j));
            }
        }
        let mut best = f64::INFINITY;
        // Choose any 4 edges; keep spanning acyclic sets.
        let m = all.len();
        for mask in 0u32..(1 << m) {
            if mask.count_ones() != 4 {
                continue;
            }
            let mut parent: Vec<usize> = (0..5).collect();
            fn find(p: &mut Vec<usize>, x: usize) -> usize {
                if p[x] != x {
                    let r = find(p, p[x]);
                    p[x] = r;
                }
                p[x]
            }
            let mut ok = true;
            let mut len = 0.0;
            for (k, &(a, b)) in all.iter().enumerate() {
                if mask & (1 << k) == 0 {
                    continue;
                }
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra == rb {
                    ok = false;
                    break;
                }
                parent[ra] = rb;
                len += pts[a].manhattan(pts[b]);
            }
            if ok {
                best = best.min(len);
            }
        }
        assert!(
            (prim_total - best).abs() < 1e-9,
            "prim {prim_total} vs {best}"
        );
    }

    #[test]
    fn duplicate_points_zero_edges() {
        let pts = [
            Point::new(5.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(9.0, 5.0),
        ];
        let e = prim_mst(&pts);
        assert_eq!(e.len(), 2);
        assert!((total(&pts, &e) - 4.0).abs() < 1e-12);
    }
}
