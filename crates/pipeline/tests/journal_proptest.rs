//! Journal corruption properties: whatever single mutation hits the
//! file at rest — a truncation at any byte, a flipped bit, an injected
//! byte — `journal::load` must either refuse the whole file (header
//! damage) or recover only records that are verbatim what was appended.
//! Corruption may cost recomputes; it must never yield an altered
//! record.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use buffopt_pipeline::journal::{self, BatchJournal};
use proptest::prelude::*;

/// A fresh scratch path per test case (proptest reruns the closure many
/// times in one process).
fn scratch_path() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "buffopt-journal-prop-{}-{}.log",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Removes the journal and its quarantine sidecar.
fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(journal::sidecar_path(path));
}

/// One single-line JSON-ish record body over a small alphabet (so
/// mutations regularly land inside structure, not just padding).
fn arb_record() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..16u8, 1..40).prop_map(|picks| {
        const ALPHABET: &[u8; 16] = b"{}\":,abc0189 .-e";
        let body: String = picks
            .iter()
            .map(|&p| ALPHABET[p as usize] as char)
            .collect();
        format!("{{\"net\":\"{}\"}}", body.replace(['"', '\\'], "x"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_single_mutation_yields_only_verbatim_records(
        records in prop::collection::vec(arb_record(), 1..8),
        kind in 0u8..3,
        offset in 0usize..4096,
        bit in 0u8..8,
    ) {
        let path = scratch_path();
        let mut j = BatchJournal::open(&path).expect("open scratch journal");
        for (i, rec) in records.iter().enumerate() {
            j.append(i as u64, rec).expect("append");
        }
        drop(j);
        let pristine = std::fs::read(&path).expect("journal readable");

        // One mutation, anywhere: a torn tail (truncation), a flipped
        // bit, or an injected byte.
        let mut bytes = pristine.clone();
        match kind {
            0 => bytes.truncate(offset % (bytes.len() + 1)),
            1 => {
                let at = offset % bytes.len();
                bytes[at] ^= 1 << bit;
            }
            _ => {
                let at = offset % (bytes.len() + 1);
                bytes.insert(at, b'0' + (bit % 10));
            }
        }
        let unchanged = bytes == pristine;
        std::fs::write(&path, &bytes).expect("write mutated journal");

        match journal::load(&path) {
            // Header damage: the whole file is refused, never half-used.
            Err(e) => {
                prop_assert!(!unchanged, "a pristine journal was refused: {e}");
            }
            Ok(loaded) => {
                for (key, line) in &loaded.records {
                    let idx = *key as usize;
                    prop_assert!(idx < records.len(), "invented key {key}");
                    prop_assert_eq!(
                        line,
                        &records[idx],
                        "a recovered record must be verbatim what was appended"
                    );
                }
                if unchanged {
                    prop_assert_eq!(loaded.records.len(), records.len());
                    prop_assert_eq!(loaded.quarantined, 0);
                }
            }
        }
        cleanup(&path);
    }
}
