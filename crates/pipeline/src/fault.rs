//! Deterministic fault injection for the serving stack's chaos tests.
//!
//! A [`FaultPlan`] is a list of rules, each naming a *seam* (a point in
//! the serving stack where faults are physically possible), a trigger
//! (`nth` arming of that seam, counted by an atomic counter, or every
//! arming), and an action. The engine, worker loop, and TCP service ask
//! the plan at each seam whether a fault fires *right now*; with no plan
//! installed the checks compile down to an `Option` test.
//!
//! Triggers are counter-based rather than random, so a chaos test that
//! says "kill the worker handling the first request" is exactly
//! reproducible: same plan + same request order ⇒ same failure.
//!
//! The plan never executes anything itself — it only *reports* which
//! action fires. The seam owner performs the action (panics, stalls,
//! corrupts its output, …), because only the owner knows what "dying"
//! means at that point in the stack.

use std::sync::atomic::{AtomicU64, Ordering};

/// A point in the serving stack where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seam {
    /// The service's request-decode step (before the engine sees work).
    Decode,
    /// The worker loop, *outside* the per-net panic boundary — faults
    /// here kill the worker thread itself.
    Worker,
    /// Around the optimizer call, *inside* the per-net panic boundary —
    /// faults here must be contained to one record.
    Optimize,
    /// A state-commit boundary: a journal append, a cache insert, or a
    /// memo store. Faults here corrupt *state at rest*, which the
    /// integrity layer must detect on the next read instead of serving.
    Store,
}

/// What happens when a rule fires. The seam owner interprets the action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the seam. Inside the worker's panic boundary this becomes
    /// a `failed` record; outside it, a dead worker thread.
    Panic,
    /// Sleep this many milliseconds before proceeding (drives requests
    /// past their deadline without any wall-clock nondeterminism in the
    /// *decision* to stall).
    StallMs(u64),
    /// Return a structurally wrong result (the engine's integrity check
    /// must catch it): the worker emits a record for the wrong net name.
    WrongOutput,
    /// Fail with a synthetic I/O error message instead of computing.
    IoError,
    /// Make the worker thread exit its loop without replying — a clean
    /// thread death the supervisor must notice and repair.
    KillWorker,
    /// Force the run's arena memory budget down to `at_bytes` with
    /// degrade-in-place on, simulating a host under memory pressure: the
    /// DP must clamp its frontier and still produce an audit-feasible
    /// solution.
    MemPressure {
        /// The forced [`buffopt::RunBudget::max_arena_bytes`] cap.
        at_bytes: u64,
    },
    /// Trip the run's cancel token (supervisor reason) at the seam, as
    /// if an operator or watchdog killed the request mid-flight.
    CancelRun,
    /// Flip one byte of the journal line being appended (a torn or
    /// bit-rotted write): the CRC check at resume must quarantine the
    /// line and recompute the net.
    CorruptJournalLine,
    /// Flip one bit of the solution-cache entry just inserted: the
    /// verify-on-hit check must evict it and report a miss.
    BitFlipCacheEntry,
    /// Flip one bit of a stored memo frontier row: the verify-on-hit
    /// check must evict the entry and fall back to a cold merge.
    BitFlipMemoEntry,
    /// Truncate the framed request being decoded: the service must
    /// answer with a typed `bad_frame` error, never a parse guess.
    TruncateFrame,
}

/// One injection rule: fire `action` at `seam` on its `nth` arming
/// (1-based); `nth == 0` fires on *every* arming.
#[derive(Debug)]
pub struct FaultRule {
    seam: Seam,
    nth: u64,
    action: FaultAction,
    fired: AtomicU64,
}

/// A deterministic set of injection rules plus per-seam arming counters.
///
/// Construction is builder-style:
///
/// ```
/// use buffopt_pipeline::fault::{FaultAction, FaultPlan, Seam};
/// let plan = FaultPlan::new()
///     .on_nth(Seam::Worker, 1, FaultAction::KillWorker)
///     .on_nth(Seam::Optimize, 3, FaultAction::StallMs(50));
/// assert_eq!(plan.fire(Seam::Worker), Some(FaultAction::KillWorker));
/// assert_eq!(plan.fire(Seam::Worker), None, "one-shot rule");
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    decode_arms: AtomicU64,
    worker_arms: AtomicU64,
    optimize_arms: AtomicU64,
    store_arms: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no rule ever fires).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a one-shot rule firing on the `nth` (1-based) arming of
    /// `seam`; `nth == 0` makes the rule fire on every arming.
    pub fn on_nth(mut self, seam: Seam, nth: u64, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            seam,
            nth,
            action,
            fired: AtomicU64::new(0),
        });
        self
    }

    fn counter(&self, seam: Seam) -> &AtomicU64 {
        match seam {
            Seam::Decode => &self.decode_arms,
            Seam::Worker => &self.worker_arms,
            Seam::Optimize => &self.optimize_arms,
            Seam::Store => &self.store_arms,
        }
    }

    /// Arms `seam` once (incrementing its counter) and returns the action
    /// of the first matching rule, if any fires on this arming.
    pub fn fire(&self, seam: Seam) -> Option<FaultAction> {
        let n = self.counter(seam).fetch_add(1, Ordering::SeqCst) + 1;
        for rule in &self.rules {
            if rule.seam != seam {
                continue;
            }
            let fires = if rule.nth == 0 {
                true
            } else {
                rule.nth == n && rule.fired.swap(1, Ordering::SeqCst) == 0
            };
            if fires {
                return Some(rule.action);
            }
        }
        None
    }

    /// How many times `seam` has been armed so far.
    pub fn armed(&self, seam: Seam) -> u64 {
        self.counter(seam).load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_rules_fire_exactly_once_at_their_count() {
        let plan = FaultPlan::new()
            .on_nth(Seam::Worker, 2, FaultAction::Panic)
            .on_nth(Seam::Worker, 4, FaultAction::KillWorker);
        assert_eq!(plan.fire(Seam::Worker), None);
        assert_eq!(plan.fire(Seam::Worker), Some(FaultAction::Panic));
        assert_eq!(plan.fire(Seam::Worker), None);
        assert_eq!(plan.fire(Seam::Worker), Some(FaultAction::KillWorker));
        assert_eq!(plan.fire(Seam::Worker), None);
        assert_eq!(plan.armed(Seam::Worker), 5);
    }

    #[test]
    fn zero_nth_fires_every_time() {
        let plan = FaultPlan::new().on_nth(Seam::Optimize, 0, FaultAction::IoError);
        for _ in 0..3 {
            assert_eq!(plan.fire(Seam::Optimize), Some(FaultAction::IoError));
        }
    }

    #[test]
    fn seams_count_independently() {
        let plan = FaultPlan::new().on_nth(Seam::Decode, 1, FaultAction::IoError);
        assert_eq!(plan.fire(Seam::Worker), None);
        assert_eq!(plan.fire(Seam::Optimize), None);
        assert_eq!(
            plan.fire(Seam::Decode),
            Some(FaultAction::IoError),
            "other seams' arms do not advance the decode counter"
        );
    }

    #[test]
    fn resource_faults_carry_their_payload() {
        let plan = FaultPlan::new()
            .on_nth(
                Seam::Optimize,
                1,
                FaultAction::MemPressure { at_bytes: 4096 },
            )
            .on_nth(Seam::Optimize, 2, FaultAction::CancelRun);
        assert_eq!(
            plan.fire(Seam::Optimize),
            Some(FaultAction::MemPressure { at_bytes: 4096 })
        );
        assert_eq!(plan.fire(Seam::Optimize), Some(FaultAction::CancelRun));
        assert_eq!(plan.fire(Seam::Optimize), None);
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new();
        for seam in [Seam::Decode, Seam::Worker, Seam::Optimize, Seam::Store] {
            assert_eq!(plan.fire(seam), None);
        }
    }

    #[test]
    fn store_seam_counts_independently() {
        let plan = FaultPlan::new().on_nth(Seam::Store, 2, FaultAction::CorruptJournalLine);
        assert_eq!(plan.fire(Seam::Optimize), None);
        assert_eq!(plan.fire(Seam::Store), None);
        assert_eq!(
            plan.fire(Seam::Store),
            Some(FaultAction::CorruptJournalLine)
        );
        assert_eq!(plan.armed(Seam::Store), 2);
    }
}
