//! Crash-safe batch checkpoint journal.
//!
//! A batch run appends one line per *completed* net — `<key-hex> <record
//! JSON>` — and fsyncs after each append, so a killed process loses at
//! most the record being written when the power went out. A resumed run
//! loads the journal, skips every net whose content key is present, and
//! splices the journaled record lines into the final output **verbatim**,
//! so the resumed output is byte-identical to what the interrupted run
//! would have produced (each record's measured `wall_ms` is whatever the
//! run that actually computed it measured, exactly as two uninterrupted
//! runs differ from each other).
//!
//! Keys are content digests (the same `(config, name, net text)` digest
//! the solution cache uses), not file names or indices — so a resumed run
//! recomputes a net whose *content* changed since the checkpoint, and a
//! renamed-but-identical batch directory still hits its checkpoints.
//!
//! The loader tolerates a truncated final line (the signature of a crash
//! mid-append): it is ignored and that net recomputed. Any other
//! malformed line is reported as an error — a journal that does not look
//! like ours should never be silently half-used.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::Outcome;

/// An append-only, fsync-per-record checkpoint journal.
pub struct BatchJournal {
    file: File,
}

impl BatchJournal {
    /// Opens (creating if absent) the journal at `path` for appending.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(BatchJournal { file })
    }

    /// Appends one completed record and fsyncs. `record_json` must be the
    /// single-line JSON object emitted for the net (no newline).
    pub fn append(&mut self, key: u64, record_json: &str) -> std::io::Result<()> {
        debug_assert!(!record_json.contains('\n'), "records are single lines");
        // One write call for the whole line: concurrent appenders aren't
        // supported, but a crash can then only truncate the *last* line,
        // which the loader tolerates.
        let line = format!("{key:016x} {record_json}\n");
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// The journaled records of a previous (possibly interrupted) run:
/// content key → the record line exactly as it was journaled.
pub fn load(path: &Path) -> std::io::Result<HashMap<u64, String>> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => return Err(e),
    }
    let mut map = HashMap::new();
    let complete = match text.rfind('\n') {
        Some(last) => &text[..=last],
        // No newline at all: nothing but (at most) a truncated first
        // line, i.e. an empty journal.
        None => "",
    };
    // Anything after the last newline is a crashed append's partial
    // line; it is simply not in `complete` and that net gets recomputed.
    for (i, line) in complete.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let parsed = line.split_once(' ').and_then(|(hex, record)| {
            let key = u64::from_str_radix(hex, 16).ok()?;
            (hex.len() == 16 && record.starts_with('{') && record.ends_with('}'))
                .then_some((key, record))
        });
        match parsed {
            Some((key, record)) => {
                map.insert(key, record.to_string());
            }
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("journal line {} is not `<key16> {{record}}`", i + 1),
                ));
            }
        }
    }
    Ok(map)
}

/// Classifies a journaled record line without a full JSON parse:
/// extracts the `"outcome"` token and the `"buffers"` count (0 when
/// null/absent) so a resumed batch can fold spliced lines into the same
/// summary and exit code a fresh run computes. Returns `None` when the
/// line does not carry a recognizable outcome — the caller should treat
/// that as `failed`.
///
/// The flat scan is safe against outcome-like text inside the record's
/// string fields because our serializer always emits the outcome first,
/// right after the net name, and net names escape their quotes.
pub fn classify(record_json: &str) -> Option<(Outcome, usize)> {
    let rest = record_json.split("\"outcome\":\"").nth(1)?;
    let token = rest.split('"').next()?;
    let outcome = [
        Outcome::Optimized,
        Outcome::Degraded,
        Outcome::Infeasible,
        Outcome::ParseError,
        Outcome::Failed,
    ]
    .into_iter()
    .find(|o| o.as_str() == token)?;
    let buffers = record_json
        .split("\"buffers\":")
        .nth(1)
        .and_then(|r| {
            let digits: String = r.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .unwrap_or(0);
    Some((outcome, buffers))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "buffopt-journal-{}-{tag}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn roundtrips_records_by_key() {
        let p = temp_path("roundtrip");
        let _ = std::fs::remove_file(&p);
        {
            let mut j = BatchJournal::open(&p).expect("open");
            j.append(7, r#"{"net":"a","outcome":"optimized"}"#)
                .expect("append");
            j.append(u64::MAX, r#"{"net":"b","outcome":"failed"}"#)
                .expect("append");
        }
        let map = load(&p).expect("load");
        assert_eq!(map.len(), 2);
        assert_eq!(map[&7], r#"{"net":"a","outcome":"optimized"}"#);
        assert!(map[&u64::MAX].contains("\"b\""));
        std::fs::remove_file(&p).expect("cleanup");
    }

    #[test]
    fn missing_journal_is_empty_not_an_error() {
        let p = temp_path("missing");
        let _ = std::fs::remove_file(&p);
        assert!(load(&p).expect("load").is_empty());
    }

    #[test]
    fn truncated_final_line_is_ignored() {
        let p = temp_path("truncated");
        std::fs::write(
            &p,
            "0000000000000007 {\"net\":\"a\"}\n000000000000000a {\"net\":\"b\"",
        )
        .expect("write");
        let map = load(&p).expect("load");
        assert_eq!(map.len(), 1, "the crashed append is dropped");
        assert!(map.contains_key(&7));
        std::fs::remove_file(&p).expect("cleanup");
    }

    #[test]
    fn foreign_content_is_rejected_loudly() {
        let p = temp_path("foreign");
        std::fs::write(&p, "this is not a journal\n").expect("write");
        let err = load(&p).expect_err("rejects");
        assert!(err.to_string().contains("journal line 1"), "{err}");
        std::fs::remove_file(&p).expect("cleanup");
    }

    #[test]
    fn classify_reads_outcome_and_buffers() {
        let line = crate::optimize_input(
            &crate::NetInput::Failed {
                name: "n\"et".into(),
                error: "bad".into(),
            },
            &crate::PipelineConfig::new(buffopt_buffers::BufferLibrary::new()),
        )
        .to_json();
        assert_eq!(classify(&line), Some((Outcome::ParseError, 0)));
        assert_eq!(
            classify(r#"{"net":"a","outcome":"optimized","buffers":7}"#),
            Some((Outcome::Optimized, 7))
        );
        assert_eq!(
            classify(r#"{"net":"a","outcome":"degraded","buffers":null}"#),
            Some((Outcome::Degraded, 0))
        );
        assert_eq!(classify("{\"net\":\"a\"}"), None, "no outcome token");
        assert_eq!(classify(r#"{"outcome":"sideways"}"#), None, "unknown token");
    }

    #[test]
    fn resumed_journal_keeps_appending() {
        let p = temp_path("reopen");
        let _ = std::fs::remove_file(&p);
        {
            let mut j = BatchJournal::open(&p).expect("open");
            j.append(1, "{\"net\":\"a\"}").expect("append");
        }
        {
            let mut j = BatchJournal::open(&p).expect("reopen");
            j.append(2, "{\"net\":\"b\"}").expect("append");
        }
        assert_eq!(load(&p).expect("load").len(), 2);
        std::fs::remove_file(&p).expect("cleanup");
    }
}
