//! Crash-safe, corruption-aware batch checkpoint journal.
//!
//! A batch run appends one line per *completed* net — `<key-hex>
//! <crc-hex> <record JSON>` — and fsyncs after each append, so a killed
//! process loses at most the record being written when the power went
//! out. A resumed run loads the journal, skips every net whose content
//! key is present, and splices the journaled record lines into the final
//! output **verbatim**, so the resumed output is byte-identical to what
//! the interrupted run would have produced (each record's measured
//! `wall_ms` is whatever the run that actually computed it measured,
//! exactly as two uninterrupted runs differ from each other).
//!
//! Keys are content digests (the same `(config, name, net text)` digest
//! the solution cache uses), not file names or indices — so a resumed run
//! recomputes a net whose *content* changed since the checkpoint, and a
//! renamed-but-identical batch directory still hits its checkpoints.
//!
//! **Format v2** hardens every line against the storage fault model:
//!
//! - The first line is the format header [`FORMAT_HEADER`]. A journal
//!   whose first line is anything else is refused outright — a foreign
//!   or old-format file should never be silently half-used.
//! - Every record line carries a CRC-64/XZ over `<key-hex> <record>`,
//!   so a bit flip anywhere in the key *or* the record is detected.
//! - A line that fails its check — torn, bit-rotted, malformed, or not
//!   UTF-8 — is appended verbatim to the `<path>.quarantine` sidecar
//!   and simply omitted from the loaded map: the affected net is
//!   recomputed and the resumed output stays byte-identical to an
//!   uninterrupted run, instead of the loader erroring out mid-file.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use buffopt_integrity::{crc64, quarantine_append, quarantine_path};

use crate::fault::{FaultAction, FaultPlan, Seam};
use crate::Outcome;

/// First line of every v2 journal. Version bumps change this string,
/// so an old-format file is refused with a distinct message instead of
/// a per-line parse error.
pub const FORMAT_HEADER: &str = "#buffopt-journal v2";

/// An append-only, fsync-per-record checkpoint journal.
pub struct BatchJournal {
    file: File,
    fault: Option<Arc<FaultPlan>>,
}

impl BatchJournal {
    /// Opens (creating if absent) the journal at `path` for appending.
    /// A fresh (empty) file gets the format header written and fsynced
    /// immediately, so even a run killed before its first record leaves
    /// a well-formed journal behind.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut journal = BatchJournal { file, fault: None };
        if journal.file.metadata()?.len() == 0 {
            journal.file.write_all(FORMAT_HEADER.as_bytes())?;
            journal.file.write_all(b"\n")?;
            journal.file.sync_data()?;
        }
        Ok(journal)
    }

    /// Attaches a fault plan: each append arms [`Seam::Store`], and a
    /// [`FaultAction::CorruptJournalLine`] flips one byte of the line
    /// on its way to disk.
    pub fn with_fault(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Appends one completed record and fsyncs. `record_json` must be the
    /// single-line JSON object emitted for the net (no newline).
    pub fn append(&mut self, key: u64, record_json: &str) -> std::io::Result<()> {
        debug_assert!(!record_json.contains('\n'), "records are single lines");
        let body = format!("{key:016x} {record_json}");
        // The CRC covers the key hex as well as the record, so a flipped
        // key bit cannot splice a valid record under the wrong digest.
        let mut line =
            format!("{key:016x} {:016x} {record_json}\n", crc64(body.as_bytes())).into_bytes();
        if let Some(plan) = &self.fault {
            if let Some(FaultAction::CorruptJournalLine) = plan.fire(Seam::Store) {
                let mid = line.len() / 2;
                line[mid] ^= 0x40;
            }
        }
        // One write call for the whole line: concurrent appenders aren't
        // supported, but a crash can then only truncate the *last* line,
        // which the loader quarantines and recomputes.
        self.file.write_all(&line)?;
        self.file.sync_data()
    }
}

/// The result of loading a (possibly interrupted or corrupted) journal.
#[derive(Debug)]
pub struct LoadedJournal {
    /// Content key → the record line exactly as it was journaled.
    pub records: HashMap<u64, String>,
    /// How many lines failed their integrity check and were appended to
    /// the quarantine sidecar (their nets will be recomputed).
    pub quarantined: usize,
}

impl LoadedJournal {
    fn empty() -> Self {
        LoadedJournal {
            records: HashMap::new(),
            quarantined: 0,
        }
    }
}

/// The quarantine sidecar path for a journal at `path`.
pub fn sidecar_path(path: &Path) -> PathBuf {
    quarantine_path(path)
}

/// Loads the journaled records of a previous (possibly interrupted)
/// run. A missing file is an empty journal. A file whose first line is
/// not the v2 [`FORMAT_HEADER`] is refused with a distinct error (it is
/// foreign, or from an older format — never half-use it). Every record
/// line that fails its CRC or shape check is quarantined to the
/// `.quarantine` sidecar and counted, not fatal.
pub fn load(path: &Path) -> std::io::Result<LoadedJournal> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadedJournal::empty()),
        Err(e) => return Err(e),
    }
    if bytes.is_empty() {
        return Ok(LoadedJournal::empty());
    }
    let (first, rest) = match bytes.iter().position(|&b| b == b'\n') {
        Some(nl) => (&bytes[..nl], &bytes[nl + 1..]),
        // No newline at all: a crash while writing the very first line.
        // If it is a prefix of our header this is our (empty) journal;
        // anything else is foreign content.
        None => (&bytes[..], &[][..]),
    };
    if first != FORMAT_HEADER.as_bytes() {
        if bytes.iter().position(|&b| b == b'\n').is_none()
            && FORMAT_HEADER.as_bytes().starts_with(first)
        {
            return Ok(LoadedJournal::empty());
        }
        let msg = match std::str::from_utf8(first) {
            Ok(line) if line.starts_with("#buffopt-journal ") => format!(
                "unsupported journal format `{}` (this build reads `{FORMAT_HEADER}`)",
                line.trim_end()
            ),
            _ => format!("not a buffopt journal (first line is not `{FORMAT_HEADER}`)"),
        };
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, msg));
    }

    let mut out = LoadedJournal::empty();
    let mut remaining = rest;
    loop {
        let (line, next) = match remaining.iter().position(|&b| b == b'\n') {
            Some(nl) => (&remaining[..nl], &remaining[nl + 1..]),
            // Content after the last newline is a crashed append's
            // partial line: quarantine it and recompute that net.
            None => (remaining, &[][..]),
        };
        let complete = !next.is_empty() || remaining.last() == Some(&b'\n');
        if line.is_empty() {
            if next.is_empty() {
                break;
            }
            remaining = next;
            continue;
        }
        match parse_record_line(line, complete) {
            Some((key, record)) => {
                out.records.insert(key, record.to_string());
            }
            None => {
                quarantine_append(path, line)?;
                out.quarantined += 1;
            }
        }
        if next.is_empty() {
            break;
        }
        remaining = next;
    }
    Ok(out)
}

/// Validates one record line — `<key16> <crc16> {record}` with a CRC
/// over `<key16> {record}` — returning the key and the verbatim record
/// on success. `complete` is false for a torn final line, which can
/// never pass (its CRC covered bytes that were lost).
fn parse_record_line(line: &[u8], complete: bool) -> Option<(u64, &str)> {
    if !complete || line.len() < 35 || line[16] != b' ' || line[33] != b' ' {
        return None;
    }
    let line = std::str::from_utf8(line).ok()?;
    let key_hex = &line[..16];
    let key = u64::from_str_radix(key_hex, 16).ok()?;
    let crc = u64::from_str_radix(&line[17..33], 16).ok()?;
    let record = &line[34..];
    if !record.starts_with('{') || !record.ends_with('}') {
        return None;
    }
    let mut h = buffopt_integrity::Crc64::new();
    h.update(key_hex.as_bytes());
    h.update(b" ");
    h.update(record.as_bytes());
    (h.finish() == crc).then_some((key, record))
}

/// Classifies a journaled record line without a full JSON parse:
/// extracts the `"outcome"` token and the `"buffers"` count (0 when
/// null/absent) so a resumed batch can fold spliced lines into the same
/// summary and exit code a fresh run computes. Returns `None` when the
/// line does not carry a recognizable outcome — the caller should treat
/// that as `failed`.
///
/// The flat scan is safe against outcome-like text inside the record's
/// string fields because our serializer always emits the outcome first,
/// right after the net name, and net names escape their quotes.
pub fn classify(record_json: &str) -> Option<(Outcome, usize)> {
    let rest = record_json.split("\"outcome\":\"").nth(1)?;
    let token = rest.split('"').next()?;
    let outcome = [
        Outcome::Optimized,
        Outcome::Degraded,
        Outcome::Infeasible,
        Outcome::ParseError,
        Outcome::Failed,
    ]
    .into_iter()
    .find(|o| o.as_str() == token)?;
    let buffers = record_json
        .split("\"buffers\":")
        .nth(1)
        .and_then(|r| {
            let digits: String = r.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .unwrap_or(0);
    Some((outcome, buffers))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "buffopt-journal-{}-{tag}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn clean(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(sidecar_path(p));
    }

    #[test]
    fn roundtrips_records_by_key() {
        let p = temp_path("roundtrip");
        clean(&p);
        {
            let mut j = BatchJournal::open(&p).expect("open");
            j.append(7, r#"{"net":"a","outcome":"optimized"}"#)
                .expect("append");
            j.append(u64::MAX, r#"{"net":"b","outcome":"failed"}"#)
                .expect("append");
        }
        let loaded = load(&p).expect("load");
        assert_eq!(loaded.quarantined, 0);
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.records[&7], r#"{"net":"a","outcome":"optimized"}"#);
        assert!(loaded.records[&u64::MAX].contains("\"b\""));
        clean(&p);
    }

    #[test]
    fn fresh_journal_starts_with_the_format_header() {
        let p = temp_path("header");
        clean(&p);
        drop(BatchJournal::open(&p).expect("open"));
        let text = std::fs::read_to_string(&p).expect("read");
        assert_eq!(text, format!("{FORMAT_HEADER}\n"));
        // Reopening does not write a second header.
        drop(BatchJournal::open(&p).expect("reopen"));
        assert_eq!(std::fs::read_to_string(&p).expect("read"), text);
        clean(&p);
    }

    #[test]
    fn missing_journal_is_empty_not_an_error() {
        let p = temp_path("missing");
        clean(&p);
        assert!(load(&p).expect("load").records.is_empty());
    }

    #[test]
    fn truncated_final_line_is_quarantined() {
        let p = temp_path("truncated");
        clean(&p);
        {
            let mut j = BatchJournal::open(&p).expect("open");
            j.append(7, "{\"net\":\"a\"}").expect("append");
            j.append(10, "{\"net\":\"b\"}").expect("append");
        }
        // Tear the final append mid-line, as a crash would.
        let full = std::fs::read(&p).expect("read");
        std::fs::write(&p, &full[..full.len() - 5]).expect("truncate");
        let loaded = load(&p).expect("load");
        assert_eq!(loaded.records.len(), 1, "the crashed append is dropped");
        assert!(loaded.records.contains_key(&7));
        assert_eq!(loaded.quarantined, 1);
        let side = std::fs::read(sidecar_path(&p)).expect("sidecar written");
        assert!(
            side.starts_with(b"000000000000000a "),
            "torn line preserved"
        );
        clean(&p);
    }

    #[test]
    fn any_single_byte_flip_quarantines_only_that_line() {
        let p = temp_path("bitflip");
        clean(&p);
        {
            let mut j = BatchJournal::open(&p).expect("open");
            j.append(1, "{\"net\":\"a\",\"outcome\":\"optimized\"}")
                .expect("append");
            j.append(2, "{\"net\":\"b\",\"outcome\":\"optimized\"}")
                .expect("append");
            j.append(3, "{\"net\":\"c\",\"outcome\":\"optimized\"}")
                .expect("append");
        }
        let pristine = std::fs::read(&p).expect("read");
        let header_len = FORMAT_HEADER.len() + 1;
        // Flip one byte at every offset of the middle record line.
        let line2_start = pristine[header_len..]
            .iter()
            .position(|&b| b == b'\n')
            .expect("line 1 ends")
            + header_len
            + 1;
        let line2_end = pristine[line2_start..]
            .iter()
            .position(|&b| b == b'\n')
            .expect("line 2 ends")
            + line2_start;
        for at in line2_start..line2_end {
            let mut copy = pristine.clone();
            copy[at] ^= 0x04;
            clean(&p);
            std::fs::write(&p, &copy).expect("write");
            let loaded = load(&p).expect("load never errors on a bad record line");
            assert_eq!(loaded.quarantined, 1, "flip at byte {at}");
            assert_eq!(loaded.records.len(), 2, "flip at byte {at}");
            assert!(loaded.records.contains_key(&1));
            assert!(loaded.records.contains_key(&3));
        }
        clean(&p);
    }

    #[test]
    fn foreign_content_is_rejected_loudly() {
        let p = temp_path("foreign");
        clean(&p);
        std::fs::write(&p, "this is not a journal\n").expect("write");
        let err = load(&p).expect_err("rejects");
        assert!(err.to_string().contains("not a buffopt journal"), "{err}");
        clean(&p);
    }

    #[test]
    fn old_format_version_is_refused_with_a_distinct_message() {
        let p = temp_path("oldformat");
        clean(&p);
        std::fs::write(
            &p,
            "#buffopt-journal v1\n0000000000000007 {\"net\":\"a\"}\n",
        )
        .expect("write");
        let err = load(&p).expect_err("rejects");
        let msg = err.to_string();
        assert!(msg.contains("unsupported journal format"), "{msg}");
        assert!(msg.contains("v1"), "{msg}");
        assert!(msg.contains("v2"), "{msg}");
        clean(&p);
    }

    #[test]
    fn torn_header_is_an_empty_journal() {
        let p = temp_path("tornheader");
        clean(&p);
        std::fs::write(&p, &FORMAT_HEADER.as_bytes()[..9]).expect("write");
        assert!(load(&p).expect("load").records.is_empty());
        clean(&p);
    }

    #[test]
    fn corrupt_journal_line_fault_flips_a_byte_on_disk() {
        let p = temp_path("fault");
        clean(&p);
        let plan =
            Arc::new(FaultPlan::new().on_nth(Seam::Store, 2, FaultAction::CorruptJournalLine));
        {
            let mut j = BatchJournal::open(&p)
                .expect("open")
                .with_fault(plan.clone());
            j.append(1, "{\"net\":\"a\"}").expect("append");
            j.append(2, "{\"net\":\"b\"}").expect("append");
            j.append(3, "{\"net\":\"c\"}").expect("append");
        }
        assert_eq!(plan.armed(Seam::Store), 3);
        let loaded = load(&p).expect("load");
        assert_eq!(loaded.quarantined, 1, "the corrupted line is detected");
        assert_eq!(loaded.records.len(), 2);
        assert!(!loaded.records.contains_key(&2));
        clean(&p);
    }

    #[test]
    fn classify_reads_outcome_and_buffers() {
        let line = crate::optimize_input(
            &crate::NetInput::Failed {
                name: "n\"et".into(),
                error: "bad".into(),
            },
            &crate::PipelineConfig::new(buffopt_buffers::BufferLibrary::new()),
        )
        .to_json();
        assert_eq!(classify(&line), Some((Outcome::ParseError, 0)));
        assert_eq!(
            classify(r#"{"net":"a","outcome":"optimized","buffers":7}"#),
            Some((Outcome::Optimized, 7))
        );
        assert_eq!(
            classify(r#"{"net":"a","outcome":"degraded","buffers":null}"#),
            Some((Outcome::Degraded, 0))
        );
        assert_eq!(classify("{\"net\":\"a\"}"), None, "no outcome token");
        assert_eq!(classify(r#"{"outcome":"sideways"}"#), None, "unknown token");
    }

    #[test]
    fn resumed_journal_keeps_appending() {
        let p = temp_path("reopen");
        clean(&p);
        {
            let mut j = BatchJournal::open(&p).expect("open");
            j.append(1, "{\"net\":\"a\"}").expect("append");
        }
        {
            let mut j = BatchJournal::open(&p).expect("reopen");
            j.append(2, "{\"net\":\"b\"}").expect("append");
        }
        assert_eq!(load(&p).expect("load").records.len(), 2);
        clean(&p);
    }
}
