//! Fault-isolated batch optimization pipeline.
//!
//! The paper's production story (Section VI) is a sweep over the 500
//! noisiest nets of a microprocessor design. At that scale a single
//! pathological net must not take down the batch: this crate wraps each
//! per-net run in a panic boundary and a [`RunBudget`], walks a graceful-
//! degradation ladder when the preferred formulation fails, and emits a
//! structured outcome record per net so the batch is diagnosable after
//! the fact.
//!
//! # The degradation ladder
//!
//! Each net descends until a rung holds:
//!
//! 1. [`Rung::Problem3`] — BuffOpt's production mode: fewest buffers
//!    meeting *both* noise and timing. Serves the net when slack ≥ 0.
//! 2. [`Rung::Problem2`] — maximum slack under noise constraints; accepted
//!    even when timing is unmeetable (negative slack ⇒ degraded).
//! 3. [`Rung::NoiseOnly`] — Algorithm 2 continuous noise avoidance on the
//!    unsegmented tree: ignores timing entirely, but leaves the net
//!    functionally correct.
//! 4. [`Rung::Unbuffered`] — nothing worked; the net is left untouched and
//!    the record carries an unbuffered noise/timing diagnosis.
//!
//! Every rung runs inside `catch_unwind` and under the per-net budget, so
//! a panic or a runaway candidate explosion in one net degrades *that*
//! net and the batch keeps going.
//!
//! [`RunBudget`]: buffopt::RunBudget

#![warn(missing_docs)]

pub mod fault;
pub mod journal;

use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use buffopt::buffopt::{self as algo3, BuffOptOptions};
use buffopt::{
    algorithm2, audit, Assignment, BudgetResource, CancelToken, CoreError, DpWorkspace, RunBudget,
    Solution,
};
use buffopt_buffers::BufferLibrary;
use buffopt_noise::NoiseScenario;
use buffopt_tree::{segment, RoutingTree};

/// One net handed to [`run_batch`]: either a parsed tree + scenario, or a
/// record of why parsing failed (kept so the batch report covers every
/// input file).
#[derive(Debug, Clone)]
pub enum NetInput {
    /// A net ready to optimize.
    Parsed {
        /// Net name (usually the file stem).
        name: String,
        /// The routing tree (unsegmented; the pipeline segments it).
        tree: RoutingTree,
        /// The noise scenario for `tree`.
        scenario: NoiseScenario,
    },
    /// A net that failed to parse; `error` is the parser's message.
    Failed {
        /// Net name (usually the file stem).
        name: String,
        /// Why parsing failed.
        error: String,
    },
}

impl NetInput {
    /// The net's name, whichever variant carries it.
    pub fn name(&self) -> &str {
        match self {
            NetInput::Parsed { name, .. } | NetInput::Failed { name, .. } => name,
        }
    }
}

/// Batch-wide configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The buffer library every net is optimized against.
    pub library: BufferLibrary,
    /// Segment wires to at most this length (µm) before the DP runs;
    /// `None` means the trees are already segmented.
    pub max_segment: Option<f64>,
    /// Per-net wall-clock limit; each net gets a fresh deadline.
    pub time_limit: Option<Duration>,
    /// Per-node candidate-list cap (see [`RunBudget::max_candidates`]).
    pub max_candidates: Option<usize>,
    /// Tree-size cap (see [`RunBudget::max_tree_nodes`]).
    pub max_tree_nodes: Option<usize>,
    /// Per-run provenance-arena byte cap (see
    /// [`RunBudget::max_arena_bytes`]). Setting it also turns on
    /// degrade-in-place for the DP rungs: under arena or candidate-cap
    /// pressure the DP clamps its frontier and finishes with a feasible
    /// but possibly suboptimal solution, tagged in the record, instead of
    /// erroring.
    pub max_arena_bytes: Option<usize>,
    /// Conservative 4-D pruning in the DP rungs.
    pub conservative: bool,
    /// Polarity-aware DP rungs.
    pub polarity: bool,
    /// Cross-request subtree memo table shared by every net run under
    /// this config (`None` = no memoization). Ignored by the DP whenever
    /// `max_arena_bytes` is set — arena-byte degrade is whole-run state a
    /// subtree entry cannot bind (see DESIGN §13). Note that seeded runs
    /// return bitwise-identical *solutions* but may report different
    /// peak statistics, so batch drivers wanting byte-stable JSONL keep
    /// this off.
    pub memo: Option<std::sync::Arc<buffopt::MemoTable>>,
}

impl PipelineConfig {
    /// A config with the given library, 500 µm segmenting, and no
    /// resource limits.
    pub fn new(library: BufferLibrary) -> Self {
        PipelineConfig {
            library,
            max_segment: Some(500.0),
            time_limit: None,
            max_candidates: None,
            max_tree_nodes: None,
            max_arena_bytes: None,
            conservative: false,
            polarity: false,
            memo: None,
        }
    }

    /// The budget for one net. The time limit is carried as a relative
    /// `Duration`; [`optimize_net`] arms it when the net actually starts
    /// running, so a net that waited in a queue keeps its whole
    /// allowance.
    fn budget(&self) -> RunBudget {
        RunBudget {
            deadline: None,
            time_limit: self.time_limit,
            max_candidates: self.max_candidates,
            max_tree_nodes: self.max_tree_nodes,
            max_arena_bytes: self.max_arena_bytes,
            degrade: self.max_arena_bytes.is_some(),
            cancel: CancelToken::new(),
        }
    }
}

/// Which ladder rung produced (or last diagnosed) a net's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// BuffOpt Problem 3: fewest buffers meeting noise and timing.
    Problem3,
    /// BuffOpt Problem 2: maximum slack under noise constraints.
    Problem2,
    /// Algorithm 2: continuous noise avoidance, timing ignored.
    NoiseOnly,
    /// No optimizer succeeded; unbuffered diagnosis only.
    Unbuffered,
}

impl Rung {
    /// Stable lowercase identifier used in the JSONL records.
    pub fn as_str(self) -> &'static str {
        match self {
            Rung::Problem3 => "problem3",
            Rung::Problem2 => "problem2",
            Rung::NoiseOnly => "noise_only",
            Rung::Unbuffered => "unbuffered",
        }
    }
}

/// Final classification of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Noise and timing both met.
    Optimized,
    /// Noise met, timing not (or unknown, for the noise-only rung).
    Degraded,
    /// Noise constraints cannot be satisfied; net left unbuffered.
    Infeasible,
    /// The input never parsed.
    ParseError,
    /// Unexpected failure (panic or tree transformation error) on every
    /// rung, including the diagnosis.
    Failed,
}

impl Outcome {
    /// Stable lowercase identifier used in the JSONL records.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Optimized => "optimized",
            Outcome::Degraded => "degraded",
            Outcome::Infeasible => "infeasible",
            Outcome::ParseError => "parse_error",
            Outcome::Failed => "failed",
        }
    }
}

/// A rung that was tried and did not serve the net, with the reason.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The rung that failed.
    pub rung: Rung,
    /// Why it failed (error display, panic payload, or "timing unmet").
    pub error: String,
}

/// The structured per-net record (one JSONL line each).
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// Net name.
    pub name: String,
    /// Final classification.
    pub outcome: Outcome,
    /// The rung that served the net (`None` for parse errors / failures).
    pub rung: Option<Rung>,
    /// Terminal error for `infeasible` / `parse_error` / `failed` nets.
    pub error: Option<String>,
    /// Rungs tried before the serving one, with why each fell through.
    pub attempts: Vec<Attempt>,
    /// Wall-clock time spent on this net (all rungs).
    pub wall: Duration,
    /// Peak DP candidate-list size across the successful rung (0 when no
    /// DP rung succeeded).
    pub candidate_peak: usize,
    /// Peak per-node count of merge rows the successful DP rung actually
    /// enumerated (0 when no DP rung succeeded). The gap to
    /// `candidate_peak` is how much the fused merge-prune saved on this
    /// net.
    pub merge_peak: usize,
    /// Total merge rows the successful DP rung enumerated across the net
    /// (0 when no DP rung succeeded).
    pub merge_enumerated: usize,
    /// Total merge pairs the successful DP rung skipped without
    /// enumerating them — polarity/buffer-cap blocks plus predictive
    /// witness skips. `merge_enumerated + merge_pruned` equals the sum of
    /// raw |L|·|R| merge products over the net.
    pub merge_pruned: usize,
    /// High-water mark of the provenance arena across the successful DP
    /// rung, in bytes (0 when no DP rung succeeded).
    pub arena_peak: usize,
    /// Which resource cap the serving DP rung degraded under, when the
    /// budget ran in degrade-in-place mode; `None` for a full-search
    /// result. A degraded solution is still audit-feasible.
    pub degraded_by: Option<BudgetResource>,
    /// Buffers inserted by the serving solution.
    pub buffers: Option<usize>,
    /// Audited timing slack of the serving solution (seconds).
    pub slack: Option<f64>,
    /// Audited worst noise headroom of the serving solution (volts,
    /// normalized); negative means a violation remains.
    pub worst_headroom: Option<f64>,
    /// The serving solution, for callers that apply it (not serialized).
    pub solution: Option<Solution>,
}

impl NetOutcome {
    fn shell(name: &str, outcome: Outcome) -> Self {
        NetOutcome {
            name: name.to_string(),
            outcome,
            rung: None,
            error: None,
            attempts: Vec::new(),
            wall: Duration::ZERO,
            candidate_peak: 0,
            merge_peak: 0,
            merge_enumerated: 0,
            merge_pruned: 0,
            arena_peak: 0,
            degraded_by: None,
            buffers: None,
            slack: None,
            worst_headroom: None,
            solution: None,
        }
    }

    /// This record as one JSON object (no trailing newline).
    ///
    /// Schema (all keys always present):
    /// `net`, `outcome`, `rung`, `degraded_by`, `error`, `wall_ms`,
    /// `candidate_peak`, `merge_peak`, `merge_enumerated`, `merge_pruned`,
    /// `arena_peak`, `buffers`, `slack`, `worst_headroom`, `attempts`
    /// (array of `{rung, error}`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"net\":");
        push_json_str(&mut s, &self.name);
        s.push_str(",\"outcome\":\"");
        s.push_str(self.outcome.as_str());
        s.push_str("\",\"rung\":");
        match self.rung {
            Some(r) => {
                s.push('"');
                s.push_str(r.as_str());
                s.push('"');
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"degraded_by\":");
        match self.degraded_by {
            Some(r) => {
                s.push('"');
                s.push_str(resource_slug(r));
                s.push('"');
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"error\":");
        match &self.error {
            Some(e) => push_json_str(&mut s, e),
            None => s.push_str("null"),
        }
        s.push_str(",\"wall_ms\":");
        push_json_f64(&mut s, self.wall.as_secs_f64() * 1e3);
        s.push_str(",\"candidate_peak\":");
        s.push_str(&self.candidate_peak.to_string());
        s.push_str(",\"merge_peak\":");
        s.push_str(&self.merge_peak.to_string());
        s.push_str(",\"merge_enumerated\":");
        s.push_str(&self.merge_enumerated.to_string());
        s.push_str(",\"merge_pruned\":");
        s.push_str(&self.merge_pruned.to_string());
        s.push_str(",\"arena_peak\":");
        s.push_str(&self.arena_peak.to_string());
        s.push_str(",\"buffers\":");
        match self.buffers {
            Some(b) => s.push_str(&b.to_string()),
            None => s.push_str("null"),
        }
        s.push_str(",\"slack\":");
        match self.slack {
            Some(v) => push_json_f64(&mut s, v),
            None => s.push_str("null"),
        }
        s.push_str(",\"worst_headroom\":");
        match self.worst_headroom {
            Some(v) => push_json_f64(&mut s, v),
            None => s.push_str("null"),
        }
        s.push_str(",\"attempts\":[");
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"rung\":\"");
            s.push_str(a.rung.as_str());
            s.push_str("\",\"error\":");
            push_json_str(&mut s, &a.error);
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Stable lowercase identifier for a budget resource in JSONL records.
fn resource_slug(r: BudgetResource) -> &'static str {
    match r {
        BudgetResource::Candidates => "candidates",
        BudgetResource::TreeNodes => "tree_nodes",
        BudgetResource::ArenaBytes => "arena_bytes",
        _ => "resource",
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:e}` prints valid JSON exponent notation ("1.5e-9").
        out.push_str(&format!("{v:e}"));
    } else {
        out.push_str("null");
    }
}

/// Everything a batch run produced.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One record per input net, in input order.
    pub outcomes: Vec<NetOutcome>,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
}

/// Aggregate counts over a [`BatchReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Nets in the batch.
    pub total: usize,
    /// Noise and timing met.
    pub optimized: usize,
    /// Served by a lower rung (noise clean, timing unmet/unknown).
    pub degraded: usize,
    /// Noise-infeasible, left unbuffered.
    pub infeasible: usize,
    /// Inputs that never parsed.
    pub parse_errors: usize,
    /// Unexpected failures (every rung panicked or errored).
    pub failed: usize,
    /// Total buffers inserted across serving solutions.
    pub buffers: usize,
}

impl BatchReport {
    /// Aggregate counts.
    pub fn summary(&self) -> BatchSummary {
        let mut s = BatchSummary::default();
        for o in &self.outcomes {
            s.count(o.outcome, o.buffers.unwrap_or(0));
        }
        s
    }

    /// All records as JSON lines (one object per line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&o.to_json());
            out.push('\n');
        }
        out
    }

    /// The process exit code a batch driver should report: worst outcome
    /// wins — 3 parse/failure, 2 infeasible, 1 degraded, 0 all optimized.
    pub fn exit_code(&self) -> i32 {
        self.summary().exit_code()
    }
}

impl BatchSummary {
    /// Folds one record's classification into the counts. Lets drivers
    /// that assemble output from mixed sources (journaled lines spliced
    /// next to freshly computed records) build the same aggregate a
    /// [`BatchReport`] would.
    pub fn count(&mut self, outcome: Outcome, buffers: usize) {
        self.total += 1;
        match outcome {
            Outcome::Optimized => self.optimized += 1,
            Outcome::Degraded => self.degraded += 1,
            Outcome::Infeasible => self.infeasible += 1,
            Outcome::ParseError => self.parse_errors += 1,
            Outcome::Failed => self.failed += 1,
        }
        self.buffers += buffers;
    }

    /// The process exit code for these counts: worst outcome wins —
    /// 3 parse/failure, 2 infeasible, 1 degraded, 0 all optimized.
    pub fn exit_code(&self) -> i32 {
        if self.parse_errors + self.failed > 0 {
            3
        } else if self.infeasible > 0 {
            2
        } else if self.degraded > 0 {
            1
        } else {
            0
        }
    }
}

impl std::fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nets: {} optimized, {} degraded, {} infeasible, \
             {} parse errors, {} failed; {} buffers inserted",
            self.total,
            self.optimized,
            self.degraded,
            self.infeasible,
            self.parse_errors,
            self.failed,
            self.buffers
        )
    }
}

/// Runs `f` inside a panic boundary; a panic becomes an `Err` message.
fn guarded<T>(f: impl FnOnce() -> Result<T, CoreError>) -> Result<T, String> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!("panic: {}", panic_message(&payload))),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string payload".to_string()
    }
}

/// Optimizes one net down the degradation ladder. Never panics and never
/// runs past the configured budget (plus one bounded DP step).
pub fn optimize_net(
    name: &str,
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    cfg: &PipelineConfig,
) -> NetOutcome {
    optimize_net_with(&mut DpWorkspace::new(), name, tree, scenario, cfg)
}

/// [`optimize_net`] with a caller-owned [`DpWorkspace`], so batch drivers
/// and server workers amortize the DP scratch across nets. Rungs run
/// inside `catch_unwind`; a workspace is fully reset at the start of every
/// run, so reusing one after a panicked net is safe.
pub fn optimize_net_with(
    ws: &mut DpWorkspace,
    name: &str,
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    cfg: &PipelineConfig,
) -> NetOutcome {
    optimize_net_cancellable(ws, name, tree, scenario, cfg, CancelToken::new())
}

/// When `cancel` trips, the in-flight rung unwinds at its next stride
/// checkpoint and remaining rungs are skipped; the record comes back as
/// `failed` with `cancelled: <reason>`.
fn optimize_net_cancellable(
    ws: &mut DpWorkspace,
    name: &str,
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    cfg: &PipelineConfig,
    cancel: CancelToken,
) -> NetOutcome {
    let start = Instant::now();
    // Arm the deadline now — the net is being dequeued and starts running
    // this instant. All rungs share the one armed deadline (and the one
    // cancel token).
    let budget = {
        let mut b = cfg.budget();
        b.cancel = cancel;
        b.armed()
    };
    let mut out = NetOutcome::shell(name, Outcome::Failed);

    // Segment for the DP rungs. Algorithm 2 (rung 3) works on the raw
    // tree, so a segmentation failure only skips rungs 1–2.
    let segmented: Result<(RoutingTree, NoiseScenario), String> = match cfg.max_segment {
        None => Ok((tree.clone(), scenario.clone())),
        Some(max_seg) => match guarded(|| {
            let seg = segment::segment_wires(tree, max_seg)?;
            let s = scenario.for_segmented(&seg);
            Ok((seg.tree, s))
        }) {
            Ok(pair) => Ok(pair),
            Err(e) => Err(format!("segmentation failed: {e}")),
        },
    };

    let options = BuffOptOptions {
        conservative_pruning: cfg.conservative,
        polarity_aware: cfg.polarity,
        budget: budget.clone(),
        memo: cfg.memo.clone(),
        ..BuffOptOptions::default()
    };

    if let Ok((work_tree, work_scenario)) = &segmented {
        // Rung 1 — Problem 3: fewest buffers meeting noise AND timing.
        match guarded(|| {
            algo3::min_buffers_with(ws, work_tree, work_scenario, &cfg.library, &options)
        }) {
            Ok(sol) if sol.slack >= 0.0 => {
                return finish(
                    ws,
                    out,
                    Outcome::Optimized,
                    Rung::Problem3,
                    sol,
                    work_tree,
                    work_scenario,
                    &cfg.library,
                    start,
                );
            }
            Ok(sol) if sol.degraded_by.is_some() => {
                // Resource pressure already tightened this run's search;
                // lower rungs share the same budget and would hit the same
                // wall. Serve the feasible-but-suboptimal result and record
                // which cap tripped instead of rerunning.
                return finish(
                    ws,
                    out,
                    Outcome::Degraded,
                    Rung::Problem3,
                    sol,
                    work_tree,
                    work_scenario,
                    &cfg.library,
                    start,
                );
            }
            Ok(sol) => out.attempts.push(Attempt {
                rung: Rung::Problem3,
                error: format!("timing unmet: best noise-clean slack {:e} s", sol.slack),
            }),
            Err(e) => out.attempts.push(Attempt {
                rung: Rung::Problem3,
                error: e,
            }),
        }
        if let Some(rec) = cancelled_record(&budget, &mut out, start) {
            return rec;
        }

        // Rung 2 — Problem 2: maximize slack under noise; negative slack
        // is accepted as a degraded (noise-clean) result.
        match guarded(|| algo3::optimize_with(ws, work_tree, work_scenario, &cfg.library, &options))
        {
            Ok(sol) => {
                let outcome = if sol.slack >= 0.0 {
                    Outcome::Optimized
                } else {
                    Outcome::Degraded
                };
                return finish(
                    ws,
                    out,
                    outcome,
                    Rung::Problem2,
                    sol,
                    work_tree,
                    work_scenario,
                    &cfg.library,
                    start,
                );
            }
            Err(e) => out.attempts.push(Attempt {
                rung: Rung::Problem2,
                error: e,
            }),
        }
    } else if let Err(e) = &segmented {
        out.attempts.push(Attempt {
            rung: Rung::Problem3,
            error: e.clone(),
        });
    }
    if let Some(rec) = cancelled_record(&budget, &mut out, start) {
        return rec;
    }

    // Rung 3 — Algorithm 2 noise-only, continuous positions on the raw
    // tree (independent of segmentation, so it also rescues nets whose
    // segmentation failed).
    match guarded(|| {
        algorithm2::avoid_noise_budgeted_with(ws, tree, scenario, &cfg.library, &budget)
    }) {
        Ok(sol) => {
            let audit_result = guarded(|| {
                let noise = audit::noise_summary_with(
                    ws.analysis(),
                    &sol.tree,
                    &sol.scenario,
                    &cfg.library,
                    &sol.assignment,
                )?;
                let delay = audit::delay_summary_with(
                    ws.analysis(),
                    &sol.tree,
                    &cfg.library,
                    &sol.assignment,
                )?;
                Ok((noise.worst_headroom, delay.slack))
            });
            out.outcome = Outcome::Degraded;
            out.rung = Some(Rung::NoiseOnly);
            out.buffers = Some(sol.inserted());
            if let Ok((headroom, slack)) = audit_result {
                out.worst_headroom = Some(headroom);
                out.slack = Some(slack);
            }
            out.wall = start.elapsed();
            return out;
        }
        Err(e) => out.attempts.push(Attempt {
            rung: Rung::NoiseOnly,
            error: e,
        }),
    }
    if let Some(rec) = cancelled_record(&budget, &mut out, start) {
        return rec;
    }

    // Rung 4 — unbuffered diagnosis: report how bad the untouched net is.
    match guarded(|| {
        let empty = Assignment::empty(tree);
        let noise = audit::noise_summary_with(ws.analysis(), tree, scenario, &cfg.library, &empty)?;
        let delay = audit::delay_summary_with(ws.analysis(), tree, &cfg.library, &empty)?;
        Ok((noise.worst_headroom, delay.slack))
    }) {
        Ok((headroom, slack)) => {
            out.outcome = Outcome::Infeasible;
            out.rung = Some(Rung::Unbuffered);
            out.error = Some(format!(
                "no rung succeeded; unbuffered worst noise headroom {headroom:e}, slack {slack:e} s"
            ));
            out.buffers = Some(0);
            out.worst_headroom = Some(headroom);
            out.slack = Some(slack);
        }
        Err(e) => {
            out.outcome = Outcome::Failed;
            out.error = Some(format!("diagnosis failed: {e}"));
        }
    }
    out.wall = start.elapsed();
    out
}

/// When the run's cancel token has tripped, takes `out` and returns the
/// terminal `failed` record: nobody is waiting for the result, so the
/// remaining rungs are skipped rather than run to completion.
fn cancelled_record(
    budget: &RunBudget,
    out: &mut NetOutcome,
    start: Instant,
) -> Option<NetOutcome> {
    let reason = budget.cancel.cancelled()?;
    let mut rec = std::mem::replace(out, NetOutcome::shell("", Outcome::Failed));
    rec.outcome = Outcome::Failed;
    rec.error = Some(format!("cancelled: {reason}"));
    rec.wall = start.elapsed();
    Some(rec)
}

/// Builds the success record for a DP rung, auditing noise headroom
/// through the workspace's pooled analysis tables.
#[allow(clippy::too_many_arguments)]
fn finish(
    ws: &mut DpWorkspace,
    mut out: NetOutcome,
    outcome: Outcome,
    rung: Rung,
    sol: Solution,
    tree: &RoutingTree,
    scenario: &NoiseScenario,
    lib: &BufferLibrary,
    start: Instant,
) -> NetOutcome {
    out.outcome = outcome;
    out.rung = Some(rung);
    out.buffers = Some(sol.buffers);
    out.slack = Some(sol.slack);
    out.candidate_peak = sol.peak_candidates;
    out.merge_peak = sol.peak_merge_product;
    out.merge_enumerated = sol.merge_products_enumerated;
    out.merge_pruned = sol.merge_products_pruned;
    out.arena_peak = sol.peak_arena_bytes;
    out.degraded_by = sol.degraded_by;
    if let Ok(headroom) = guarded(|| {
        Ok(
            audit::noise_summary_with(ws.analysis(), tree, scenario, lib, &sol.assignment)?
                .worst_headroom,
        )
    }) {
        out.worst_headroom = Some(headroom);
    }
    out.solution = Some(sol);
    out.wall = start.elapsed();
    out
}

/// Optimizes one [`NetInput`], whichever variant it is: parsed nets run
/// [`optimize_net`], parse failures become their `parse_error` record.
/// This is the `Send`-safe per-net entry point worker pools call — all
/// the types involved are plain owned data (`Send + Sync`), so inputs
/// can be fanned out across threads and the records collected back.
pub fn optimize_input(input: &NetInput, cfg: &PipelineConfig) -> NetOutcome {
    optimize_input_with(&mut DpWorkspace::new(), input, cfg)
}

/// [`optimize_input`] with a caller-owned [`DpWorkspace`] (see
/// [`optimize_net_with`]).
pub fn optimize_input_with(
    ws: &mut DpWorkspace,
    input: &NetInput,
    cfg: &PipelineConfig,
) -> NetOutcome {
    optimize_input_with_cancel(ws, input, cfg, &CancelToken::new())
}

/// [`optimize_input_with`] under a caller-held [`CancelToken`]: a server
/// that learns mid-run that nobody wants the answer (deadline expiry,
/// client disconnect, shutdown) trips the token, the run unwinds at its
/// next stride checkpoint — microseconds, not the next per-net boundary —
/// and the record comes back `failed` with `cancelled: <reason>`.
pub fn optimize_input_with_cancel(
    ws: &mut DpWorkspace,
    input: &NetInput,
    cfg: &PipelineConfig,
    cancel: &CancelToken,
) -> NetOutcome {
    match input {
        NetInput::Parsed {
            name,
            tree,
            scenario,
        } => optimize_net_cancellable(ws, name, tree, scenario, cfg, cancel.clone()),
        NetInput::Failed { name, error } => {
            let mut o = NetOutcome::shell(name, Outcome::ParseError);
            o.error = Some(error.clone());
            o
        }
    }
}

/// Verdict of [`reverify_outcome`]'s independent post-hoc audit.
#[derive(Debug, Clone, PartialEq)]
pub enum Reverify {
    /// The audit re-derived the record's slack and noise headroom.
    Consistent,
    /// The record carries nothing to audit (parse errors, failures,
    /// noise-only and unbuffered rungs carry no DP solution).
    NotApplicable,
    /// The audit disagrees with the record — the record was corrupted
    /// somewhere between computation and serving, or the computation
    /// itself was wrong.
    Mismatch(String),
}

/// Relative comparison for audited figures. The audit runs the same
/// deterministic Elmore/noise math as the optimizer, so agreement is
/// expected to the last few ulps; the tolerance only absorbs benign
/// reassociation, not corruption (a single flipped mantissa bit high in
/// a float is ~2^-52 · 2^k relative — far above 1e-6 once the bit is
/// above the noise floor this checks at).
fn reverify_close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1e-30)
}

/// Independently re-derives a served record's audited figures and
/// compares them against what the record claims.
///
/// This is the sampled re-verification hook (`--verify-sample-rate`):
/// given the *original* input and the record as served — whether freshly
/// computed or replayed from a cache — it re-segments the tree exactly as
/// [`optimize_net`] would, re-runs the delay and noise audits against the
/// record's solution, and reports whether the record's `slack` and
/// `worst_headroom` survive. A checksum proves bytes didn't rot; this
/// proves the *semantics* still hold, which also catches corruption that
/// predates checksumming (see `SolutionCache`'s verify-on-hit caveat).
///
/// Only DP-rung records carry a [`Solution`] to audit; everything else is
/// [`Reverify::NotApplicable`].
pub fn reverify_outcome(
    ws: &mut DpWorkspace,
    input: &NetInput,
    cfg: &PipelineConfig,
    out: &NetOutcome,
) -> Reverify {
    let (tree, scenario) = match input {
        NetInput::Parsed { tree, scenario, .. } => (tree, scenario),
        NetInput::Failed { .. } => return Reverify::NotApplicable,
    };
    let sol = match (&out.solution, out.rung) {
        (Some(sol), Some(Rung::Problem3 | Rung::Problem2)) => sol,
        _ => return Reverify::NotApplicable,
    };
    let audited = guarded(|| {
        // Rebuild the exact tree the serving DP rung ran on (segmentation
        // is deterministic, so this reproduces it bit-for-bit).
        let (work_tree, work_scenario) = match cfg.max_segment {
            None => (tree.clone(), scenario.clone()),
            Some(max_seg) => {
                let seg = segment::segment_wires(tree, max_seg)?;
                let s = scenario.for_segmented(&seg);
                (seg.tree, s)
            }
        };
        let noise = audit::noise_summary_with(
            ws.analysis(),
            &work_tree,
            &work_scenario,
            &cfg.library,
            &sol.assignment,
        )?;
        let delay =
            audit::delay_summary_with(ws.analysis(), &work_tree, &cfg.library, &sol.assignment)?;
        Ok((noise.worst_headroom, delay.slack))
    });
    let (headroom, slack) = match audited {
        Ok(v) => v,
        Err(e) => return Reverify::Mismatch(format!("audit failed: {e}")),
    };
    if let Some(recorded) = out.slack {
        if !reverify_close(recorded, slack) {
            return Reverify::Mismatch(format!(
                "slack mismatch: record says {recorded:e} s, audit says {slack:e} s"
            ));
        }
    }
    if let Some(recorded) = out.worst_headroom {
        if !reverify_close(recorded, headroom) {
            return Reverify::Mismatch(format!(
                "worst_headroom mismatch: record says {recorded:e}, audit says {headroom:e}"
            ));
        }
    }
    if out.buffers != Some(sol.buffers) {
        return Reverify::Mismatch(format!(
            "buffer count mismatch: record says {:?}, solution inserts {}",
            out.buffers, sol.buffers
        ));
    }
    Reverify::Consistent
}

// The concurrency layer relies on these being shareable across worker
// threads; fail compilation loudly if a future change breaks that.
#[allow(dead_code)]
fn _assert_send_sync() {
    fn ok<T: Send + Sync>() {}
    ok::<NetInput>();
    ok::<PipelineConfig>();
    ok::<NetOutcome>();
    ok::<BatchReport>();
}

/// State behind [`hush_panics`]: how many guards are live and the hook
/// they displaced.
type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

struct HushState {
    depth: usize,
    prev: Option<PanicHook>,
}

static HUSH: std::sync::Mutex<HushState> = std::sync::Mutex::new(HushState {
    depth: 0,
    prev: None,
});

/// Keeps the process-wide panic hook silenced while alive; see
/// [`hush_panics`].
pub struct PanicHush(());

/// Silences the default panic hook until the returned guard drops.
///
/// Every per-net rung runs inside `catch_unwind`, so a panicking net is
/// contained — but the default hook still prints a backtrace *before*
/// unwinding reaches the boundary, and in a parallel batch every worker
/// sprays its own. Batch drivers and worker pools hold one of these
/// guards for the duration of the run. Guards are reference-counted, so
/// overlapping batches (or a server engine plus an ad-hoc batch) compose:
/// the original hook is restored only when the last guard drops.
pub fn hush_panics() -> PanicHush {
    let mut st = HUSH.lock().unwrap_or_else(|e| e.into_inner());
    // `prev` may be left stashed by a guard that dropped mid-unwind (see
    // `Drop`); in that case the no-op hook is still installed and the
    // original must not be overwritten.
    if st.depth == 0 && st.prev.is_none() {
        st.prev = Some(panic::take_hook());
        panic::set_hook(Box::new(|_| {}));
    }
    st.depth += 1;
    PanicHush(())
}

impl Drop for PanicHush {
    fn drop(&mut self) {
        let mut st = HUSH.lock().unwrap_or_else(|e| e.into_inner());
        st.depth -= 1;
        // `set_hook` panics on a panicking thread, which would turn a
        // guard dropped during unwind into a process abort. Leave the
        // no-op hook installed and `prev` stashed; the next guard (or
        // this one's non-panicking sibling) completes the restoration.
        if st.depth == 0 && !std::thread::panicking() {
            if let Some(prev) = st.prev.take() {
                panic::set_hook(prev);
            }
        }
    }
}

/// Runs the whole batch with the default panic hook silenced (see
/// [`hush_panics`]), so per-net panics do not spray backtraces over the
/// batch progress output.
pub fn run_batch(inputs: &[NetInput], cfg: &PipelineConfig) -> BatchReport {
    let start = Instant::now();
    let _hush = hush_panics();
    // One workspace for the whole batch: candidate lists, arenas, and
    // frontiers grow to the largest net once and are reused thereafter.
    let mut ws = DpWorkspace::new();
    let outcomes = inputs
        .iter()
        .map(|input| optimize_input_with(&mut ws, input, cfg))
        .collect();
    BatchReport {
        outcomes,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffopt_buffers::catalog;
    use buffopt_tree::{Driver, SinkSpec, Technology, TreeBuilder};

    fn estimation(tree: &RoutingTree) -> NoiseScenario {
        NoiseScenario::estimation(tree, 0.7, 7.2e9)
    }

    /// A plain two-pin net; `rat` controls timing difficulty.
    fn two_pin(len: f64, rat: f64, margin: f64) -> RoutingTree {
        let tech = Technology::global_layer();
        let mut b = TreeBuilder::new(Driver::new(300.0, 10e-12));
        b.add_sink(
            b.source(),
            tech.wire(len),
            SinkSpec::new(20e-15, rat, margin),
        )
        .expect("sink");
        b.build().expect("tree")
    }

    /// A net with a lumped (zero-length) 2 pF / 100 Ω load at the sink:
    /// its own coupled noise beats every buffer margin in the catalog, so
    /// no insertion anywhere can quiet it — genuinely noise-infeasible.
    /// (A *distributed* wire never is: Algorithm 2 slides a buffer
    /// arbitrarily close to the sink and rescues any positive margin.)
    fn lumped_pin() -> RoutingTree {
        let tech = Technology::global_layer();
        let mut b = TreeBuilder::new(Driver::new(300.0, 10e-12));
        let elbow = b
            .add_internal(b.source(), tech.wire(5_000.0))
            .expect("stem");
        b.add_sink(
            elbow,
            buffopt_tree::Wire::from_rc(100.0, 2e-12, 0.0),
            SinkSpec::new(20e-15, 2e-9, 0.8),
        )
        .expect("lumped sink");
        b.build().expect("tree")
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig::new(catalog::ibm_like())
    }

    #[test]
    fn healthy_net_is_optimized_on_rung_one() {
        let t = two_pin(12_000.0, 3e-9, 0.8);
        let o = optimize_net("healthy", &t, &estimation(&t), &cfg());
        assert_eq!(o.outcome, Outcome::Optimized);
        assert_eq!(o.rung, Some(Rung::Problem3));
        assert!(o.attempts.is_empty(), "{:?}", o.attempts);
        assert!(o.slack.unwrap() >= 0.0);
        assert!(o.worst_headroom.unwrap() >= 0.0);
        assert!(o.candidate_peak > 0);
        assert!(o.solution.is_some());
    }

    #[test]
    fn impossible_timing_degrades_to_problem_two() {
        let t = two_pin(20_000.0, 1e-12, 0.8); // RAT below flight time
        let o = optimize_net("tight", &t, &estimation(&t), &cfg());
        assert_eq!(o.outcome, Outcome::Degraded);
        assert_eq!(o.rung, Some(Rung::Problem2));
        assert_eq!(o.attempts.len(), 1);
        assert_eq!(o.attempts[0].rung, Rung::Problem3);
        assert!(o.slack.unwrap() < 0.0);
        assert!(o.worst_headroom.unwrap() >= 0.0, "noise still clean");
    }

    #[test]
    fn hopeless_margin_lands_on_unbuffered_diagnosis() {
        // A lumped load whose noise floor beats any buffer margin: no
        // insertion satisfies it (NoiseUnfixable / NoFeasibleCandidate on
        // every rung).
        let t = lumped_pin();
        let o = optimize_net("doomed", &t, &estimation(&t), &cfg());
        assert_eq!(o.outcome, Outcome::Infeasible);
        assert_eq!(o.rung, Some(Rung::Unbuffered));
        assert_eq!(o.buffers, Some(0));
        assert!(o.worst_headroom.unwrap() < 0.0, "diagnosis shows violation");
        assert!(o.attempts.len() >= 3, "{:?}", o.attempts);
        assert!(o.error.as_deref().unwrap().contains("headroom"));
    }

    #[test]
    fn tiny_candidate_budget_is_reported_not_fatal() {
        let t = two_pin(20_000.0, 2e-9, 0.8);
        let mut c = cfg();
        c.max_candidates = Some(1); // even a sink list of 1 survives, but
                                    // any insertion overflows
        let o = optimize_net("capped", &t, &estimation(&t), &c);
        // DP rungs die on the budget; Algorithm 2 holds ≤1 candidate on a
        // chain, so the net degrades to noise-only instead of failing.
        assert_eq!(o.outcome, Outcome::Degraded);
        assert_eq!(o.rung, Some(Rung::NoiseOnly));
        assert!(
            o.attempts
                .iter()
                .any(|a| a.error.contains("budget") || a.error.contains("cap")),
            "{:?}",
            o.attempts
        );
    }

    #[test]
    fn tree_node_budget_blocks_dp_rungs() {
        let t = two_pin(20_000.0, 2e-9, 0.8);
        let mut c = cfg();
        c.max_tree_nodes = Some(3); // segmented tree is far larger
        let o = optimize_net("small-cap", &t, &estimation(&t), &c);
        assert!(o.attempts.iter().any(|a| a.error.contains("tree nodes")));
        assert_ne!(o.outcome, Outcome::Failed);
    }

    #[test]
    fn expired_deadline_yields_typed_error_not_hang() {
        let t = two_pin(20_000.0, 2e-9, 0.8);
        let mut c = cfg();
        c.time_limit = Some(Duration::ZERO);
        let start = Instant::now();
        let o = optimize_net("deadline", &t, &estimation(&t), &c);
        assert!(start.elapsed() < Duration::from_secs(10), "no hang");
        assert!(
            o.attempts.iter().any(|a| a.error.contains("deadline")),
            "{:?}",
            o.attempts
        );
    }

    #[test]
    fn guarded_turns_panics_into_errors() {
        let r: Result<(), String> = guarded(|| panic!("boom {}", 42));
        assert_eq!(r.unwrap_err(), "panic: boom 42");
        let r: Result<(), String> = guarded(|| Err(CoreError::EmptyLibrary));
        assert!(r.unwrap_err().contains("empty"));
        assert_eq!(guarded(|| Ok(7)).unwrap(), 7);
    }

    /// Tests that install or observe the process-wide panic hook must not
    /// overlap; everything touching the hook in this binary locks this.
    static HOOK_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn hush_guard_nests_and_restores_the_hook() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let _serial = HOOK_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {
            FIRED.fetch_add(1, Ordering::SeqCst);
        }));
        {
            let outer = hush_panics();
            let inner = hush_panics();
            let _ = panic::catch_unwind(|| panic!("quiet"));
            drop(inner);
            // Still hushed while the outer guard lives.
            let _ = panic::catch_unwind(|| panic!("still quiet"));
            assert_eq!(FIRED.load(Ordering::SeqCst), 0, "hook silenced");
            drop(outer);
        }
        let _ = panic::catch_unwind(|| panic!("loud again"));
        assert_eq!(FIRED.load(Ordering::SeqCst), 1, "hook restored");
        panic::set_hook(prev);
    }

    #[test]
    fn optimize_input_covers_both_variants() {
        let healthy = two_pin(12_000.0, 3e-9, 0.8);
        let parsed = NetInput::Parsed {
            name: "x".into(),
            scenario: estimation(&healthy),
            tree: healthy,
        };
        assert_eq!(parsed.name(), "x");
        let o = optimize_input(&parsed, &cfg());
        assert_eq!(o.outcome, Outcome::Optimized);
        let failed = NetInput::Failed {
            name: "y".into(),
            error: "line 9: nope".into(),
        };
        assert_eq!(failed.name(), "y");
        let o = optimize_input(&failed, &cfg());
        assert_eq!(o.outcome, Outcome::ParseError);
        assert_eq!(o.error.as_deref(), Some("line 9: nope"));
    }

    #[test]
    fn batch_covers_every_input_and_exit_codes_rank() {
        let _serial = HOOK_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let healthy = two_pin(12_000.0, 3e-9, 0.8);
        let doomed = lumped_pin();
        let inputs = vec![
            NetInput::Parsed {
                name: "a".into(),
                scenario: estimation(&healthy),
                tree: healthy,
            },
            NetInput::Failed {
                name: "b".into(),
                error: "line 3: gibberish".into(),
            },
            NetInput::Parsed {
                name: "c".into(),
                scenario: estimation(&doomed),
                tree: doomed,
            },
        ];
        let report = run_batch(&inputs, &cfg());
        assert_eq!(report.outcomes.len(), 3);
        let s = report.summary();
        assert_eq!(
            (s.optimized, s.parse_errors, s.infeasible),
            (1, 1, 1),
            "{s}"
        );
        assert_eq!(report.exit_code(), 3, "parse error dominates");

        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"outcome\":\"parse_error\""));
        assert!(jsonl.contains("\"net\":\"a\""));
    }

    #[test]
    fn json_escaping_is_sound() {
        let mut o = NetOutcome::shell("we\"ird\\name\n", Outcome::ParseError);
        o.error = Some("tab\there".into());
        let j = o.to_json();
        assert!(j.contains(r#""net":"we\"ird\\name\n""#), "{j}");
        assert!(j.contains(r#""error":"tab\there""#), "{j}");
        assert!(j.contains("\"degraded_by\":null"), "{j}");
        assert!(j.contains("\"arena_peak\":0"), "{j}");
        // Non-finite floats serialize as null, not as invalid JSON.
        o.slack = Some(f64::INFINITY);
        assert!(o.to_json().contains("\"slack\":null"));
        o.degraded_by = Some(BudgetResource::ArenaBytes);
        assert!(o.to_json().contains("\"degraded_by\":\"arena_bytes\""));
    }

    #[test]
    fn arena_pressure_degrades_in_place_and_short_circuits() {
        let t = two_pin(20_000.0, 2e-9, 0.8);
        let s = estimation(&t);
        let mut c = cfg();
        // A cap far below what this net's full search needs, but enough
        // to hold a clamped frontier.
        c.max_arena_bytes = Some(2 * 1024);
        let o = optimize_net("squeezed", &t, &s, &c);
        assert!(
            o.degraded_by.is_some(),
            "expected resource pressure, got {o:?}"
        );
        // Short-circuit: the serving rung is a DP rung, not a rerun of
        // the noise-only ladder bottom.
        assert!(
            matches!(o.rung, Some(Rung::Problem3) | Some(Rung::Problem2)),
            "{:?}",
            o.rung
        );
        // Degraded, not failed — and the output still audits clean.
        assert!(matches!(o.outcome, Outcome::Optimized | Outcome::Degraded));
        assert!(o.worst_headroom.unwrap() >= 0.0, "audit-feasible");
        assert!(o.to_json().contains("\"degraded_by\":\""));

        // Bitwise reproducible for a fixed budget.
        let o2 = optimize_net("squeezed", &t, &s, &c);
        assert_eq!(o.buffers, o2.buffers);
        assert_eq!(o.slack.unwrap().to_bits(), o2.slack.unwrap().to_bits());
        assert_eq!(o.degraded_by, o2.degraded_by);
    }

    #[test]
    fn pre_tripped_token_cancels_without_running_lower_rungs() {
        let t = two_pin(20_000.0, 2e-9, 0.8);
        let s = estimation(&t);
        let c = cfg();
        let token = CancelToken::new();
        token.cancel(buffopt::CancelReason::Disconnect);
        let input = NetInput::Parsed {
            name: "gone".into(),
            scenario: s,
            tree: t,
        };
        let o = optimize_input_with_cancel(&mut DpWorkspace::new(), &input, &c, &token);
        assert_eq!(o.outcome, Outcome::Failed);
        assert_eq!(o.error.as_deref(), Some("cancelled: disconnect"));
        assert_eq!(o.rung, None, "no rung served a cancelled net");
        // The noise-only rung was never reached: at most the DP attempts
        // are recorded before the short-circuit.
        assert!(
            o.attempts.iter().all(|a| a.rung != Rung::NoiseOnly),
            "{:?}",
            o.attempts
        );
    }

    /// A branchy net (the memo only engages at 2-child merge points).
    fn y_net(trunk: f64, arm: f64) -> RoutingTree {
        let tech = Technology::global_layer();
        let mut b = TreeBuilder::new(Driver::new(300.0, 10e-12));
        let j = b.add_internal(b.source(), tech.wire(trunk)).expect("trunk");
        b.add_sink(j, tech.wire(arm), SinkSpec::new(20e-15, 2.5e-9, 0.8))
            .expect("far sink");
        b.add_sink(j, tech.wire(arm * 1.3), SinkSpec::new(15e-15, 2.5e-9, 0.8))
            .expect("near sink");
        b.build().expect("tree")
    }

    #[test]
    fn shared_memo_table_preserves_solutions_and_counts_hits() {
        let t = y_net(6_000.0, 4_000.0);
        let s = estimation(&t);
        let cold = optimize_net("y", &t, &s, &cfg());

        let table = std::sync::Arc::new(buffopt::MemoTable::new(32 << 20, 4));
        let mut warm_cfg = cfg();
        warm_cfg.memo = Some(table.clone());
        let first = optimize_net("y", &t, &s, &warm_cfg);
        let second = optimize_net("y", &t, &s, &warm_cfg);
        for (tag, o) in [("first", &first), ("second", &second)] {
            assert_eq!(o.outcome, cold.outcome, "{tag}");
            assert_eq!(o.rung, cold.rung, "{tag}");
            assert_eq!(o.buffers, cold.buffers, "{tag}");
            assert_eq!(
                o.slack.unwrap().to_bits(),
                cold.slack.unwrap().to_bits(),
                "{tag}: seeded slack must be bitwise-identical"
            );
            assert!(o.worst_headroom.unwrap() >= 0.0, "{tag}: audit-clean");
        }
        let stats = table.stats();
        assert!(stats.stores > 0, "first run stores frontiers: {stats:?}");
        assert!(stats.hits > 0, "second run hits: {stats:?}");
        assert!(stats.seeded > 0, "hits actually seed merges: {stats:?}");
        assert!(stats.bytes > 0 && stats.bytes <= stats.budget_bytes);
    }

    #[test]
    fn reverify_confirms_an_honest_record_and_catches_a_doctored_one() {
        let t = two_pin(12_000.0, 3e-9, 0.8);
        let s = estimation(&t);
        let c = cfg();
        let input = NetInput::Parsed {
            name: "audit-me".into(),
            tree: t,
            scenario: s,
        };
        let mut ws = DpWorkspace::new();
        let o = optimize_input_with(&mut ws, &input, &c);
        assert_eq!(o.rung, Some(Rung::Problem3));
        assert_eq!(
            reverify_outcome(&mut ws, &input, &c, &o),
            Reverify::Consistent
        );

        // A flipped high mantissa bit in the recorded slack — the model
        // of a corrupted cache entry — must not survive the audit.
        let mut doctored = o.clone();
        doctored.slack = doctored
            .slack
            .map(|v| f64::from_bits(v.to_bits() ^ (1 << 51)));
        match reverify_outcome(&mut ws, &input, &c, &doctored) {
            Reverify::Mismatch(why) => assert!(why.contains("slack mismatch"), "{why}"),
            v => panic!("doctored slack passed the audit: {v:?}"),
        }

        // Same for a doctored buffer count.
        let mut doctored = o.clone();
        doctored.buffers = doctored.buffers.map(|b| b + 1);
        match reverify_outcome(&mut ws, &input, &c, &doctored) {
            Reverify::Mismatch(why) => assert!(why.contains("buffer count"), "{why}"),
            v => panic!("doctored buffer count passed the audit: {v:?}"),
        }
    }

    #[test]
    fn reverify_skips_records_without_a_solution() {
        let mut ws = DpWorkspace::new();
        let c = cfg();
        let failed = NetInput::Failed {
            name: "no-parse".into(),
            error: "nope".into(),
        };
        let o = optimize_input_with(&mut ws, &failed, &c);
        assert_eq!(
            reverify_outcome(&mut ws, &failed, &c, &o),
            Reverify::NotApplicable
        );
    }

    #[test]
    fn default_budget_matches_direct_optimizer_results() {
        let t = two_pin(16_000.0, 2.5e-9, 0.8);
        let s = estimation(&t);
        let c = cfg();
        let o = optimize_net("parity", &t, &s, &c);
        // Reproduce rung 1 by hand on the identically segmented tree.
        let seg = segment::segment_wires(&t, 500.0).expect("segment");
        let s_seg = s.for_segmented(&seg);
        let direct = algo3::min_buffers(&seg.tree, &s_seg, &c.library, &BuffOptOptions::default())
            .expect("direct");
        assert_eq!(o.buffers, Some(direct.buffers));
        assert!((o.slack.unwrap() - direct.slack).abs() < 1e-18);
    }
}
