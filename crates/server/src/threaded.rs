//! The original thread-per-connection front end, kept as the benchmark
//! baseline for the readiness-driven reactor
//! ([`serve_sharded`](crate::serve_sharded)) and for byte-identical
//! differential tests between the two transports.
//!
//! Serving semantics match the reactor exactly (same protocol, same
//! error lines, same drain contract); the mechanisms differ:
//!
//! * one OS thread per connection, blocking reads with `SO_RCVTIMEO`;
//! * while an optimize request is in flight, a monitor thread probes the
//!   client socket every 25 ms ([`DISCONNECT_POLL`]); a hang-up trips
//!   the request's [`CancelToken`] with the `disconnect` reason (the
//!   reactor gets the same signal from `EPOLLRDHUP` readiness instead);
//! * shutdown drains by closing every connection's read side and joining
//!   the handler threads.
//!
//! Note the baseline-only limits the reactor removes: the read timeout
//! resets on every received byte (a byte-trickling client evades it),
//! and each connection costs a thread plus a monitor thread per
//! in-flight request. [`ServeOptions::max_conns`] is not enforced here.

use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use buffopt::{CancelReason, CancelToken};
use buffopt_integrity::{decode_frame, encode_frame, is_framed};
use buffopt_pipeline::fault::{FaultAction, Seam};

use crate::engine::Engine;
use crate::service::{
    bad_frame_json, classify_request, error_json, serve_optimize, Command, NetDecoder, ServeOptions,
};

/// How often the disconnect monitor probes the client socket while a
/// request is in flight. Small enough that a vanished client frees its
/// worker within tens of milliseconds; large enough that the probe is
/// noise next to per-net optimization.
const DISCONNECT_POLL: Duration = Duration::from_millis(25);

/// Runs the thread-per-connection accept loop until a `shutdown` command
/// arrives, then drains: stops admission, wakes idle connections, and
/// joins every handler so each in-flight response is written before this
/// function returns. Every connection shares the engine's worker pool,
/// so compute concurrency is bounded by the pool no matter how many
/// clients attach.
pub fn serve_threaded(
    listener: TcpListener,
    engine: Arc<Engine>,
    decode: NetDecoder,
    opts: ServeOptions,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    // The acceptor is the sole owner of the connection registry: a clone
    // of each stream (to close its read side at drain time) plus the
    // handler's join handle.
    let mut conns: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                // Finished connections need no drain bookkeeping.
                conns.retain(|(_, h)| !h.is_finished());
                let peer = stream.try_clone();
                let engine = Arc::clone(&engine);
                let decode = Arc::clone(&decode);
                let stop = Arc::clone(&stop);
                let opts = opts.clone();
                let handle = std::thread::spawn(move || {
                    let shutdown = handle_connection(stream, &engine, &decode, &opts);
                    if shutdown {
                        stop.store(true, Ordering::SeqCst);
                        // Wake the blocked accept() so the loop observes
                        // the flag.
                        let _ = TcpStream::connect(addr);
                    }
                });
                match peer {
                    Ok(peer) => conns.push((peer, handle)),
                    // Cannot reach this connection at drain time; let it
                    // run detached (its reads still time out).
                    Err(_) => drop(handle),
                }
            }
            Err(_) if stop.load(Ordering::SeqCst) => break,
            Err(e) => return Err(e),
        }
    }
    // Drain. Admission closes first, so a request racing the shutdown
    // gets an explicit `shutting_down` error, not a dropped line; then
    // the read sides close, waking handlers blocked in read() while
    // leaving write sides open for in-flight responses; then every
    // handler is joined so its last response reaches the wire.
    engine.begin_shutdown();
    for (stream, _) in &conns {
        let _ = stream.shutdown(Shutdown::Read);
    }
    for (_, handle) in conns {
        let _ = handle.join();
    }
    Ok(())
}

fn write_line(writer: &mut BufWriter<TcpStream>, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Writes one response wrapped in a length+CRC frame (mirroring a framed
/// request).
fn write_framed(writer: &mut BufWriter<TcpStream>, line: &str) -> std::io::Result<()> {
    writer.write_all(&encode_frame(line.as_bytes()))?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Serves one connection; returns true when the client asked for a
/// server shutdown.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    decode: &NetDecoder,
    opts: &ServeOptions,
) -> bool {
    let _ = stream.set_read_timeout(opts.read_timeout);
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return false,
    };
    let mut reader = reader;
    let mut writer = BufWriter::new(stream);
    let shutdown_requested = serve_lines(&mut reader, &mut writer, engine, decode, opts);
    // The acceptor holds a clone of this stream for drain bookkeeping;
    // shutting the socket down (not just dropping our handles) makes the
    // close visible to the client *now* instead of at the next accept.
    let _ = writer.flush();
    let _ = writer.get_ref().shutdown(Shutdown::Both);
    shutdown_requested
}

/// The connection's request/response loop; returns true when the client
/// asked for a server shutdown.
fn serve_lines(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    engine: &Engine,
    decode: &NetDecoder,
    opts: &ServeOptions,
) -> bool {
    loop {
        let mut buf: Vec<u8> = Vec::new();
        // The +1 makes an over-limit line distinguishable from one that
        // is exactly at the limit.
        let read = reader
            .by_ref()
            .take(opts.max_line_bytes as u64 + 1)
            .read_until(b'\n', &mut buf);
        match read {
            Ok(0) => break, // client closed (or drain closed the read side)
            Ok(_) => {
                if !buf.ends_with(b"\n") && buf.len() > opts.max_line_bytes {
                    engine.metrics().record_conn_error();
                    let _ = write_line(
                        writer,
                        &error_json(&format!(
                            "request line exceeds {} bytes; closing connection",
                            opts.max_line_bytes
                        )),
                    );
                    break;
                }
                // Strip the line terminator at the byte level first: a
                // framed payload's CRC is checked over raw bytes, before
                // any UTF-8 assumption is made about damaged content.
                let mut bytes: &[u8] = &buf;
                while bytes.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
                    bytes = &bytes[..bytes.len() - 1];
                }
                let framed = opts.frame_check && is_framed(bytes);
                let payload_line: String;
                let line = if framed {
                    // Frame validation is a decode step of its own, with
                    // its own arming of the decode fault seam: a
                    // `TruncateFrame` fault chops the frame mid-payload,
                    // exactly like a sender that died mid-write. (Other
                    // actions are not meaningful at this arming.)
                    let torn: Vec<u8>;
                    let frame: &[u8] = match engine.fault_plan().and_then(|p| p.fire(Seam::Decode))
                    {
                        Some(FaultAction::TruncateFrame) => {
                            torn = bytes[..bytes.len() / 2].to_vec();
                            &torn
                        }
                        _ => bytes,
                    };
                    let payload = match decode_frame(frame) {
                        Ok(p) => p,
                        Err(e) => {
                            engine.metrics().record_bad_frame();
                            if write_framed(writer, &bad_frame_json(&e.to_string())).is_err() {
                                break;
                            }
                            continue;
                        }
                    };
                    match std::str::from_utf8(payload) {
                        Ok(p) => {
                            payload_line = p.to_string();
                            payload_line.trim()
                        }
                        Err(_) => {
                            engine.metrics().record_bad_frame();
                            let detail = "frame payload is not UTF-8";
                            if write_framed(writer, &bad_frame_json(detail)).is_err() {
                                break;
                            }
                            continue;
                        }
                    }
                } else {
                    payload_line = String::from_utf8_lossy(bytes).into_owned();
                    payload_line.trim()
                };
                if line.is_empty() {
                    continue;
                }
                // A panic while serving — injected at the decode seam or
                // real — costs one error response, not the connection or
                // the server.
                let served = panic::catch_unwind(AssertUnwindSafe(|| {
                    respond(line, engine, decode, Some(writer.get_ref()))
                }));
                let (response, shutdown) = served.unwrap_or_else(|_| {
                    engine.metrics().record_conn_error();
                    (
                        error_json("internal error while serving the request"),
                        false,
                    )
                });
                let wrote = if framed {
                    write_framed(writer, &response)
                } else {
                    write_line(writer, &response)
                };
                if wrote.is_err() {
                    break;
                }
                if shutdown {
                    return true;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                engine.metrics().record_conn_error();
                let _ = write_line(writer, &error_json("read timed out; closing connection"));
                break;
            }
            Err(_) => break, // client gone
        }
    }
    false
}

/// Runs `f` — one blocking engine call — while a monitor thread probes
/// the client socket for a hang-up; a disconnect trips `cancel` so the
/// worker abandons the run at its next stride checkpoint. `SO_RCVTIMEO`
/// is a property of the socket (shared with the connection's reader
/// through the clone), so the original read timeout is restored after
/// the scope joins — never concurrently with a monitor probe.
fn with_disconnect_monitor<T>(
    conn: Option<&TcpStream>,
    engine: &Engine,
    cancel: &CancelToken,
    f: impl FnOnce() -> T,
) -> T {
    let Some(probe) = conn.and_then(|c| c.try_clone().ok()) else {
        return f();
    };
    let original = probe.read_timeout().ok().flatten();
    if probe.set_read_timeout(Some(DISCONNECT_POLL)).is_err() {
        return f();
    }
    let done = AtomicBool::new(false);
    let result = std::thread::scope(|s| {
        s.spawn(|| {
            let mut buf = [0u8; 1];
            loop {
                if done.load(Ordering::Relaxed) {
                    return;
                }
                match probe.peek(&mut buf) {
                    // EOF: the client hung up mid-request.
                    Ok(0) => break,
                    // Pipelined bytes are waiting; the client is alive.
                    Ok(_) => std::thread::sleep(DISCONNECT_POLL),
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                    // Any other socket error: treat the client as gone.
                    Err(_) => break,
                }
            }
            // The shutdown drain closes every connection's read side,
            // which looks exactly like a client hang-up from here. The
            // drain contract is that admitted work completes and its
            // response is written, so EOF during shutdown never cancels.
            if !engine.is_shutting_down() && cancel.cancel(CancelReason::Disconnect) {
                engine.metrics().record_cancelled(CancelReason::Disconnect);
            }
        });
        let result = f();
        done.store(true, Ordering::Relaxed);
        result
    });
    let _ = probe.set_read_timeout(original);
    result
}

/// Computes the response line for one request line. `conn` is the
/// request's client socket, watched for disconnects while the engine
/// call is in flight (`None` leaves the run uncancellable).
fn respond(
    line: &str,
    engine: &Engine,
    decode: &NetDecoder,
    conn: Option<&TcpStream>,
) -> (String, bool) {
    match classify_request(line) {
        Err(response) => (response, false),
        Ok(Command::Optimize { id, net }) => {
            let cancel = CancelToken::new();
            let response = serve_optimize(engine, decode, &id, &net, &cancel, |job| {
                with_disconnect_monitor(conn, engine, &cancel, || {
                    engine.try_optimize_with(job, cancel.clone())
                })
            });
            (response, false)
        }
        Ok(Command::Stats) => (engine.metrics_snapshot().to_json(), false),
        Ok(Command::Shutdown) => {
            // Close admission before acknowledging, so requests racing
            // the shutdown are refused explicitly from this moment on.
            engine.begin_shutdown();
            ("{\"ok\":\"shutdown\"}".to_string(), true)
        }
    }
}
