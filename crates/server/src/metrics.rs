//! Aggregated serving metrics: atomic counters and per-rung latency
//! histograms, shared by every worker and snapshot without stopping the
//! world.
//!
//! All counters are `AtomicU64` with relaxed ordering — a snapshot is a
//! statistically consistent view, not a linearizable one, which is what
//! an operations dashboard needs. The latency histogram uses fixed
//! logarithmic-ish bucket bounds ([`LATENCY_BOUNDS_MS`]) so snapshots
//! from different workers (or machines) can be summed bucket-wise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use buffopt::{CancelReason, MemoStats};
use buffopt_pipeline::{NetOutcome, Outcome, Rung};

use crate::cache::CacheStats;
use crate::engine::Rejection;

/// Admission-rejection counter order: `overloaded`,
/// `deadline_exceeded`, `shutting_down`.
pub const REJECTIONS: [Rejection; 3] = [
    Rejection::Overloaded,
    Rejection::DeadlineExceeded,
    Rejection::ShuttingDown,
];

fn rejection_index(r: Rejection) -> usize {
    REJECTIONS
        .iter()
        .position(|&x| x == r)
        .expect("all rejections listed")
}

fn cancel_index(r: CancelReason) -> usize {
    CancelReason::ALL
        .iter()
        .position(|&x| x == r)
        .expect("all cancel reasons listed")
}

/// Upper bounds (inclusive, milliseconds) of the latency histogram
/// buckets; a final unbounded bucket catches everything slower, so each
/// histogram has `LATENCY_BOUNDS_MS.len() + 1` counters.
pub const LATENCY_BOUNDS_MS: [u64; 8] = [1, 3, 10, 30, 100, 300, 1000, 3000];

const BUCKETS: usize = LATENCY_BOUNDS_MS.len() + 1;
const RUNGS: [Rung; 4] = [
    Rung::Problem3,
    Rung::Problem2,
    Rung::NoiseOnly,
    Rung::Unbuffered,
];
const OUTCOMES: [Outcome; 5] = [
    Outcome::Optimized,
    Outcome::Degraded,
    Outcome::Infeasible,
    Outcome::ParseError,
    Outcome::Failed,
];

fn bucket_of(wall: Duration) -> usize {
    let ms = wall.as_secs_f64() * 1e3;
    LATENCY_BOUNDS_MS
        .iter()
        .position(|&b| ms <= b as f64)
        .unwrap_or(BUCKETS - 1)
}

fn rung_index(r: Rung) -> usize {
    RUNGS
        .iter()
        .position(|&x| x == r)
        .expect("all rungs listed")
}

fn outcome_index(o: Outcome) -> usize {
    OUTCOMES
        .iter()
        .position(|&x| x == o)
        .expect("all outcomes listed")
}

#[derive(Default)]
struct RungStats {
    served: AtomicU64,
    latency: [AtomicU64; BUCKETS],
}

/// Live counters, updated concurrently by every worker.
#[derive(Default)]
pub struct Metrics {
    requests: AtomicU64,
    outcomes: [AtomicU64; 5],
    rungs: [RungStats; 4],
    rejections: [AtomicU64; 3],
    worker_deaths: AtomicU64,
    respawns: AtomicU64,
    retries: AtomicU64,
    stale_drops: AtomicU64,
    bad_outputs: AtomicU64,
    conn_errors: AtomicU64,
    rejected_max_conns: AtomicU64,
    candidate_peak: AtomicU64,
    merge_peak: AtomicU64,
    merge_enumerated: AtomicU64,
    merge_pruned: AtomicU64,
    cancellations: [AtomicU64; 4],
    arena_peak_bytes: AtomicU64,
    degraded_pressure: AtomicU64,
    bad_frames: AtomicU64,
    verify_samples: AtomicU64,
    verify_failures: AtomicU64,
}

impl Metrics {
    /// Counts one incoming request (cache hits included).
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request refused by admission control.
    pub fn record_rejection(&self, r: Rejection) {
        self.rejections[rejection_index(r)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one worker thread that died outside its panic boundary.
    pub fn record_worker_death(&self) {
        self.worker_deaths.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one replacement worker spawned by the supervisor.
    pub fn record_respawn(&self) {
        self.respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one bounded retry of a request whose worker died.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one queued task dropped unstarted because its deadline
    /// expired while waiting.
    pub fn record_stale_drop(&self) {
        self.stale_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one record rejected by the output integrity check.
    pub fn record_bad_output(&self) {
        self.bad_outputs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection terminated for a protocol violation
    /// (oversized request line, read timeout, or unreadable stream).
    pub fn record_conn_error(&self) {
        self.conn_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one framed request rejected by its length/CRC check (the
    /// client got a typed `bad_frame` error, not a parse guess).
    pub fn record_bad_frame(&self) {
        self.bad_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection refused at accept time because the server
    /// was at its `--max-conns` ceiling (the client got a typed
    /// `overloaded` refusal line).
    pub fn record_rejected_max_conns(&self) {
        self.rejected_max_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one served response picked up by the sampled
    /// re-verification audit.
    pub fn record_verify_sample(&self) {
        self.verify_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one sampled response whose independent audit disagreed
    /// with the served record (the cache entry was invalidated).
    pub fn record_verify_failure(&self) {
        self.verify_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Current sampled-audit tally as `(samples, failures)`.
    pub fn verify_tally(&self) -> (u64, u64) {
        (
            self.verify_samples.load(Ordering::Relaxed),
            self.verify_failures.load(Ordering::Relaxed),
        )
    }

    /// Counts one in-flight run cancelled, attributed to `reason`. Call
    /// only when [`buffopt::CancelToken::cancel`] reported the winning
    /// delivery, so each cancellation is counted exactly once however
    /// many parties race to trip the token.
    pub fn record_cancelled(&self, reason: CancelReason) {
        self.cancellations[cancel_index(reason)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a freshly computed record: its outcome, the rung that
    /// served it, and where its wall time lands in that rung's histogram.
    /// Cache hits are *not* recorded here — the original computation
    /// already was.
    pub fn record_outcome(&self, o: &NetOutcome) {
        self.outcomes[outcome_index(o.outcome)].fetch_add(1, Ordering::Relaxed);
        if let Some(rung) = o.rung {
            let r = &self.rungs[rung_index(rung)];
            r.served.fetch_add(1, Ordering::Relaxed);
            r.latency[bucket_of(o.wall)].fetch_add(1, Ordering::Relaxed);
        }
        // Candidate-pressure gauges: high-water marks over every served
        // net, the serving-side view of how close the DP runs to its
        // candidate budget.
        self.candidate_peak
            .fetch_max(o.candidate_peak as u64, Ordering::Relaxed);
        self.merge_peak
            .fetch_max(o.merge_peak as u64, Ordering::Relaxed);
        // Cumulative merge-work split: rows the DP actually enumerated vs
        // pairs predictive pruning (and the block filters) skipped. The
        // ratio is the serving-side view of pruning effectiveness.
        self.merge_enumerated
            .fetch_add(o.merge_enumerated as u64, Ordering::Relaxed);
        self.merge_pruned
            .fetch_add(o.merge_pruned as u64, Ordering::Relaxed);
        // Resource-governor gauges: the provenance arena's high-water
        // mark across every worker, and how many runs finished by
        // degrading in place under a memory cap.
        self.arena_peak_bytes
            .fetch_max(o.arena_peak as u64, Ordering::Relaxed);
        if o.degraded_by.is_some() {
            self.degraded_pressure.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter, combined with the cache's
    /// counters, the subtree memo table's counters (zeroed default when
    /// the engine runs without one), and the pool size.
    pub fn snapshot(
        &self,
        cache: CacheStats,
        memo: MemoStats,
        workers: usize,
        uptime: Duration,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            outcomes: std::array::from_fn(|i| self.outcomes[i].load(Ordering::Relaxed)),
            rungs: std::array::from_fn(|i| RungSnapshot {
                served: self.rungs[i].served.load(Ordering::Relaxed),
                latency: std::array::from_fn(|b| self.rungs[i].latency[b].load(Ordering::Relaxed)),
            }),
            rejections: std::array::from_fn(|i| self.rejections[i].load(Ordering::Relaxed)),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            stale_drops: self.stale_drops.load(Ordering::Relaxed),
            bad_outputs: self.bad_outputs.load(Ordering::Relaxed),
            conn_errors: self.conn_errors.load(Ordering::Relaxed),
            rejected_max_conns: self.rejected_max_conns.load(Ordering::Relaxed),
            candidate_peak: self.candidate_peak.load(Ordering::Relaxed),
            merge_peak: self.merge_peak.load(Ordering::Relaxed),
            merge_enumerated: self.merge_enumerated.load(Ordering::Relaxed),
            merge_pruned: self.merge_pruned.load(Ordering::Relaxed),
            cancellations: std::array::from_fn(|i| self.cancellations[i].load(Ordering::Relaxed)),
            arena_peak_bytes: self.arena_peak_bytes.load(Ordering::Relaxed),
            degraded_pressure: self.degraded_pressure.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            verify_samples: self.verify_samples.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
            cache,
            memo,
            workers,
            uptime_ms: uptime.as_millis() as u64,
            version: env!("CARGO_PKG_VERSION"),
            shards: Vec::new(),
        }
    }
}

/// Frozen per-rung counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungSnapshot {
    /// Nets this rung served.
    pub served: u64,
    /// Wall-time histogram (bounds [`LATENCY_BOUNDS_MS`] + overflow).
    pub latency: [u64; BUCKETS],
}

/// The histogram value reported for samples past the last bucket bound:
/// the overflow bucket has no upper edge, so percentiles landing there
/// are pinned to twice the final bound rather than pretending precision.
pub const LATENCY_OVERFLOW_MS: u64 = LATENCY_BOUNDS_MS[LATENCY_BOUNDS_MS.len() - 1] * 2;

impl RungSnapshot {
    /// The upper bound (ms) of the bucket where quantile `q` (in
    /// `(0, 1]`) falls, or 0 when the histogram is empty. Samples in the
    /// overflow bucket report [`LATENCY_OVERFLOW_MS`]. Bucketed
    /// percentiles are upper bounds, not interpolations — good enough
    /// to gate a benchmark, honest about their resolution.
    pub fn percentile_ms(&self, q: f64) -> u64 {
        let total: u64 = self.latency.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.latency.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return LATENCY_BOUNDS_MS
                    .get(i)
                    .copied()
                    .unwrap_or(LATENCY_OVERFLOW_MS);
            }
        }
        LATENCY_OVERFLOW_MS
    }
}

/// One reactor shard's live gauges and per-engine counters, reported in
/// the `stats` response's `shards` array so operators can see routing
/// skew and per-shard saturation at a glance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStat {
    /// Shard index (also the engine index: shards and engines are 1:1).
    pub shard: usize,
    /// Connections currently owned by this shard's event loop.
    pub conns: u64,
    /// Tasks queued (submitted, not yet dequeued) in the shard engine's
    /// bounded submission queue right now.
    pub queue: u64,
    /// Requests this shard's engine has accepted so far.
    pub requests: u64,
    /// Solution-cache hits on this shard's engine.
    pub cache_hits: u64,
    /// Solution-cache misses on this shard's engine.
    pub cache_misses: u64,
    /// Subtree-memo hits on this shard's engine.
    pub memo_hits: u64,
}

/// A frozen view of the engine's counters, serializable as one JSON
/// object (the `stats` response of the network service).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests accepted (cache hits included).
    pub requests: u64,
    /// Records per final classification, `OUTCOMES` order.
    pub outcomes: [u64; 5],
    /// Per-rung counters, ladder order.
    pub rungs: [RungSnapshot; 4],
    /// Requests refused by admission control, [`REJECTIONS`] order.
    pub rejections: [u64; 3],
    /// Worker threads that died outside their panic boundary.
    pub worker_deaths: u64,
    /// Replacement workers spawned (deaths repaired + stalled slots
    /// backfilled).
    pub respawns: u64,
    /// Bounded retries of requests whose worker died.
    pub retries: u64,
    /// Queued tasks dropped unstarted after their deadline expired.
    pub stale_drops: u64,
    /// Records rejected by the output integrity check.
    pub bad_outputs: u64,
    /// Connections terminated for protocol violations.
    pub conn_errors: u64,
    /// Connections refused at accept time by the `--max-conns` ceiling.
    pub rejected_max_conns: u64,
    /// Largest per-net DP candidate list served so far (high-water mark).
    pub candidate_peak: u64,
    /// Largest per-net count of enumerated merge rows served so far
    /// (high-water mark); the gap to `candidate_peak` is the fused
    /// merge-prune's savings.
    pub merge_peak: u64,
    /// Merge rows enumerated across every served net (cumulative).
    pub merge_enumerated: u64,
    /// Merge pairs skipped unenumerated across every served net
    /// (cumulative) — block filters plus predictive witness skips. The
    /// `pruned / (enumerated + pruned)` ratio is the fleet-wide
    /// predictive-pruning effectiveness.
    pub merge_pruned: u64,
    /// In-flight runs cancelled, by reason ([`CancelReason::ALL`] order:
    /// `deadline`, `shutdown`, `disconnect`, `supervisor`).
    pub cancellations: [u64; 4],
    /// Largest provenance-arena footprint any worker's run reached so
    /// far, in bytes (high-water mark over every served net).
    pub arena_peak_bytes: u64,
    /// Runs that finished by degrading in place under a memory cap
    /// (feasible but possibly suboptimal, tagged in their records).
    pub degraded_pressure: u64,
    /// Framed requests rejected by their length/CRC check.
    pub bad_frames: u64,
    /// Served responses picked up by the sampled re-verification audit.
    pub verify_samples: u64,
    /// Sampled responses whose independent audit disagreed with the
    /// served record.
    pub verify_failures: u64,
    /// Cache counters at snapshot time.
    pub cache: CacheStats,
    /// Subtree memo table counters at snapshot time (all-zero when the
    /// engine runs without a memo table).
    pub memo: MemoStats,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Milliseconds since the engine was created, so operators can
    /// correlate counter deltas across restarts.
    pub uptime_ms: u64,
    /// The serving crate's version string.
    pub version: &'static str,
    /// Per-shard breakdown (empty for a single-engine threaded server;
    /// the sharded front end fills this before serializing).
    pub shards: Vec<ShardStat>,
}

impl MetricsSnapshot {
    /// Folds another engine's snapshot into this one, producing the
    /// fleet view the `stats` command reports when serving runs across
    /// several per-shard engines: counters and histograms sum bucket-wise
    /// (the bounds are shared by construction), high-water marks take
    /// the max, and uptime keeps the longest-lived engine's clock.
    /// `workers` sums, so the fleet view reports total pool strength.
    /// Per-shard breakdowns concatenate.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        self.requests += other.requests;
        for (a, b) in self.outcomes.iter_mut().zip(other.outcomes) {
            *a += b;
        }
        for (r, o) in self.rungs.iter_mut().zip(&other.rungs) {
            r.served += o.served;
            for (a, b) in r.latency.iter_mut().zip(o.latency) {
                *a += b;
            }
        }
        for (a, b) in self.rejections.iter_mut().zip(other.rejections) {
            *a += b;
        }
        self.worker_deaths += other.worker_deaths;
        self.respawns += other.respawns;
        self.retries += other.retries;
        self.stale_drops += other.stale_drops;
        self.bad_outputs += other.bad_outputs;
        self.conn_errors += other.conn_errors;
        self.rejected_max_conns += other.rejected_max_conns;
        self.candidate_peak = self.candidate_peak.max(other.candidate_peak);
        self.merge_peak = self.merge_peak.max(other.merge_peak);
        self.merge_enumerated += other.merge_enumerated;
        self.merge_pruned += other.merge_pruned;
        for (a, b) in self.cancellations.iter_mut().zip(other.cancellations) {
            *a += b;
        }
        self.arena_peak_bytes = self.arena_peak_bytes.max(other.arena_peak_bytes);
        self.degraded_pressure += other.degraded_pressure;
        self.bad_frames += other.bad_frames;
        self.verify_samples += other.verify_samples;
        self.verify_failures += other.verify_failures;
        self.cache.hits += other.cache.hits;
        self.cache.misses += other.cache.misses;
        self.cache.evictions += other.cache.evictions;
        self.cache.entries += other.cache.entries;
        self.cache.capacity += other.cache.capacity;
        self.cache.integrity_checks += other.cache.integrity_checks;
        self.cache.corrupt_evictions += other.cache.corrupt_evictions;
        self.memo.hits += other.memo.hits;
        self.memo.misses += other.memo.misses;
        self.memo.sig_conflicts += other.memo.sig_conflicts;
        self.memo.seeded += other.memo.seeded;
        self.memo.stores += other.memo.stores;
        self.memo.evictions += other.memo.evictions;
        self.memo.bytes += other.memo.bytes;
        self.memo.entries += other.memo.entries;
        self.memo.budget_bytes += other.memo.budget_bytes;
        self.memo.integrity_checks += other.memo.integrity_checks;
        self.memo.corrupt_evictions += other.memo.corrupt_evictions;
        self.workers += other.workers;
        self.uptime_ms = self.uptime_ms.max(other.uptime_ms);
        self.shards.extend(other.shards.iter().cloned());
    }
    /// This snapshot as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"requests\":{},\"workers\":{},\"uptime_ms\":{},\"version\":\"{}\"",
            self.requests, self.workers, self.uptime_ms, self.version
        ));
        s.push_str(&format!(
            ",\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{},\"capacity\":{}}}",
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries,
            self.cache.capacity
        ));
        s.push_str(&format!(
            ",\"memo\":{{\"hits\":{},\"misses\":{},\"sig_conflicts\":{},\"seeded_merges\":{},\"stores\":{},\"evictions\":{},\"bytes\":{},\"entries\":{},\"budget_bytes\":{}}}",
            self.memo.hits,
            self.memo.misses,
            self.memo.sig_conflicts,
            self.memo.seeded,
            self.memo.stores,
            self.memo.evictions,
            self.memo.bytes,
            self.memo.entries,
            self.memo.budget_bytes
        ));
        s.push_str(",\"admission\":{");
        for (i, r) in REJECTIONS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", r.as_str(), self.rejections[i]));
        }
        s.push_str(&format!(",\"stale_drops\":{}}}", self.stale_drops));
        s.push_str(&format!(
            ",\"supervision\":{{\"worker_deaths\":{},\"respawns\":{},\"retries\":{},\"bad_outputs\":{},\"cancelled\":{}}}",
            self.worker_deaths,
            self.respawns,
            self.retries,
            self.bad_outputs,
            self.cancellations.iter().sum::<u64>()
        ));
        s.push_str(&format!(
            ",\"connections\":{{\"errors\":{},\"bad_frames\":{},\"rejected_max_conns\":{}}}",
            self.conn_errors, self.bad_frames, self.rejected_max_conns
        ));
        if !self.shards.is_empty() {
            s.push_str(",\"shards\":[");
            for (i, sh) in self.shards.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"shard\":{},\"conns\":{},\"queue\":{},\"requests\":{},\
                     \"cache_hits\":{},\"cache_misses\":{},\"memo_hits\":{}}}",
                    sh.shard,
                    sh.conns,
                    sh.queue,
                    sh.requests,
                    sh.cache_hits,
                    sh.cache_misses,
                    sh.memo_hits
                ));
            }
            s.push(']');
        }
        // Aggregated integrity counters: checks and corrupt evictions
        // sum the solution cache's and memo table's verify-on-hit work;
        // samples/failures come from the post-hoc audit.
        s.push_str(&format!(
            ",\"integrity\":{{\"checks\":{},\"corrupt_evictions\":{},\"verify_samples\":{},\"verify_failures\":{}}}",
            self.cache.integrity_checks + self.memo.integrity_checks,
            self.cache.corrupt_evictions + self.memo.corrupt_evictions,
            self.verify_samples,
            self.verify_failures
        ));
        s.push_str(&format!(
            ",\"candidates\":{{\"peak\":{},\"merge_peak\":{},\"merge_enumerated\":{},\"merge_pruned\":{}}}",
            self.candidate_peak, self.merge_peak, self.merge_enumerated, self.merge_pruned
        ));
        s.push_str(&format!(
            ",\"resource\":{{\"arena_peak_bytes\":{},\"degraded_pressure\":{},\"cancellations\":{{",
            self.arena_peak_bytes, self.degraded_pressure
        ));
        for (i, r) in CancelReason::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", r.as_str(), self.cancellations[i]));
        }
        s.push_str("}}");
        s.push_str(",\"outcomes\":{");
        for (i, o) in OUTCOMES.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", o.as_str(), self.outcomes[i]));
        }
        s.push_str("},\"latency_bounds_ms\":[");
        for (i, b) in LATENCY_BOUNDS_MS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&b.to_string());
        }
        s.push_str("],\"rungs\":{");
        for (i, r) in RUNGS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{{\"served\":{},\"p50_ms\":{},\"p99_ms\":{},\"p999_ms\":{},\"latency\":[",
                r.as_str(),
                self.rungs[i].served,
                self.rungs[i].percentile_ms(0.50),
                self.rungs[i].percentile_ms(0.99),
                self.rungs[i].percentile_ms(0.999)
            ));
            for (b, n) in self.rungs[i].latency.iter().enumerate() {
                if b > 0 {
                    s.push(',');
                }
                s.push_str(&n.to_string());
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffopt_pipeline::{NetInput, PipelineConfig};

    fn parse_error_record() -> NetOutcome {
        buffopt_pipeline::optimize_input(
            &NetInput::Failed {
                name: "m".into(),
                error: "bad".into(),
            },
            &PipelineConfig::new(buffopt_buffers::catalog::single_buffer()),
        )
    }

    #[test]
    fn buckets_cover_the_axis() {
        assert_eq!(bucket_of(Duration::ZERO), 0);
        assert_eq!(bucket_of(Duration::from_millis(1)), 0);
        assert_eq!(bucket_of(Duration::from_millis(2)), 1);
        assert_eq!(bucket_of(Duration::from_millis(500)), 6);
        assert_eq!(bucket_of(Duration::from_secs(60)), BUCKETS - 1);
    }

    #[test]
    fn outcome_and_rung_counters_accumulate() {
        let m = Metrics::default();
        m.record_request();
        m.record_request();
        let mut rec = parse_error_record();
        m.record_outcome(&rec);
        // Fake a served rung to exercise the histogram path.
        rec.outcome = Outcome::Degraded;
        rec.rung = Some(Rung::NoiseOnly);
        rec.wall = Duration::from_millis(7);
        m.record_outcome(&rec);
        let snap = m.snapshot(
            CacheStats::default(),
            MemoStats::default(),
            4,
            Duration::ZERO,
        );
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.outcomes[outcome_index(Outcome::ParseError)], 1);
        assert_eq!(snap.outcomes[outcome_index(Outcome::Degraded)], 1);
        let noise = &snap.rungs[rung_index(Rung::NoiseOnly)];
        assert_eq!(noise.served, 1);
        assert_eq!(noise.latency[2], 1, "7 ms lands in the ≤10 ms bucket");
    }

    #[test]
    fn candidate_pressure_gauges_track_high_water_marks() {
        let m = Metrics::default();
        let mut rec = parse_error_record();
        rec.candidate_peak = 40;
        rec.merge_peak = 900;
        rec.merge_enumerated = 1000;
        rec.merge_pruned = 600;
        m.record_outcome(&rec);
        rec.candidate_peak = 25;
        rec.merge_peak = 1200;
        rec.merge_enumerated = 500;
        rec.merge_pruned = 900;
        m.record_outcome(&rec);
        let snap = m.snapshot(
            CacheStats::default(),
            MemoStats::default(),
            1,
            Duration::ZERO,
        );
        assert_eq!(snap.candidate_peak, 40, "keeps the max, not the last");
        assert_eq!(snap.merge_peak, 1200);
        assert_eq!(snap.merge_enumerated, 1500, "totals accumulate");
        assert_eq!(snap.merge_pruned, 1500);
        let j = snap.to_json();
        assert!(
            j.contains(
                "\"candidates\":{\"peak\":40,\"merge_peak\":1200,\
                 \"merge_enumerated\":1500,\"merge_pruned\":1500}"
            ),
            "{j}"
        );
    }

    #[test]
    fn snapshot_serializes_every_section() {
        let m = Metrics::default();
        m.record_request();
        m.record_bad_frame();
        m.record_verify_sample();
        m.record_verify_sample();
        m.record_verify_failure();
        let j = m
            .snapshot(
                CacheStats {
                    hits: 1,
                    misses: 2,
                    evictions: 0,
                    entries: 1,
                    capacity: 64,
                    integrity_checks: 5,
                    corrupt_evictions: 1,
                },
                MemoStats {
                    integrity_checks: 3,
                    corrupt_evictions: 1,
                    ..MemoStats::default()
                },
                2,
                Duration::from_millis(1234),
            )
            .to_json();
        let version_needle = format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"));
        for needle in [
            "\"requests\":1",
            "\"workers\":2",
            "\"uptime_ms\":1234",
            version_needle.as_str(),
            "\"cache\":{\"hits\":1,\"misses\":2",
            "\"memo\":{\"hits\":0,\"misses\":0,\"sig_conflicts\":0,\"seeded_merges\":0,\
             \"stores\":0,\"evictions\":0,\"bytes\":0,\"entries\":0,\"budget_bytes\":0}",
            "\"admission\":{\"overloaded\":0,\"deadline_exceeded\":0,\"shutting_down\":0,\"stale_drops\":0}",
            "\"supervision\":{\"worker_deaths\":0,\"respawns\":0,\"retries\":0,\"bad_outputs\":0,\"cancelled\":0}",
            "\"connections\":{\"errors\":0,\"bad_frames\":1,\"rejected_max_conns\":0}",
            // checks = cache 5 + memo 3, corrupt_evictions = cache 1 + memo 1.
            "\"integrity\":{\"checks\":8,\"corrupt_evictions\":2,\"verify_samples\":2,\"verify_failures\":1}",
            "\"candidates\":{\"peak\":0,\"merge_peak\":0,\"merge_enumerated\":0,\"merge_pruned\":0}",
            "\"resource\":{\"arena_peak_bytes\":0,\"degraded_pressure\":0,\
             \"cancellations\":{\"deadline\":0,\"shutdown\":0,\"disconnect\":0,\"supervisor\":0}}",
            "\"outcomes\":{\"optimized\":0",
            "\"latency_bounds_ms\":[1,3,10,30,100,300,1000,3000]",
            "\"rungs\":{\"problem3\":{\"served\":0,\"p50_ms\":0,\"p99_ms\":0,\"p999_ms\":0,\
             \"latency\":[0,0,0,0,0,0,0,0,0]}",
        ] {
            assert!(j.contains(needle), "{needle} missing from {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn resource_gauges_and_cancellations_accumulate() {
        let m = Metrics::default();
        let mut rec = parse_error_record();
        rec.arena_peak = 4096;
        rec.degraded_by = Some(buffopt::BudgetResource::ArenaBytes);
        m.record_outcome(&rec);
        rec.arena_peak = 1024; // lower peak must not shrink the gauge
        rec.degraded_by = None;
        m.record_outcome(&rec);
        m.record_cancelled(CancelReason::Deadline);
        m.record_cancelled(CancelReason::Disconnect);
        m.record_cancelled(CancelReason::Disconnect);
        let snap = m.snapshot(
            CacheStats::default(),
            MemoStats::default(),
            1,
            Duration::ZERO,
        );
        assert_eq!(snap.arena_peak_bytes, 4096, "keeps the max, not the last");
        assert_eq!(snap.degraded_pressure, 1);
        assert_eq!(snap.cancellations, [1, 0, 2, 0]);
        let j = snap.to_json();
        assert!(
            j.contains(
                "\"resource\":{\"arena_peak_bytes\":4096,\"degraded_pressure\":1,\
                 \"cancellations\":{\"deadline\":1,\"shutdown\":0,\"disconnect\":2,\"supervisor\":0}}"
            ),
            "{j}"
        );
        assert!(j.contains("\"cancelled\":3"), "{j}");
    }

    #[test]
    fn percentiles_read_bucket_upper_bounds() {
        let empty = RungSnapshot {
            served: 0,
            latency: [0; BUCKETS],
        };
        assert_eq!(empty.percentile_ms(0.99), 0, "empty histogram reports 0");

        // 90 fast (≤1 ms), 9 medium (≤30 ms), 1 in the overflow bucket.
        let mut latency = [0u64; BUCKETS];
        latency[0] = 90;
        latency[3] = 9;
        latency[BUCKETS - 1] = 1;
        let r = RungSnapshot {
            served: 100,
            latency,
        };
        assert_eq!(r.percentile_ms(0.50), 1);
        assert_eq!(r.percentile_ms(0.90), 1);
        assert_eq!(r.percentile_ms(0.99), 30);
        assert_eq!(r.percentile_ms(0.999), LATENCY_OVERFLOW_MS);
        assert_eq!(r.percentile_ms(1.0), LATENCY_OVERFLOW_MS);
    }

    #[test]
    fn absorb_sums_counters_and_keeps_high_water_marks() {
        let a = Metrics::default();
        a.record_request();
        a.record_conn_error();
        a.record_cancelled(CancelReason::Disconnect);
        let mut rec = parse_error_record();
        rec.candidate_peak = 40;
        rec.rung = Some(Rung::Problem3);
        rec.wall = Duration::from_millis(2);
        a.record_outcome(&rec);

        let b = Metrics::default();
        b.record_request();
        b.record_request();
        b.record_rejected_max_conns();
        rec.candidate_peak = 90;
        m_record_with_wall(&b, &mut rec, Duration::from_millis(500));

        let mut snap = a.snapshot(
            CacheStats {
                hits: 1,
                misses: 2,
                ..CacheStats::default()
            },
            MemoStats::default(),
            2,
            Duration::from_millis(10),
        );
        snap.shards.push(ShardStat {
            shard: 0,
            conns: 3,
            queue: 1,
            requests: 1,
            cache_hits: 1,
            cache_misses: 2,
            memo_hits: 0,
        });
        let other = b.snapshot(
            CacheStats {
                hits: 4,
                misses: 1,
                ..CacheStats::default()
            },
            MemoStats::default(),
            3,
            Duration::from_millis(25),
        );
        snap.absorb(&other);

        assert_eq!(snap.requests, 3);
        assert_eq!(snap.conn_errors, 1);
        assert_eq!(snap.rejected_max_conns, 1);
        assert_eq!(snap.cancellations, [0, 0, 1, 0]);
        assert_eq!(snap.candidate_peak, 90, "gauges keep the max");
        assert_eq!(snap.cache.hits, 5);
        assert_eq!(snap.cache.misses, 3);
        assert_eq!(snap.workers, 5, "pool strength sums");
        assert_eq!(snap.uptime_ms, 25, "longest-lived clock wins");
        let p3 = &snap.rungs[rung_index(Rung::Problem3)];
        assert_eq!(p3.served, 2, "histograms sum bucket-wise");
        assert_eq!(p3.latency[1] + p3.latency[6], 2);
        let j = snap.to_json();
        assert!(
            j.contains(
                "\"shards\":[{\"shard\":0,\"conns\":3,\"queue\":1,\"requests\":1,\
                 \"cache_hits\":1,\"cache_misses\":2,\"memo_hits\":0}]"
            ),
            "{j}"
        );
    }

    fn m_record_with_wall(m: &Metrics, rec: &mut NetOutcome, wall: Duration) {
        rec.wall = wall;
        m.record_outcome(rec);
    }

    #[test]
    fn supervision_and_admission_counters_accumulate() {
        let m = Metrics::default();
        m.record_rejection(Rejection::Overloaded);
        m.record_rejection(Rejection::Overloaded);
        m.record_rejection(Rejection::DeadlineExceeded);
        m.record_worker_death();
        m.record_respawn();
        m.record_retry();
        m.record_stale_drop();
        m.record_bad_output();
        m.record_conn_error();
        let snap = m.snapshot(
            CacheStats::default(),
            MemoStats::default(),
            1,
            Duration::ZERO,
        );
        assert_eq!(snap.rejections, [2, 1, 0]);
        assert_eq!(snap.worker_deaths, 1);
        assert_eq!(snap.respawns, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.stale_drops, 1);
        assert_eq!(snap.bad_outputs, 1);
        assert_eq!(snap.conn_errors, 1);
        let j = snap.to_json();
        assert!(j.contains("\"admission\":{\"overloaded\":2"), "{j}");
        assert!(j.contains("\"worker_deaths\":1"), "{j}");
    }
}
