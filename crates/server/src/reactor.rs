//! The sharded readiness-driven front end: an epoll reactor per shard,
//! one engine per shard, and a bounded responder pool bridging the
//! nonblocking event loops to the blocking engine calls.
//!
//! # Architecture
//!
//! ```text
//!             ┌ acceptor (calling thread): nonblocking listener ┐
//!             │   round-robin handoff, max-conns ceiling        │
//!             └──────┬──────────────┬──────────────┬────────────┘
//!                 shard 0        shard 1   ...  shard N-1   (epoll loops)
//!                    │              │              │
//!                    └──────── work channel ───────┘
//!                               │
//!                     responder pool (blocking Engine calls)
//!                               │
//!                    replies → shard inboxes (eventfd wakeups)
//! ```
//!
//! * The **acceptor** owns the listening socket. Accepted connections
//!   are handed round-robin to the shards through their inboxes; beyond
//!   [`ServeOptions::max_conns`] the accept is refused with one typed
//!   `{"error":"overloaded","detail":"max_conns"}` line.
//! * Each **shard** is one event loop owning its connections' state
//!   machines: nonblocking buffered reads with the line cap enforced
//!   incrementally, frame decoding, write backpressure through
//!   [`SendBuf`], and read deadlines in a timer heap. A connection with
//!   a request in flight stops reading (its kernel receive buffer is
//!   the backpressure), so per-connection memory is bounded. The clock
//!   for [`ServeOptions::read_timeout`] arms when the connection starts
//!   waiting for a request and is *not* reset by partial bytes — a
//!   slow-loris client trickling one byte per tick is closed on
//!   schedule.
//! * Complete request lines are dispatched to the **responder pool**,
//!   which runs the blocking [`Engine`] path (`try_optimize_with`) —
//!   the exact code path the thread-per-connection baseline used, so
//!   admission shedding, deadlines, retry, and fault semantics are
//!   identical. The pool is sized past the engines' total admission
//!   capacity (jobs + queue depth, plus slack), so control commands are
//!   never starved behind saturated optimize calls and shedding still
//!   manifests as `overloaded` responses.
//! * **Cancellation by readiness**: every registration asks for
//!   `EPOLLRDHUP`. When a client hangs up while its request is in
//!   flight and no pipelined bytes remain buffered, the request's
//!   [`CancelToken`] trips with the `disconnect` reason — replacing the
//!   baseline's 25 ms polling monitor thread with a kernel
//!   notification. Pipelined requests a client sent before hanging up
//!   are still served (their responses go to the peer's half-open read
//!   side, exactly like the baseline).
//! * **Routing**: optimize requests route to an engine by a rendezvous
//!   (highest-random-weight) hash of the net digest, so repeated nets
//!   land on the same engine and its solution cache / memo table shard
//!   cleanly without cross-engine chatter. `stats` aggregates every
//!   engine's snapshot ([`MetricsSnapshot::absorb`]) and appends a
//!   per-shard breakdown; `shutdown` closes admission on every engine
//!   before acknowledging.
//!
//! # Drain contract
//!
//! `shutdown` acknowledges, then the acceptor stops accepting and posts
//! a drain to every shard: idle connections close, buffered complete
//! lines are served (the engines reject them with `shutting_down`),
//! in-flight requests finish and their responses are flushed before the
//! shard exits. Shards join first, then the work channel closes and the
//! responders join — a connection is never dropped with a response in
//! flight, and no reply can arrive at a dead shard (a connection stays
//! in its slab until its in-flight reply returns).
//!
//! [`MetricsSnapshot::absorb`]: crate::metrics::MetricsSnapshot::absorb

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{ErrorKind, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use buffopt::{CancelReason, CancelToken};
use buffopt_integrity::{decode_frame, encode_frame, is_framed};
use buffopt_netpoll::{
    accept_nonblocking, Event, FillOutcome, Interest, Poller, RecvBuf, SendBuf, TakeLine, Waker,
};
use buffopt_pipeline::fault::{FaultAction, Seam};

use crate::cache::digest;
use crate::engine::Engine;
use crate::metrics::ShardStat;
use crate::service::{
    bad_frame_json, classify_request, error_json, serve_optimize, Command, NetDecoder, ServeOptions,
};

/// Token of each shard's inbox waker (never collides with connection
/// tokens, whose high 32 bits are a generation starting at 1).
const WAKER_TOKEN: u64 = u64::MAX;
/// Acceptor-poller token for the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Acceptor-poller token for the shutdown waker.
const ACCEPT_WAKER_TOKEN: u64 = 1;

/// How many events one `epoll_wait` may deliver per loop turn.
const EVENT_BATCH: usize = 256;

/// Per-connection receive-buffer headroom past the line cap: room for
/// pipelined complete lines in one read burst. Once the buffer is at
/// `max_line_bytes + RECV_SLACK` the shard stops filling until lines
/// are consumed; the kernel socket buffer backpressures the client.
const RECV_SLACK: usize = 64 * 1024;

/// The typed refusal line written to accepts beyond the
/// [`ServeOptions::max_conns`] ceiling.
const MAX_CONNS_REFUSAL: &[u8] = b"{\"error\":\"overloaded\",\"detail\":\"max_conns\"}\n";

/// One unit of blocking work dispatched from a shard to the responder
/// pool: a complete request line plus the routing info for its reply.
struct Work {
    shard: usize,
    token: u64,
    line: String,
    framed: bool,
    cancel: CancelToken,
}

/// Messages into a shard's event loop (paired with an eventfd wakeup).
enum Inbox {
    /// A freshly accepted connection to adopt.
    Conn(TcpStream),
    /// A responder finished a request; write the response.
    Reply {
        token: u64,
        response: String,
        framed: bool,
        shutdown: bool,
    },
    /// Stop reading, serve what is buffered, flush, close, exit.
    Drain,
}

/// A shard's mailbox as seen by the acceptor and the responders.
struct ShardPost {
    inbox: Mutex<VecDeque<Inbox>>,
    waker: Arc<Waker>,
}

impl ShardPost {
    fn post(&self, msg: Inbox) {
        self.inbox
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(msg);
        self.waker.wake();
    }
}

/// State shared by the acceptor, every shard, and every responder.
struct Shared {
    engines: Vec<Arc<Engine>>,
    decode: NetDecoder,
    opts: ServeOptions,
    /// Live connections across all shards (the `max_conns` gauge).
    conn_count: AtomicUsize,
    /// Live connections per shard (the `stats` breakdown).
    shard_conns: Vec<AtomicUsize>,
    /// Set by a responder that served a `shutdown` command.
    shutdown_requested: AtomicBool,
    /// Wakes the acceptor loop when `shutdown_requested` flips.
    accept_waker: Arc<Waker>,
    shard_posts: Vec<ShardPost>,
}

/// One connection's state machine, owned by exactly one shard.
struct Conn {
    stream: TcpStream,
    token: u64,
    recv: RecvBuf,
    send: SendBuf,
    /// A request from this connection is at the responders.
    busy: bool,
    /// No more request bytes will ever arrive (peer write-half closed,
    /// EOF read, or socket error).
    eof: bool,
    /// The write path is dead; close as soon as no reply is in flight.
    doomed: bool,
    /// Flush pending output, then close (error lines, shutdown ack,
    /// drain).
    closing: bool,
    /// The fd is registered with the shard's poller.
    registered: bool,
    /// Last interest submitted to the poller, to elide no-op modifies.
    interest: Option<Interest>,
    /// The in-flight request's cancellation token, armed for
    /// disconnect-by-readiness. Taken when tripped so each request is
    /// cancelled at most once.
    cancel: Option<CancelToken>,
    /// The read deadline while idle-awaiting a request; `None` while a
    /// request is in flight. Deliberately NOT refreshed by partial
    /// bytes.
    deadline: Option<Instant>,
}

/// One reactor shard: an epoll loop over its connections plus the inbox.
struct Shard {
    id: usize,
    poller: Poller,
    /// Kept alive by `Shared::shard_posts` past this shard's exit, so a
    /// racing responder `wake()` can never hit a recycled fd.
    waker: Arc<Waker>,
    shared: Arc<Shared>,
    /// Slot-indexed connections; `gens` gives each slot reuse a fresh
    /// token so stale events and replies are ignored.
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
    /// Read deadlines, lazily deleted (entries are validated against the
    /// connection's current deadline when they fire).
    timeouts: BinaryHeap<Reverse<(Instant, u64)>>,
    draining: bool,
}

/// Serves the protocol across `engines.len()` reactor shards until a
/// `shutdown` command arrives, then drains every shard and responder
/// (each in-flight response is written before this returns). The
/// calling thread runs the acceptor. See the module docs for the
/// architecture; [`serve_with`](crate::serve_with) is the single-engine
/// wrapper.
pub fn serve_sharded(
    listener: TcpListener,
    engines: Vec<Arc<Engine>>,
    decode: NetDecoder,
    opts: ServeOptions,
) -> std::io::Result<()> {
    assert!(
        !engines.is_empty(),
        "serve_sharded needs at least one engine"
    );
    listener.set_nonblocking(true)?;
    let nshards = engines.len();

    let accept_poller = Poller::new()?;
    let accept_waker = Arc::new(Waker::new(&accept_poller, ACCEPT_WAKER_TOKEN)?);
    accept_poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;

    // Shard pollers and wakers are created here (not in the shard
    // threads) so their mailboxes exist before anything posts to them.
    let mut shard_posts = Vec::with_capacity(nshards);
    let mut shard_setup = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new(&poller, WAKER_TOKEN)?);
        shard_posts.push(ShardPost {
            inbox: Mutex::new(VecDeque::new()),
            waker: Arc::clone(&waker),
        });
        shard_setup.push((poller, waker));
    }
    let shared = Arc::new(Shared {
        engines,
        decode,
        opts,
        conn_count: AtomicUsize::new(0),
        shard_conns: (0..nshards).map(|_| AtomicUsize::new(0)).collect(),
        shutdown_requested: AtomicBool::new(false),
        accept_waker: Arc::clone(&accept_waker),
        shard_posts,
    });

    // Responder pool: sized past the engines' total admission capacity
    // (jobs in flight + queued) plus slack, so (a) enough callers block
    // inside the engines to keep them saturated and shedding behaves
    // exactly as under the threaded front end, and (b) control commands
    // (stats/shutdown) always find a free responder.
    let responder_count: usize = shared
        .engines
        .iter()
        .map(|e| e.jobs() + e.queue_depth())
        .sum::<usize>()
        + 2 * nshards
        + 2;
    let (work_tx, work_rx) = mpsc::channel::<Work>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let mut responder_handles = Vec::with_capacity(responder_count);
    for i in 0..responder_count {
        let rx = Arc::clone(&work_rx);
        let shared = Arc::clone(&shared);
        responder_handles.push(
            std::thread::Builder::new()
                .name(format!("buffopt-respond-{i}"))
                .spawn(move || responder_loop(&rx, &shared))
                .expect("spawn responder thread"),
        );
    }

    let mut shard_handles = Vec::with_capacity(nshards);
    for (id, (poller, waker)) in shard_setup.into_iter().enumerate() {
        let shard = Shard {
            id,
            poller,
            waker,
            shared: Arc::clone(&shared),
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
            timeouts: BinaryHeap::new(),
            draining: false,
        };
        let tx = work_tx.clone();
        shard_handles.push(
            std::thread::Builder::new()
                .name(format!("buffopt-shard-{id}"))
                .spawn(move || shard_loop(shard, tx))
                .expect("spawn shard thread"),
        );
    }

    // The accept loop. Round-robin is balanced enough for homogeneous
    // shards and keeps the handoff O(1); the max-conns ceiling is
    // checked against the global gauge before the handoff.
    let mut fatal: Option<std::io::Error> = None;
    let mut events: Vec<Event> = Vec::new();
    let mut rr = 0usize;
    'accept: while !shared.shutdown_requested.load(Ordering::SeqCst) {
        if let Err(e) = accept_poller.wait(&mut events, 64, None) {
            fatal = Some(e);
            break;
        }
        for ev in &events {
            if ev.token == ACCEPT_WAKER_TOKEN {
                accept_waker.drain();
                continue;
            }
            loop {
                match accept_nonblocking(&listener) {
                    Ok(None) => break,
                    Ok(Some(stream)) => {
                        let max = shared.opts.max_conns;
                        if max > 0 && shared.conn_count.load(Ordering::SeqCst) >= max {
                            shared.engines[0].metrics().record_rejected_max_conns();
                            refuse(stream);
                            continue;
                        }
                        shared.conn_count.fetch_add(1, Ordering::SeqCst);
                        shared.shard_posts[rr % nshards].post(Inbox::Conn(stream));
                        rr += 1;
                    }
                    // Per-connection failures (peer reset before accept):
                    // skip and keep accepting.
                    Err(e)
                        if matches!(
                            e.kind(),
                            ErrorKind::ConnectionAborted
                                | ErrorKind::ConnectionReset
                                | ErrorKind::Interrupted
                        ) =>
                    {
                        continue
                    }
                    // Listener-level failure: drain and surface it.
                    Err(e) => {
                        fatal = Some(e);
                        break 'accept;
                    }
                }
            }
        }
    }

    // Drain (see the module docs for the contract). `begin_shutdown` is
    // idempotent; the responder that served the shutdown command already
    // called it before acknowledging.
    for engine in &shared.engines {
        engine.begin_shutdown();
    }
    for post in &shared.shard_posts {
        post.post(Inbox::Drain);
    }
    for handle in shard_handles {
        let _ = handle.join();
    }
    // All shard-held work senders are gone once the shards joined; drop
    // ours and the responders see the channel close.
    drop(work_tx);
    for handle in responder_handles {
        let _ = handle.join();
    }
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Writes the typed max-conns refusal and closes. The socket is fresh
/// out of accept, so its (empty) send buffer takes the line without
/// blocking; a failure just means the client is already gone.
fn refuse(mut stream: TcpStream) {
    let _ = stream.write_all(MAX_CONNS_REFUSAL);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Picks the engine serving `(id, net)` by rendezvous hashing of the net
/// digest: every engine scores the request, highest score wins. Stable
/// under engine-count changes for most keys, and — the property serving
/// actually needs — deterministic, so repeated nets always land on the
/// engine whose cache and memo already hold them.
fn route<'a>(engines: &'a [Arc<Engine>], id: &str, net: &str) -> &'a Arc<Engine> {
    let key = digest(&[id.as_bytes(), net.as_bytes()]);
    engines
        .iter()
        .enumerate()
        .max_by_key(|(i, _)| digest(&[&key.to_le_bytes(), &(*i as u64).to_le_bytes()]))
        .map(|(_, e)| e)
        .expect("serve_sharded requires at least one engine")
}

/// The aggregated `stats` response: every engine's snapshot folded into
/// one fleet view, plus the per-shard breakdown.
fn aggregate_stats(shared: &Shared) -> String {
    let mut snap = shared.engines[0].metrics_snapshot();
    for engine in &shared.engines[1..] {
        snap.absorb(&engine.metrics_snapshot());
    }
    snap.shards = shared
        .engines
        .iter()
        .enumerate()
        .map(|(i, engine)| {
            let es = engine.metrics_snapshot();
            ShardStat {
                shard: i,
                conns: shared.shard_conns[i].load(Ordering::SeqCst) as u64,
                queue: engine.queue_len() as u64,
                requests: es.requests,
                cache_hits: es.cache.hits,
                cache_misses: es.cache.misses,
                memo_hits: es.memo.hits,
            }
        })
        .collect();
    snap.to_json()
}

/// One responder: blocks on the shared work channel, runs the request
/// against the engines, posts the reply back to the owning shard. A
/// panic while serving — injected at the decode seam or real — costs
/// one error response, not the connection or the server.
fn responder_loop(rx: &Mutex<mpsc::Receiver<Work>>, shared: &Shared) {
    loop {
        let work = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(w) => w,
            Err(_) => return, // every shard exited: shut down
        };
        let served = panic::catch_unwind(AssertUnwindSafe(|| {
            handle_request(&work.line, &work.cancel, shared)
        }));
        let (response, shutdown) = served.unwrap_or_else(|_| {
            shared.engines[0].metrics().record_conn_error();
            (
                error_json("internal error while serving the request"),
                false,
            )
        });
        if shutdown {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            shared.accept_waker.wake();
        }
        shared.shard_posts[work.shard].post(Inbox::Reply {
            token: work.token,
            response,
            framed: work.framed,
            shutdown,
        });
    }
}

/// Executes one request line; returns `(response, shutdown_requested)`.
fn handle_request(line: &str, cancel: &CancelToken, shared: &Shared) -> (String, bool) {
    match classify_request(line) {
        Err(response) => (response, false),
        Ok(Command::Optimize { id, net }) => {
            let engine = route(&shared.engines, &id, &net);
            let response = serve_optimize(engine, &shared.decode, &id, &net, cancel, |job| {
                engine.try_optimize_with(job, cancel.clone())
            });
            (response, false)
        }
        Ok(Command::Stats) => (aggregate_stats(shared), false),
        Ok(Command::Shutdown) => {
            // Close admission on every engine before acknowledging, so
            // requests racing the shutdown are refused explicitly from
            // this moment on.
            for engine in &shared.engines {
                engine.begin_shutdown();
            }
            ("{\"ok\":\"shutdown\"}".to_string(), true)
        }
    }
}

/// Trips the in-flight request's disconnect cancellation, at most once
/// per request. EOF during the shutdown drain never cancels: the drain
/// contract is that admitted work completes and its response is written
/// (the threaded baseline gates identically).
fn maybe_cancel_disconnect(conn: &mut Conn, shared: &Shared) {
    let Some(cancel) = conn.cancel.take() else {
        return;
    };
    if !shared.engines[0].is_shutting_down() && cancel.cancel(CancelReason::Disconnect) {
        shared.engines[0]
            .metrics()
            .record_cancelled(CancelReason::Disconnect);
    }
}

/// Appends a response (framed or plain) and its newline to the send
/// buffer.
fn queue_response(conn: &mut Conn, response: &str, framed: bool) {
    if framed {
        conn.send.queue(&encode_frame(response.as_bytes()));
    } else {
        conn.send.queue(response.as_bytes());
    }
    conn.send.queue(b"\n");
}

/// Fills the connection's receive buffer from the socket, bounded by the
/// line cap plus pipelining slack.
fn fill(conn: &mut Conn, opts: &ServeOptions) -> std::io::Result<FillOutcome> {
    let cap = opts.max_line_bytes.saturating_add(RECV_SLACK);
    let stream = &mut conn.stream;
    conn.recv.fill_from(stream, cap)
}

/// The shard's event loop: wait for readiness, handle inbox and
/// connection events, expire read deadlines, exit once draining with no
/// connections left.
fn shard_loop(mut shard: Shard, work_tx: mpsc::Sender<Work>) {
    let mut events: Vec<Event> = Vec::new();
    loop {
        let timeout = shard
            .timeouts
            .peek()
            .map(|&Reverse((t, _))| t.saturating_duration_since(Instant::now()));
        if shard
            .poller
            .wait(&mut events, EVENT_BATCH, timeout)
            .is_err()
        {
            // An unhealthy epoll fd cannot be polled again; bail out
            // rather than spin. Connections die with the shard.
            return;
        }
        for &ev in &events {
            if ev.token == WAKER_TOKEN {
                shard.waker.drain();
                shard.drain_inbox(&work_tx);
            } else {
                shard.on_conn_event(ev, &work_tx);
            }
        }
        shard.expire_deadlines(&work_tx);
        if shard.draining && shard.live == 0 {
            return;
        }
    }
}

impl Shard {
    /// Resolves a token to a live slot, ignoring stale generations.
    fn lookup(&self, token: u64) -> Option<usize> {
        let idx = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        if idx < self.gens.len() && self.gens[idx] == gen && self.conns[idx].is_some() {
            Some(idx)
        } else {
            None
        }
    }

    /// Processes every queued inbox message.
    fn drain_inbox(&mut self, work_tx: &mpsc::Sender<Work>) {
        loop {
            let msg = self.shared.shard_posts[self.id]
                .inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            match msg {
                None => return,
                Some(Inbox::Conn(stream)) => self.adopt(stream, work_tx),
                Some(Inbox::Reply {
                    token,
                    response,
                    framed,
                    shutdown,
                }) => self.on_reply(token, &response, framed, shutdown, work_tx),
                Some(Inbox::Drain) => {
                    self.draining = true;
                    for idx in 0..self.conns.len() {
                        if self.conns[idx].is_some() {
                            self.progress(idx, work_tx);
                        }
                    }
                }
            }
        }
    }

    /// Takes ownership of a freshly accepted connection: slab slot,
    /// poller registration, read-deadline arming (via `progress`).
    fn adopt(&mut self, stream: TcpStream, work_tx: &mpsc::Sender<Work>) {
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(1);
            self.conns.len() - 1
        });
        let token = ((self.gens[idx] as u64) << 32) | idx as u64;
        let fd = stream.as_raw_fd();
        let mut conn = Conn {
            stream,
            token,
            recv: RecvBuf::new(),
            send: SendBuf::new(),
            busy: false,
            eof: false,
            doomed: false,
            closing: false,
            registered: false,
            interest: None,
            cancel: None,
            deadline: None,
        };
        if self.poller.register(fd, token, Interest::READ).is_ok() {
            conn.registered = true;
            conn.interest = Some(Interest::READ);
        } else {
            // Cannot poll it; progress() closes it below.
            conn.doomed = true;
        }
        self.conns[idx] = Some(conn);
        self.live += 1;
        self.shared.shard_conns[self.id].fetch_add(1, Ordering::SeqCst);
        self.progress(idx, work_tx);
    }

    /// Closes a connection and retires its slot. Never called with a
    /// request in flight — a busy connection waits for its reply so the
    /// shard (and its waker) outlive every dispatched `Work`.
    fn close(&mut self, idx: usize) {
        let conn = self.conns[idx].take().expect("closing a live connection");
        debug_assert!(!conn.busy, "close() with a request in flight");
        if conn.registered {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.gens[idx] = self.gens[idx].wrapping_add(1).max(1);
        self.free.push(idx);
        self.live -= 1;
        self.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
        self.shared.shard_conns[self.id].fetch_sub(1, Ordering::SeqCst);
    }

    /// A responder finished this connection's in-flight request.
    fn on_reply(
        &mut self,
        token: u64,
        response: &str,
        framed: bool,
        shutdown: bool,
        work_tx: &mpsc::Sender<Work>,
    ) {
        let Some(idx) = self.lookup(token) else {
            return;
        };
        let conn = self.conns[idx].as_mut().expect("lookup returned live slot");
        conn.busy = false;
        conn.cancel = None;
        if conn.doomed {
            self.close(idx);
            return;
        }
        queue_response(conn, response, framed);
        if shutdown {
            conn.closing = true;
        }
        self.progress(idx, work_tx);
    }

    /// Readiness arrived for a connection's socket.
    fn on_conn_event(&mut self, ev: Event, work_tx: &mpsc::Sender<Work>) {
        let Some(idx) = self.lookup(ev.token) else {
            return;
        };
        {
            let shared = Arc::clone(&self.shared);
            let conn = self.conns[idx].as_mut().expect("lookup returned live slot");
            if ev.error || ev.hup {
                // Fully dead socket (error state or both directions
                // closed): salvage any pipelined bytes the kernel still
                // holds, then stop polling it — writes would fail anyway.
                conn.eof = true;
                conn.doomed = true;
                let _ = fill(conn, &shared.opts);
                if conn.registered {
                    let _ = self.poller.deregister(conn.stream.as_raw_fd());
                    conn.registered = false;
                    conn.interest = None;
                }
            } else {
                if ev.rdhup {
                    // Peer closed its write half: collect the pipelined
                    // tail now (no more readable events will announce
                    // it), keep the write path for its responses.
                    conn.eof = true;
                    let _ = fill(conn, &shared.opts);
                } else if ev.readable && !conn.busy && !conn.eof {
                    match fill(conn, &shared.opts) {
                        Ok(FillOutcome::Eof) => conn.eof = true,
                        Ok(_) => {}
                        Err(_) => {
                            // Unreadable stream: the baseline closes
                            // silently; mirror it.
                            conn.eof = true;
                            conn.doomed = true;
                        }
                    }
                }
                // Writable readiness needs no flag: progress() always
                // starts by flushing.
            }
        }
        self.progress(idx, work_tx);
    }

    /// Fires expired read deadlines: idle connections past their clock
    /// get the typed timeout error and close. Heap entries are lazily
    /// deleted — anything stale (slot reused, request dispatched,
    /// deadline re-armed later) is skipped.
    fn expire_deadlines(&mut self, work_tx: &mpsc::Sender<Work>) {
        loop {
            let now = Instant::now();
            let (when, token) = match self.timeouts.peek() {
                Some(&Reverse((t, tok))) if t <= now => (t, tok),
                _ => return,
            };
            self.timeouts.pop();
            let Some(idx) = self.lookup(token) else {
                continue;
            };
            {
                let conn = self.conns[idx].as_mut().expect("lookup returned live slot");
                if conn.busy || conn.closing || conn.doomed || conn.deadline != Some(when) {
                    continue;
                }
                conn.deadline = None;
                self.shared.engines[0].metrics().record_conn_error();
                queue_response(
                    conn,
                    &error_json("read timed out; closing connection"),
                    false,
                );
                conn.closing = true;
            }
            self.progress(idx, work_tx);
        }
    }

    /// The per-connection state machine: flush output, then (unless a
    /// request is in flight) consume buffered lines — dispatching
    /// requests, answering protocol errors inline, honoring
    /// drain/EOF/doom transitions — until the connection blocks, closes,
    /// or goes busy.
    fn progress(&mut self, idx: usize, work_tx: &mpsc::Sender<Work>) {
        loop {
            let shared = Arc::clone(&self.shared);
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if let buffopt_netpoll::FlushOutcome::Closed = conn.send.flush_to(&mut conn.stream) {
                conn.doomed = true;
            }
            if conn.doomed {
                if conn.busy {
                    // Keep the slot until the in-flight reply returns;
                    // nothing more to poll for.
                    self.update_interest(idx);
                } else {
                    self.close(idx);
                }
                return;
            }
            if conn.closing {
                if conn.send.is_empty() && !conn.busy {
                    self.close(idx);
                } else {
                    self.update_interest(idx);
                }
                return;
            }
            if conn.busy {
                // Disconnect-by-readiness: the peer is gone and nothing
                // pipelined remains, so the in-flight run is for nobody.
                if conn.eof && conn.recv.is_empty() {
                    maybe_cancel_disconnect(conn, &shared);
                }
                self.update_interest(idx);
                return;
            }
            match conn.recv.take_line(shared.opts.max_line_bytes) {
                TakeLine::TooLong(_) => {
                    shared.engines[0].metrics().record_conn_error();
                    let msg = format!(
                        "request line exceeds {} bytes; closing connection",
                        shared.opts.max_line_bytes
                    );
                    queue_response(conn, &error_json(&msg), false);
                    conn.closing = true;
                    continue;
                }
                TakeLine::Partial => {
                    if conn.eof || self.draining {
                        // No more bytes will complete this line; a
                        // trailing fragment is discarded exactly like
                        // the baseline's EOF mid-line.
                        conn.closing = true;
                        continue;
                    }
                    if conn.deadline.is_none() {
                        if let Some(t) = shared.opts.read_timeout {
                            let when = Instant::now() + t;
                            conn.deadline = Some(when);
                            let token = conn.token;
                            self.timeouts.push(Reverse((when, token)));
                        }
                    }
                    self.update_interest(idx);
                    return;
                }
                TakeLine::Line(bytes) => {
                    conn.deadline = None;
                    let framed = shared.opts.frame_check && is_framed(&bytes);
                    let line: String = if framed {
                        // Frame validation is a decode step of its own,
                        // with its own arming of the decode fault seam:
                        // a `TruncateFrame` fault chops the frame
                        // mid-payload, exactly like a sender that died
                        // mid-write.
                        let torn: Vec<u8>;
                        let frame: &[u8] = match shared.engines[0]
                            .fault_plan()
                            .and_then(|p| p.fire(Seam::Decode))
                        {
                            Some(FaultAction::TruncateFrame) => {
                                torn = bytes[..bytes.len() / 2].to_vec();
                                &torn
                            }
                            _ => &bytes,
                        };
                        match decode_frame(frame) {
                            Err(e) => {
                                shared.engines[0].metrics().record_bad_frame();
                                queue_response(conn, &bad_frame_json(&e.to_string()), true);
                                continue;
                            }
                            Ok(payload) => match std::str::from_utf8(payload) {
                                Err(_) => {
                                    shared.engines[0].metrics().record_bad_frame();
                                    queue_response(
                                        conn,
                                        &bad_frame_json("frame payload is not UTF-8"),
                                        true,
                                    );
                                    continue;
                                }
                                Ok(p) => p.trim().to_string(),
                            },
                        }
                    } else {
                        String::from_utf8_lossy(&bytes).trim().to_string()
                    };
                    if line.is_empty() {
                        continue;
                    }
                    let cancel = CancelToken::new();
                    conn.busy = true;
                    conn.cancel = Some(cancel.clone());
                    let token = conn.token;
                    if work_tx
                        .send(Work {
                            shard: self.id,
                            token,
                            line,
                            framed,
                            cancel,
                        })
                        .is_err()
                    {
                        // The responder pool is gone (only possible
                        // after a drain); close out politely.
                        let conn = self.conns[idx].as_mut().expect("slot still live");
                        conn.busy = false;
                        conn.cancel = None;
                        conn.closing = true;
                    }
                    continue;
                }
            }
        }
    }

    /// Reconciles the poller registration with the connection's state:
    /// read interest only while idle and readable bytes matter, write
    /// interest only while output is pending, half-close notification
    /// only until observed. No-op when nothing changed.
    fn update_interest(&mut self, idx: usize) {
        let draining = self.draining;
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if !conn.registered {
            return;
        }
        let want = Interest {
            readable: !conn.busy && !conn.eof && !conn.closing && !conn.doomed && !draining,
            writable: !conn.send.is_empty(),
            rdhup: !conn.eof,
        };
        if conn.interest != Some(want)
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), conn.token, want)
                .is_ok()
        {
            conn.interest = Some(want);
        }
    }
}
