//! The concurrent execution engine: a fixed-size worker pool fed through
//! a bounded channel, fronted by the solution cache and the metrics.
//!
//! # Determinism
//!
//! [`Engine::run_jobs`] tags every job with its input index, lets workers
//! complete in whatever order the scheduler produces, and reassembles the
//! records by index — so a parallel batch emits records in exactly the
//! input order, and the content of each record is independent of which
//! worker computed it (per-net optimization is single-threaded and
//! deterministic). The only field that varies between runs is the
//! measured `wall_ms`, exactly as it already does between two serial
//! runs.
//!
//! # Fault isolation
//!
//! Per-net panics are already contained inside
//! [`buffopt_pipeline::optimize_input`]; the worker wraps the whole call
//! in one more `catch_unwind` so even a panic in the record-keeping path
//! yields a `failed` record instead of a hung batch slot. The engine
//! holds a [`hush_panics`] guard for its lifetime, so a panicking net in
//! a parallel batch does not spray one backtrace per worker onto stderr.
//!
//! [`hush_panics`]: buffopt_pipeline::hush_panics

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use buffopt_pipeline::{
    hush_panics, optimize_input, BatchReport, NetInput, NetOutcome, Outcome, PanicHush,
    PipelineConfig,
};

use crate::cache::{digest, SolutionCache};
use crate::metrics::{Metrics, MetricsSnapshot};

/// One unit of work: a net plus an optional cache key. Jobs without a
/// key bypass the cache entirely (both lookup and fill).
#[derive(Debug, Clone)]
pub struct Job {
    /// The net to optimize (or the parse failure to record).
    pub input: NetInput,
    /// Content digest over `(net, scenario, library, budget)`; see
    /// [`Engine::key_for`].
    pub cache_key: Option<u64>,
}

/// Whether a request was answered from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the cache without re-optimizing.
    Hit,
    /// Computed by a worker (and cached if the job carried a key).
    Miss,
}

impl CacheStatus {
    /// Stable lowercase identifier used in service responses.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
        }
    }
}

/// A served request: the record plus serving provenance.
#[derive(Debug, Clone)]
pub struct Served {
    /// The per-net outcome record.
    pub outcome: NetOutcome,
    /// Cache hit or miss.
    pub cache: CacheStatus,
    /// Index of the worker that computed the record (for a hit, the
    /// worker that computed it originally).
    pub worker: usize,
}

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads in the pool (≥ 1; clamped).
    pub jobs: usize,
    /// Total solution-cache capacity in records; 0 disables caching.
    pub cache_capacity: usize,
    /// Cache shards (lock granularity).
    pub cache_shards: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            jobs: default_jobs(),
            cache_capacity: 1024,
            cache_shards: 8,
        }
    }
}

/// The machine's available parallelism (≥ 1).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct Task {
    idx: usize,
    job: Job,
    reply: mpsc::Sender<Done>,
}

struct Done {
    idx: usize,
    cache_key: Option<u64>,
    outcome: NetOutcome,
    worker: usize,
}

/// The worker-pool execution engine. Create once, submit batches
/// ([`Engine::run_jobs`]) or single requests ([`Engine::optimize`]) from
/// any number of threads; drop to shut the pool down.
pub struct Engine {
    tx: Mutex<Option<SyncSender<Task>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    cfg: Arc<PipelineConfig>,
    cfg_digest: u64,
    cache: SolutionCache,
    metrics: Metrics,
    jobs: usize,
    _hush: PanicHush,
}

impl Engine {
    /// Spawns the worker pool and takes ownership of the pipeline
    /// configuration every net will run under.
    pub fn new(cfg: PipelineConfig, opts: EngineOptions) -> Self {
        let jobs = opts.jobs.max(1);
        let cfg = Arc::new(cfg);
        // The config fingerprint folds the library, budget, and every
        // optimizer flag into the cache key, so two engines with
        // different configs never alias records. `Debug` output is
        // stable within a process, which is all an in-memory cache needs.
        let cfg_digest = digest(&[format!("{cfg:?}").as_bytes()]);
        // Bounded queue: submitters block once the pool is saturated
        // instead of buffering an unbounded batch in channel memory.
        let (tx, rx) = mpsc::sync_channel::<Task>(jobs * 2);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..jobs)
            .map(|wid| {
                let rx = Arc::clone(&rx);
                let cfg = Arc::clone(&cfg);
                std::thread::Builder::new()
                    .name(format!("buffopt-worker-{wid}"))
                    .spawn(move || worker_loop(wid, &rx, &cfg))
                    .expect("spawn worker thread")
            })
            .collect();
        Engine {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            cfg,
            cfg_digest,
            cache: SolutionCache::new(opts.cache_capacity, opts.cache_shards),
            metrics: Metrics::default(),
            jobs,
            _hush: hush_panics(),
        }
    }

    /// Worker threads in the pool.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The configuration every net runs under.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The cache key for a net identified by `name` with raw content
    /// `body` (the `.net` text, or any canonical byte form): a digest of
    /// the content *and* this engine's full configuration, so records
    /// computed under different libraries, budgets, or flags never alias.
    pub fn key_for(&self, name: &str, body: &str) -> u64 {
        digest(&[
            &self.cfg_digest.to_le_bytes(),
            name.as_bytes(),
            body.as_bytes(),
        ])
    }

    /// A point-in-time metrics snapshot (counters + cache + pool size).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.cache.stats(), self.jobs)
    }

    fn sender(&self) -> SyncSender<Task> {
        self.tx
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .expect("engine is running")
    }

    /// Serves one request: cache lookup, then (on a miss) a round trip
    /// through the worker pool, then cache fill. Blocks until the record
    /// is ready. Callable concurrently from any number of threads.
    pub fn optimize(&self, job: Job) -> Served {
        self.metrics.record_request();
        if let Some(key) = job.cache_key {
            if let Some((outcome, worker)) = self.cache.get(key) {
                return Served {
                    outcome,
                    cache: CacheStatus::Hit,
                    worker,
                };
            }
        }
        let (reply, inbox) = mpsc::channel();
        self.sender()
            .send(Task { idx: 0, job, reply })
            .expect("worker pool alive");
        let done = inbox.recv().expect("worker replies");
        self.metrics.record_outcome(&done.outcome);
        if let Some(key) = done.cache_key {
            self.cache.insert(key, done.outcome.clone(), done.worker);
        }
        Served {
            outcome: done.outcome,
            cache: CacheStatus::Miss,
            worker: done.worker,
        }
    }

    /// Runs a whole batch through the pool and reassembles the records
    /// in input order. Cache hits are resolved inline; misses are fanned
    /// out. The report is the same type the serial pipeline produces, so
    /// summaries and exit codes are unchanged.
    pub fn run_jobs(&self, jobs: Vec<Job>) -> BatchReport {
        let start = Instant::now();
        let n = jobs.len();
        let mut results: Vec<Option<NetOutcome>> = (0..n).map(|_| None).collect();
        let mut names: Vec<String> = jobs.iter().map(|j| j.input.name().to_string()).collect();
        let (reply, inbox) = mpsc::channel::<Done>();
        let mut queue: Vec<Task> = Vec::new();
        for (idx, job) in jobs.into_iter().enumerate() {
            self.metrics.record_request();
            if let Some(key) = job.cache_key {
                if let Some((outcome, _)) = self.cache.get(key) {
                    results[idx] = Some(outcome);
                    continue;
                }
            }
            queue.push(Task {
                idx,
                job,
                reply: reply.clone(),
            });
        }
        drop(reply);
        let pending = queue.len();
        // Feed from a separate thread: the bounded queue gives
        // backpressure, so the feeder blocks while this thread drains
        // replies — no deadlock however large the batch.
        let tx = self.sender();
        let feeder = std::thread::spawn(move || {
            for task in queue {
                if tx.send(task).is_err() {
                    break;
                }
            }
        });
        for _ in 0..pending {
            match inbox.recv() {
                Ok(done) => {
                    self.metrics.record_outcome(&done.outcome);
                    if let Some(key) = done.cache_key {
                        self.cache.insert(key, done.outcome.clone(), done.worker);
                    }
                    results[done.idx] = Some(done.outcome);
                }
                Err(_) => break, // pool died; missing slots filled below
            }
        }
        feeder.join().expect("feeder thread");
        let outcomes = results
            .iter_mut()
            .enumerate()
            .map(|(idx, slot)| {
                slot.take().unwrap_or_else(|| {
                    failed_record(std::mem::take(&mut names[idx]), "worker pool died")
                })
            })
            .collect();
        BatchReport {
            outcomes,
            wall: start.elapsed(),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the channel drains the queue and lets workers exit.
        self.tx.lock().unwrap_or_else(|e| e.into_inner()).take();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for w in workers {
            let _ = w.join();
        }
    }
}

fn failed_record(name: String, why: &str) -> NetOutcome {
    let mut o = optimize_input(
        &NetInput::Failed {
            name,
            error: String::new(),
        },
        // The config is irrelevant for the Failed variant; build the
        // cheapest possible one.
        &PipelineConfig::new(buffopt_buffers::BufferLibrary::new()),
    );
    o.outcome = Outcome::Failed;
    o.error = Some(why.to_string());
    o
}

fn worker_loop(wid: usize, rx: &Arc<Mutex<Receiver<Task>>>, cfg: &Arc<PipelineConfig>) {
    loop {
        // Hold the receiver lock only while dequeuing; contention here is
        // negligible next to per-net optimization time.
        let task = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(t) => t,
            Err(_) => return, // engine dropped the sender: shut down
        };
        let name = task.job.input.name().to_string();
        // `optimize_input` contains per-rung panic boundaries already;
        // this outer guard turns even a bookkeeping panic into a record,
        // so the batch collector never waits on a dead slot.
        let outcome =
            panic::catch_unwind(AssertUnwindSafe(|| optimize_input(&task.job.input, cfg)))
                .unwrap_or_else(|_| {
                    failed_record(name, "worker panicked outside the net boundary")
                });
        let _ = task.reply.send(Done {
            idx: task.idx,
            cache_key: task.job.cache_key,
            outcome,
            worker: wid,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_send_and_sync() {
        fn ok<T: Send + Sync>() {}
        ok::<Engine>();
        ok::<Job>();
        ok::<Served>();
    }

    #[test]
    fn key_for_separates_name_content_and_config() {
        let lib = buffopt_buffers::catalog::single_buffer();
        let e1 = Engine::new(
            PipelineConfig::new(lib.clone()),
            EngineOptions {
                jobs: 1,
                ..EngineOptions::default()
            },
        );
        let k = e1.key_for("a", "body");
        assert_eq!(k, e1.key_for("a", "body"), "stable");
        assert_ne!(k, e1.key_for("b", "body"), "name matters");
        assert_ne!(k, e1.key_for("a", "other"), "content matters");
        let mut cfg2 = PipelineConfig::new(lib);
        cfg2.conservative = true;
        let e2 = Engine::new(
            cfg2,
            EngineOptions {
                jobs: 1,
                ..EngineOptions::default()
            },
        );
        assert_ne!(k, e2.key_for("a", "body"), "config matters");
    }

    #[test]
    fn empty_batch_returns_empty_report() {
        let e = Engine::new(
            PipelineConfig::new(buffopt_buffers::catalog::single_buffer()),
            EngineOptions {
                jobs: 2,
                ..EngineOptions::default()
            },
        );
        let report = e.run_jobs(Vec::new());
        assert!(report.outcomes.is_empty());
        assert_eq!(e.metrics_snapshot().requests, 0);
    }
}
