//! The concurrent execution engine: a supervised fixed-size worker pool
//! fed through a bounded channel, fronted by the solution cache and the
//! metrics, with admission control for interactive callers.
//!
//! # Determinism
//!
//! [`Engine::run_jobs`] tags every job with its input index, lets workers
//! complete in whatever order the scheduler produces, and reassembles the
//! records by index — so a parallel batch emits records in exactly the
//! input order, and the content of each record is independent of which
//! worker computed it (per-net optimization is single-threaded and
//! deterministic). The only field that varies between runs is the
//! measured `wall_ms`, exactly as it already does between two serial
//! runs.
//!
//! # Supervision
//!
//! Per-net panics are contained inside the worker's panic boundary and
//! become `failed` records. A worker that dies *outside* that boundary
//! (a panic in the dequeue/bookkeeping path, or an injected
//! [`FaultAction::KillWorker`]) is detected immediately: every dequeued
//! task is held by a drop guard that, if the worker unwinds or exits
//! without completing it, decrements the live-worker count and sends a
//! "died" reply carrying the job back to the requester. The engine then
//! joins the dead thread, spawns a replacement, counts the death and the
//! respawn in the metrics, and retries the in-flight request up to
//! [`EngineOptions::max_retries`] times before failing **only that
//! request**. A completed record whose net name does not match the
//! submitted job is treated the same way (a corrupt worker is a dead
//! worker as far as the caller is concerned).
//!
//! # Admission control
//!
//! The task queue is bounded. [`Engine::try_optimize`] — the TCP
//! service's entry point — **sheds** instead of blocking when the queue
//! is at its high-watermark ([`Rejection::Overloaded`]), arms the
//! per-request deadline at admission (queue wait counts against it),
//! gives up with [`Rejection::DeadlineExceeded`] when the deadline
//! passes, and refuses new work with [`Rejection::ShuttingDown`] once
//! [`Engine::begin_shutdown`] has been called. When a request times out
//! while a worker is still grinding on it, the engine spawns a surplus
//! replacement so the stalled slot does not shrink the pool; the stalled
//! worker retires itself once it finishes and finds its reply abandoned.
//! Workers additionally drop queued tasks whose deadline expired while
//! waiting ("stale"), so an overloaded queue drains at memcpy speed
//! instead of computing answers nobody is waiting for. Blocking callers
//! ([`Engine::optimize`], [`Engine::run_jobs`]) feel backpressure
//! instead of shedding and carry no deadline.
//!
//! # Cancellation
//!
//! Every task carries a [`CancelToken`] checked by the optimizer at
//! merge-row stride granularity. A deadline expiry trips it before the
//! surplus worker is spawned, so the stalled run aborts within
//! microseconds and the slot retires against the surplus credit instead
//! of grinding to completion for nobody; the TCP service trips the same
//! token when it sees the client disconnect mid-request
//! ([`Engine::try_optimize_with`]). Injected resource faults resolve
//! into the run rather than the machinery: `MemPressure` forces one run
//! under a tiny arena cap with degrade-in-place on, and `CancelRun`
//! trips the token with the supervisor reason. Shutdown deliberately
//! does NOT cancel in-flight work — the drain contract ("every admitted
//! request gets its response") stays intact.
//!
//! [`FaultAction::KillWorker`]: buffopt_pipeline::fault::FaultAction::KillWorker

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use buffopt::{CancelReason, CancelToken};
use buffopt_pipeline::fault::{FaultAction, FaultPlan, Seam};
use buffopt_pipeline::{
    hush_panics, optimize_input, optimize_input_with_cancel, reverify_outcome, BatchReport,
    NetInput, NetOutcome, Outcome, PanicHush, PipelineConfig, Reverify,
};

use crate::cache::{digest, SolutionCache};
use crate::metrics::{Metrics, MetricsSnapshot};

/// One unit of work: a net plus an optional cache key. Jobs without a
/// key bypass the cache entirely (both lookup and fill).
#[derive(Debug, Clone)]
pub struct Job {
    /// The net to optimize (or the parse failure to record).
    pub input: NetInput,
    /// Content digest over `(net, scenario, library, budget)`; see
    /// [`Engine::key_for`].
    pub cache_key: Option<u64>,
}

/// Whether a request was answered from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the cache without re-optimizing.
    Hit,
    /// Computed by a worker (and cached if the job carried a key).
    Miss,
}

impl CacheStatus {
    /// Stable lowercase identifier used in service responses.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
        }
    }
}

/// A served request: the record plus serving provenance.
#[derive(Debug, Clone)]
pub struct Served {
    /// The per-net outcome record.
    pub outcome: NetOutcome,
    /// Cache hit or miss.
    pub cache: CacheStatus,
    /// Index of the worker that computed the record (for a hit, the
    /// worker that computed it originally).
    pub worker: usize,
}

/// Why an interactive request was refused without a record. Each variant
/// maps to one structured `{"error":...}` response of the TCP service
/// and one admission counter in the metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The queue is at its high-watermark; retry later.
    Overloaded,
    /// The per-request deadline passed before a worker finished.
    DeadlineExceeded,
    /// [`Engine::begin_shutdown`] was called; no new work is admitted.
    ShuttingDown,
}

impl Rejection {
    /// Stable lowercase identifier used in service error responses and
    /// the metrics snapshot.
    pub fn as_str(self) -> &'static str {
        match self {
            Rejection::Overloaded => "overloaded",
            Rejection::DeadlineExceeded => "deadline_exceeded",
            Rejection::ShuttingDown => "shutting_down",
        }
    }
}

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads in the pool (≥ 1; clamped).
    pub jobs: usize,
    /// Total solution-cache capacity in records; 0 disables caching.
    pub cache_capacity: usize,
    /// Cache shards (lock granularity).
    pub cache_shards: usize,
    /// Queue high-watermark for [`Engine::try_optimize`] admission;
    /// 0 means `2 × jobs` (the default backpressure depth).
    pub queue_depth: usize,
    /// Per-request deadline for [`Engine::try_optimize`], armed at
    /// admission (queue wait counts); `None` disables it. Distinct from
    /// the pipeline's per-net compute budget, which arms at dequeue.
    pub request_deadline: Option<Duration>,
    /// How many times a request whose worker died (or returned a record
    /// for the wrong net) is retried before it fails.
    pub max_retries: u32,
    /// Deterministic fault-injection plan for chaos tests; `None` in
    /// production.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Fraction of served responses (cache hits included) handed to an
    /// off-critical-path audit thread that independently re-derives the
    /// record's slack and noise headroom
    /// ([`buffopt_pipeline::reverify_outcome`]). `0.0` (the default)
    /// disables the auditor entirely; `1.0` audits every response.
    /// Sampling is deterministic (every ⌈1/rate⌉-th response), never
    /// random. A failed audit counts `integrity.verify_failures` and
    /// evicts the record's cache entry so the lie is never served again.
    pub verify_sample_rate: f64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            jobs: default_jobs(),
            cache_capacity: 1024,
            cache_shards: 8,
            queue_depth: 0,
            request_deadline: None,
            max_retries: 1,
            fault_plan: None,
            verify_sample_rate: 0.0,
        }
    }
}

/// The machine's available parallelism (≥ 1).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct Task {
    idx: usize,
    attempt: u32,
    job: Job,
    deadline: Option<Instant>,
    /// Shared cancellation flag for this request: the submitter keeps a
    /// clone and trips it (deadline expiry, client disconnect) to abort
    /// the worker's run at its next stride checkpoint.
    cancel: CancelToken,
    reply: mpsc::Sender<Done>,
}

struct Done {
    idx: usize,
    attempt: u32,
    /// The job travels back with the reply so a retry never clones the
    /// input tree.
    job: Job,
    /// The request's cancel token travels back too, so a retry keeps
    /// answering to the same submitter-held flag.
    cancel: CancelToken,
    /// `None` means the worker died before producing a record (or
    /// dropped the task as stale).
    outcome: Option<NetOutcome>,
    /// The task's deadline had already passed when a worker dequeued it;
    /// it was dropped unstarted.
    stale: bool,
    worker: usize,
}

/// State shared by every worker thread and the engine's supervisor.
struct WorkerShared {
    rx: Mutex<mpsc::Receiver<Task>>,
    cfg: Arc<PipelineConfig>,
    plan: Option<Arc<FaultPlan>>,
    /// Shared with the engine so workers can attribute cancellations
    /// they deliver themselves (stale drops, injected supervisor kills).
    metrics: Arc<Metrics>,
    /// Worker threads alive right now — incremented when a thread is
    /// promised (at spawn), decremented by the death guard and by
    /// surplus retirement, so supervisors never over-spawn.
    live: AtomicUsize,
    /// Outstanding stalled-slot replacements: incremented when a
    /// deadline expiry spawns an extra worker, consumed when a worker
    /// retires to shrink the pool back to target strength.
    surplus: AtomicUsize,
    /// Nominal pool size.
    target: usize,
    /// Tasks submitted but not yet dequeued by a worker — a queue-depth
    /// gauge for per-shard stats, maintained on every send/dequeue pair.
    queued: AtomicUsize,
}

impl WorkerShared {
    /// Consumes one surplus credit if any is outstanding; the calling
    /// worker retires on `true`.
    fn try_retire(&self) -> bool {
        let won = self
            .surplus
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| s.checked_sub(1))
            .is_ok();
        if won {
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
        won
    }
}

/// Holds a dequeued task and sends the "died" reply if the worker
/// unwinds or exits without completing it — the supervisor's detection
/// signal. The live count is decremented *before* that reply is sent,
/// so by the time the engine reacts to a death the pool accounting
/// already reflects it.
struct TaskGuard<'a> {
    shared: &'a WorkerShared,
    reply: mpsc::Sender<Done>,
    payload: Option<(usize, u32, Job, CancelToken)>,
    worker: usize,
}

impl TaskGuard<'_> {
    fn input_name(&self) -> String {
        self.payload
            .as_ref()
            .map(|(_, _, job, _)| job.input.name().to_string())
            .unwrap_or_default()
    }

    /// Sends the completed (or stale-dropped) reply; returns whether the
    /// requester was still listening.
    fn complete(&mut self, outcome: Option<NetOutcome>, stale: bool) -> bool {
        match self.payload.take() {
            Some((idx, attempt, job, cancel)) => self
                .reply
                .send(Done {
                    idx,
                    attempt,
                    job,
                    cancel,
                    outcome,
                    stale,
                    worker: self.worker,
                })
                .is_ok(),
            None => true,
        }
    }
}

impl Drop for TaskGuard<'_> {
    fn drop(&mut self) {
        if self.payload.is_some() {
            // Dying with the task in hand: account the death first, then
            // signal it, so the supervisor's respawn math is never early.
            self.shared.live.fetch_sub(1, Ordering::SeqCst);
            let _ = self.complete(None, false);
        }
    }
}

/// What the engine decided about one worker reply.
//
// `Final` dwarfs `Retried`, but a `Triage` lives only for the match
// immediately after triage returns — boxing the outcome would cost an
// allocation per request to shrink a value that never outlives a frame.
#[allow(clippy::large_enum_variant)]
enum Triage {
    /// The task was resubmitted; wait for another reply.
    Retried,
    /// The record (possibly a synthesized failure) is final.
    Final {
        idx: usize,
        outcome: NetOutcome,
        cache_key: Option<u64>,
        worker: usize,
        /// The original job, for the sampled re-verification audit
        /// (`None` when the record is a synthesized failure — there is
        /// nothing to audit).
        job: Option<Job>,
    },
}

/// One response handed to the audit thread: everything needed to
/// independently re-derive the record's figures.
struct VerifyTask {
    cache_key: Option<u64>,
    input: NetInput,
    outcome: NetOutcome,
}

/// The worker-pool execution engine. Create once, submit batches
/// ([`Engine::run_jobs`]) or single requests ([`Engine::optimize`] /
/// [`Engine::try_optimize`]) from any number of threads; drop to shut
/// the pool down.
pub struct Engine {
    tx: Mutex<Option<SyncSender<Task>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    shared: Arc<WorkerShared>,
    cfg: Arc<PipelineConfig>,
    cfg_digest: u64,
    cache: Arc<SolutionCache>,
    metrics: Arc<Metrics>,
    jobs: usize,
    queue_depth: usize,
    max_retries: u32,
    request_deadline: Option<Duration>,
    shutting_down: AtomicBool,
    next_worker_id: AtomicUsize,
    started: Instant,
    /// Sampled re-verification (see [`EngineOptions::verify_sample_rate`]).
    verify_rate: f64,
    verify_seen: AtomicU64,
    verify_tx: Option<mpsc::Sender<VerifyTask>>,
    verify_handle: Option<JoinHandle<()>>,
    _hush: PanicHush,
}

impl Engine {
    /// Spawns the worker pool and takes ownership of the pipeline
    /// configuration every net will run under.
    pub fn new(cfg: PipelineConfig, opts: EngineOptions) -> Self {
        let jobs = opts.jobs.max(1);
        let queue_depth = if opts.queue_depth == 0 {
            jobs * 2
        } else {
            opts.queue_depth
        };
        let cfg = Arc::new(cfg);
        // The config fingerprint folds the library, budget, and every
        // optimizer flag into the cache key, so two engines with
        // different configs never alias records. `Debug` output is
        // stable within a process, which is all an in-memory cache needs.
        let cfg_digest = digest(&[format!("{cfg:?}").as_bytes()]);
        // Bounded queue: submitters block (or shed, for try_optimize)
        // once the pool is saturated instead of buffering an unbounded
        // batch in channel memory.
        let (tx, rx) = mpsc::sync_channel::<Task>(queue_depth);
        let metrics = Arc::new(Metrics::default());
        let shared = Arc::new(WorkerShared {
            rx: Mutex::new(rx),
            cfg: Arc::clone(&cfg),
            plan: opts.fault_plan,
            metrics: Arc::clone(&metrics),
            live: AtomicUsize::new(0),
            surplus: AtomicUsize::new(0),
            target: jobs,
            queued: AtomicUsize::new(0),
        });
        let cache = Arc::new(SolutionCache::new(opts.cache_capacity, opts.cache_shards));
        let verify_rate = opts.verify_sample_rate.clamp(0.0, 1.0);
        let (verify_tx, verify_handle) = if verify_rate > 0.0 {
            let (vtx, vrx) = mpsc::channel::<VerifyTask>();
            let vcfg = Arc::clone(&cfg);
            let vcache = Arc::clone(&cache);
            let vmetrics = Arc::clone(&metrics);
            let handle = std::thread::Builder::new()
                .name("buffopt-verifier".into())
                .spawn(move || verifier_loop(vrx, &vcfg, &vcache, &vmetrics))
                .expect("spawn verifier thread");
            (Some(vtx), Some(handle))
        } else {
            (None, None)
        };
        let engine = Engine {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(Vec::with_capacity(jobs)),
            shared,
            cfg,
            cfg_digest,
            cache,
            metrics,
            jobs,
            queue_depth,
            max_retries: opts.max_retries,
            request_deadline: opts.request_deadline,
            shutting_down: AtomicBool::new(false),
            next_worker_id: AtomicUsize::new(0),
            started: Instant::now(),
            verify_rate,
            verify_seen: AtomicU64::new(0),
            verify_tx,
            verify_handle,
            _hush: hush_panics(),
        };
        {
            let mut workers = engine.workers.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..jobs {
                let handle = engine.spawn_worker();
                workers.push(handle);
            }
        }
        engine
    }

    fn spawn_worker(&self) -> JoinHandle<()> {
        let wid = self.next_worker_id.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        // Count the worker as live from the moment it is promised, so
        // concurrent supervisors never over-spawn.
        shared.live.fetch_add(1, Ordering::SeqCst);
        std::thread::Builder::new()
            .name(format!("buffopt-worker-{wid}"))
            .spawn(move || worker_loop(wid, &shared))
            .expect("spawn worker thread")
    }

    /// Worker threads the pool targets (its nominal size).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The bounded submission queue's capacity (resolved from
    /// [`EngineOptions::queue_depth`], so never zero).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Tasks submitted but not yet picked up by a worker right now — a
    /// racy instantaneous gauge, suitable for stats reporting only.
    pub fn queue_len(&self) -> usize {
        self.shared.queued.load(Ordering::SeqCst)
    }

    /// Worker threads alive right now (may briefly exceed
    /// [`Engine::jobs`] while a stalled worker's surplus replacement is
    /// active).
    pub fn live_workers(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// The configuration every net runs under.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub(crate) fn fault_plan(&self) -> Option<&FaultPlan> {
        self.shared.plan.as_deref()
    }

    /// The cache key for a net identified by `name` with raw content
    /// `body` (the `.net` text, or any canonical byte form): a digest of
    /// the content *and* this engine's full configuration, so records
    /// computed under different libraries, budgets, or flags never alias.
    pub fn key_for(&self, name: &str, body: &str) -> u64 {
        digest(&[
            &self.cfg_digest.to_le_bytes(),
            name.as_bytes(),
            body.as_bytes(),
        ])
    }

    /// A point-in-time metrics snapshot (counters + cache + subtree memo
    /// table + pool size).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let memo = self
            .cfg
            .memo
            .as_ref()
            .map(|t| t.stats())
            .unwrap_or_default();
        self.metrics
            .snapshot(self.cache.stats(), memo, self.jobs, self.started.elapsed())
    }

    /// Closes the sampled-verification channel, waits for the auditor to
    /// drain its backlog, and returns the final `(samples, failures)`
    /// tally. For batch runs that want a complete audit before printing
    /// their summary; sampling stops afterwards. `(0, 0)` when sampling
    /// was off.
    pub fn drain_verification(&mut self) -> (u64, u64) {
        self.verify_tx.take();
        if let Some(v) = self.verify_handle.take() {
            let _ = v.join();
        }
        self.metrics.verify_tally()
    }

    /// Arms the [`Seam::Store`] fault seam right after a cache insert and
    /// applies any state-corruption fault to the state just committed —
    /// modelling bit rot between the write and the next read, which the
    /// verify-on-hit checks must turn into a detected eviction instead of
    /// a served lie.
    fn fire_store_fault(&self, key: u64) {
        let Some(plan) = self.fault_plan() else {
            return;
        };
        match plan.fire(Seam::Store) {
            Some(FaultAction::BitFlipCacheEntry) => {
                self.cache.corrupt(key, false);
            }
            Some(FaultAction::BitFlipMemoEntry) => {
                if let Some(memo) = self.cfg.memo.as_ref() {
                    memo.corrupt_any();
                }
            }
            _ => {}
        }
    }

    /// Test-only: corrupts the cached record for `key` in place (see
    /// `SolutionCache::corrupt`). `rehash` recomputes the stored checksum
    /// over the corrupted bytes, modelling corruption that *predates*
    /// checksumming — invisible to verify-on-hit, catchable only by the
    /// sampled audit.
    #[doc(hidden)]
    pub fn corrupt_cache_entry(&self, key: u64, rehash: bool) -> bool {
        self.cache.corrupt(key, rehash)
    }

    /// Deterministic sampler for the audit thread: response `n` is
    /// sampled iff `⌊n·rate⌋` advances, which spaces samples evenly at
    /// any rate and samples everything at 1.0.
    fn should_sample(&self) -> bool {
        if self.verify_rate <= 0.0 {
            return false;
        }
        let n = self.verify_seen.fetch_add(1, Ordering::Relaxed) + 1;
        let scaled = |k: u64| (k as f64 * self.verify_rate).floor();
        scaled(n) > scaled(n - 1)
    }

    /// Hands this response to the audit thread if it wins the sample.
    /// Called on every serving path — fresh computations AND cache hits —
    /// so replayed corruption is as auditable as fresh corruption.
    fn maybe_verify(&self, cache_key: Option<u64>, input: &NetInput, outcome: &NetOutcome) {
        let Some(tx) = &self.verify_tx else { return };
        if !self.should_sample() {
            return;
        }
        let _ = tx.send(VerifyTask {
            cache_key,
            input: input.clone(),
            outcome: outcome.clone(),
        });
    }

    /// Stops admitting new requests: every subsequent
    /// [`Engine::try_optimize`] returns [`Rejection::ShuttingDown`].
    /// Work already admitted (queued or in flight) still completes —
    /// dropping the engine joins the workers after the queue drains.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Whether [`Engine::begin_shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn sender(&self) -> Option<SyncSender<Task>> {
        self.tx.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Reaps dead worker threads and spawns replacements until the pool
    /// is back at target strength. Called whenever a death is detected;
    /// idempotent and safe to call concurrently.
    fn supervise(&self) {
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        let mut i = 0;
        while i < workers.len() {
            if workers[i].is_finished() {
                let _ = workers.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        // The death guard decrements `live` before signalling, so this
        // count already reflects the death being reacted to.
        while self.shared.live.load(Ordering::SeqCst) < self.jobs {
            workers.push(self.spawn_worker());
            self.metrics.record_respawn();
        }
    }

    /// Restores pool capacity around a stalled worker: one surplus
    /// credit plus one extra thread. The stalled worker retires itself
    /// against the credit when it eventually finishes.
    fn add_surplus_worker(&self) {
        self.shared.surplus.fetch_add(1, Ordering::SeqCst);
        self.metrics.record_respawn();
        let handle = self.spawn_worker();
        self.workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }

    /// Serves one request with admission control: cache lookup, then a
    /// shed-don't-block submit, then a deadline-bounded wait, with
    /// supervised retries if the worker dies. This is the TCP service's
    /// entry point.
    pub fn try_optimize(&self, job: Job) -> Result<Served, Rejection> {
        self.serve_one(job, true, CancelToken::new())
    }

    /// [`Engine::try_optimize`] with a caller-held [`CancelToken`]: the
    /// caller (the TCP service's disconnect monitor, a watchdog) trips
    /// the token to abort the run at its next stride checkpoint —
    /// microseconds, not the next per-net boundary — and the worker slot
    /// frees immediately. A cancelled run comes back as a `failed`
    /// record carrying `cancelled: <reason>`, not as a rejection.
    pub fn try_optimize_with(&self, job: Job, cancel: CancelToken) -> Result<Served, Rejection> {
        self.serve_one(job, true, cancel)
    }

    /// Serves one request, blocking for queue space and without a
    /// request deadline (for in-process callers that prefer backpressure
    /// over shedding). Worker-death supervision and retries still apply;
    /// the only rejection left — submitting during shutdown — surfaces
    /// as a `failed` record.
    pub fn optimize(&self, job: Job) -> Served {
        let name = job.input.name().to_string();
        match self.serve_one(job, false, CancelToken::new()) {
            Ok(served) => served,
            Err(r) => Served {
                outcome: failed_record(name, &format!("engine is {}", r.as_str())),
                cache: CacheStatus::Miss,
                worker: 0,
            },
        }
    }

    fn serve_one(&self, job: Job, shed: bool, cancel: CancelToken) -> Result<Served, Rejection> {
        if self.is_shutting_down() {
            self.metrics.record_rejection(Rejection::ShuttingDown);
            return Err(Rejection::ShuttingDown);
        }
        self.metrics.record_request();
        if let Some(key) = job.cache_key {
            if let Some((outcome, worker)) = self.cache.get(key) {
                self.maybe_verify(Some(key), &job.input, &outcome);
                return Ok(Served {
                    outcome,
                    cache: CacheStatus::Hit,
                    worker,
                });
            }
        }
        let Some(tx) = self.sender() else {
            self.metrics.record_rejection(Rejection::ShuttingDown);
            return Err(Rejection::ShuttingDown);
        };
        let (reply, inbox) = mpsc::channel();
        // The deadline arms here — at admission — so time spent queued
        // behind other requests counts against it.
        let deadline = if shed {
            self.request_deadline.map(|d| Instant::now() + d)
        } else {
            None
        };
        let task = Task {
            idx: 0,
            attempt: 0,
            job,
            deadline,
            cancel: cancel.clone(),
            reply: reply.clone(),
        };
        if shed {
            match tx.try_send(task) {
                Ok(()) => self.shared.queued.fetch_add(1, Ordering::SeqCst),
                Err(TrySendError::Full(_)) => {
                    self.metrics.record_rejection(Rejection::Overloaded);
                    return Err(Rejection::Overloaded);
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.metrics.record_rejection(Rejection::ShuttingDown);
                    return Err(Rejection::ShuttingDown);
                }
            };
        } else if tx.send(task).is_err() {
            self.metrics.record_rejection(Rejection::ShuttingDown);
            return Err(Rejection::ShuttingDown);
        } else {
            self.shared.queued.fetch_add(1, Ordering::SeqCst);
        }
        loop {
            let received = match deadline {
                Some(d) => inbox.recv_timeout(d.saturating_duration_since(Instant::now())),
                None => inbox.recv().map_err(|_| RecvTimeoutError::Disconnected),
            };
            let done = match received {
                Ok(done) => done,
                Err(RecvTimeoutError::Timeout) => {
                    // Trip the token first: the worker grinding on this
                    // request aborts at its next stride checkpoint and
                    // retires against the surplus credit, instead of
                    // computing to completion for nobody.
                    if cancel.cancel(CancelReason::Deadline) {
                        self.metrics.record_cancelled(CancelReason::Deadline);
                    }
                    self.metrics.record_rejection(Rejection::DeadlineExceeded);
                    // A worker is (or will be) stalled on this request
                    // past its deadline; restore pool capacity around it.
                    self.add_surplus_worker();
                    return Err(Rejection::DeadlineExceeded);
                }
                // `reply` is alive in this scope, so a disconnect cannot
                // happen; treat it like a timeout for robustness.
                Err(RecvTimeoutError::Disconnected) => {
                    self.metrics.record_rejection(Rejection::DeadlineExceeded);
                    return Err(Rejection::DeadlineExceeded);
                }
            };
            if done.stale {
                // A worker dropped the task unstarted because its
                // deadline passed while it sat in the queue.
                self.metrics.record_stale_drop();
                self.metrics.record_rejection(Rejection::DeadlineExceeded);
                return Err(Rejection::DeadlineExceeded);
            }
            match self.triage(done, deadline, &reply, &tx) {
                Triage::Retried => continue,
                Triage::Final {
                    outcome,
                    cache_key,
                    worker,
                    job,
                    ..
                } => {
                    self.metrics.record_outcome(&outcome);
                    if let Some(key) = cache_key {
                        self.cache.insert(key, outcome.clone(), worker);
                        self.fire_store_fault(key);
                    }
                    if let Some(job) = &job {
                        self.maybe_verify(cache_key, &job.input, &outcome);
                    }
                    return Ok(Served {
                        outcome,
                        cache: CacheStatus::Miss,
                        worker,
                    });
                }
            }
        }
    }

    /// Decides what to do with one worker reply: accept the record,
    /// retry after a death or a wrong-net record, or give up and fail
    /// just this request.
    fn triage(
        &self,
        done: Done,
        deadline: Option<Instant>,
        reply: &mpsc::Sender<Done>,
        tx: &SyncSender<Task>,
    ) -> Triage {
        let failure = match &done.outcome {
            None => {
                self.metrics.record_worker_death();
                self.supervise();
                Some("worker died while holding the request")
            }
            Some(outcome) if outcome.name != done.job.input.name() => {
                // Integrity check: a record for the wrong net means the
                // worker (or an injected fault) corrupted its output.
                self.metrics.record_bad_output();
                Some("worker returned a record for the wrong net")
            }
            Some(_) => None,
        };
        let Some(failure) = failure else {
            return Triage::Final {
                idx: done.idx,
                outcome: done.outcome.expect("present when no failure"),
                cache_key: done.job.cache_key,
                worker: done.worker,
                job: Some(done.job),
            };
        };
        let name = done.job.input.name().to_string();
        if done.attempt < self.max_retries {
            self.metrics.record_retry();
            let resubmit = Task {
                idx: done.idx,
                attempt: done.attempt + 1,
                job: done.job,
                deadline,
                cancel: done.cancel,
                reply: reply.clone(),
            };
            if tx.send(resubmit).is_ok() {
                self.shared.queued.fetch_add(1, Ordering::SeqCst);
                return Triage::Retried;
            }
            // The queue closed under us (shutdown); fall through to a
            // failure record.
            return Triage::Final {
                idx: done.idx,
                outcome: failed_record(name, "engine shut down while retrying the request"),
                cache_key: None,
                worker: done.worker,
                job: None,
            };
        }
        let attempts = done.attempt + 1;
        Triage::Final {
            idx: done.idx,
            outcome: failed_record(name, &format!("{failure} ({attempts} attempts)")),
            // Never cache a synthesized failure: the next request for
            // this net deserves a fresh computation.
            cache_key: None,
            worker: done.worker,
            job: None,
        }
    }

    /// Runs a whole batch through the pool and reassembles the records
    /// in input order. Cache hits are resolved inline; misses are fanned
    /// out. The report is the same type the serial pipeline produces, so
    /// summaries and exit codes are unchanged.
    pub fn run_jobs(&self, jobs: Vec<Job>) -> BatchReport {
        self.run_jobs_with(jobs, |_, _| {})
    }

    /// [`Engine::run_jobs`], invoking `on_done(idx, record)` the moment
    /// each record is final (in completion order, not input order; cache
    /// hits fire inline during submission). Batch drivers use the
    /// callback to checkpoint completed records before the run finishes.
    pub fn run_jobs_with(
        &self,
        jobs: Vec<Job>,
        mut on_done: impl FnMut(usize, &NetOutcome),
    ) -> BatchReport {
        let start = Instant::now();
        let n = jobs.len();
        let mut results: Vec<Option<NetOutcome>> = (0..n).map(|_| None).collect();
        let mut names: Vec<String> = jobs.iter().map(|j| j.input.name().to_string()).collect();
        let (reply, inbox) = mpsc::channel::<Done>();
        let mut queue: Vec<Task> = Vec::new();
        for (idx, job) in jobs.into_iter().enumerate() {
            self.metrics.record_request();
            if let Some(key) = job.cache_key {
                if let Some((outcome, _)) = self.cache.get(key) {
                    self.maybe_verify(Some(key), &job.input, &outcome);
                    on_done(idx, &outcome);
                    results[idx] = Some(outcome);
                    continue;
                }
            }
            queue.push(Task {
                idx,
                attempt: 0,
                job,
                deadline: None,
                cancel: CancelToken::new(),
                reply: reply.clone(),
            });
        }
        let pending = queue.len();
        if pending > 0 {
            if let Some(tx) = self.sender() {
                // Feed from a separate thread: the bounded queue gives
                // backpressure, so the feeder blocks while this thread
                // drains replies — no deadlock however large the batch.
                let feeder_tx = tx.clone();
                let feeder_shared = Arc::clone(&self.shared);
                let feeder = std::thread::spawn(move || {
                    for task in queue {
                        if feeder_tx.send(task).is_err() {
                            break;
                        }
                        feeder_shared.queued.fetch_add(1, Ordering::SeqCst);
                    }
                });
                let mut completed = 0usize;
                while completed < pending {
                    // `reply` is alive in this scope, so the channel
                    // cannot disconnect while work is outstanding.
                    let Ok(done) = inbox.recv() else { break };
                    // Batch tasks carry no deadline, so stale drops
                    // cannot happen here.
                    match self.triage(done, None, &reply, &tx) {
                        Triage::Retried => continue,
                        Triage::Final {
                            idx,
                            outcome,
                            cache_key,
                            worker,
                            job,
                        } => {
                            self.metrics.record_outcome(&outcome);
                            if let Some(key) = cache_key {
                                self.cache.insert(key, outcome.clone(), worker);
                                self.fire_store_fault(key);
                            }
                            if let Some(job) = &job {
                                self.maybe_verify(cache_key, &job.input, &outcome);
                            }
                            on_done(idx, &outcome);
                            results[idx] = Some(outcome);
                            completed += 1;
                        }
                    }
                }
                feeder.join().expect("feeder thread");
            }
        }
        let outcomes = results
            .iter_mut()
            .enumerate()
            .map(|(idx, slot)| {
                slot.take().unwrap_or_else(|| {
                    let rec = failed_record(
                        std::mem::take(&mut names[idx]),
                        "engine shut down before this net was computed",
                    );
                    on_done(idx, &rec);
                    rec
                })
            })
            .collect();
        BatchReport {
            outcomes,
            wall: start.elapsed(),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the channel drains the queue and lets workers exit.
        self.tx.lock().unwrap_or_else(|e| e.into_inner()).take();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for w in workers {
            let _ = w.join();
        }
        // Then drain the audit backlog: closing the sample channel lets
        // the verifier finish its queue and exit, so every sample taken
        // before shutdown is actually audited.
        self.verify_tx.take();
        if let Some(v) = self.verify_handle.take() {
            let _ = v.join();
        }
    }
}

/// The audit thread (see [`EngineOptions::verify_sample_rate`]): drains
/// sampled responses and independently re-derives each record's audited
/// figures, off the serving path. Every received sample counts
/// `integrity.verify_samples`; a mismatch counts
/// `integrity.verify_failures` and evicts the record's cache entry so a
/// corrupted record is never served again.
fn verifier_loop(
    rx: mpsc::Receiver<VerifyTask>,
    cfg: &PipelineConfig,
    cache: &SolutionCache,
    metrics: &Metrics,
) {
    let mut ws = buffopt::DpWorkspace::new();
    while let Ok(task) = rx.recv() {
        metrics.record_verify_sample();
        match reverify_outcome(&mut ws, &task.input, cfg, &task.outcome) {
            Reverify::Consistent | Reverify::NotApplicable => {}
            Reverify::Mismatch(_why) => {
                // Evict first, then count: anyone who observes the
                // failure counter is guaranteed the lie is already gone.
                if let Some(key) = task.cache_key {
                    cache.remove(key);
                }
                metrics.record_verify_failure();
            }
        }
    }
}

fn failed_record(name: String, why: &str) -> NetOutcome {
    let mut o = optimize_input(
        &NetInput::Failed {
            name,
            error: String::new(),
        },
        // The config is irrelevant for the Failed variant; build the
        // cheapest possible one.
        &PipelineConfig::new(buffopt_buffers::BufferLibrary::new()),
    );
    o.outcome = Outcome::Failed;
    o.error = Some(why.to_string());
    o
}

fn worker_loop(wid: usize, shared: &WorkerShared) {
    // One DP workspace per worker thread, reused across every net this
    // worker serves. A run fully resets the scratch on entry, so reuse
    // after a caught panic is safe.
    let mut ws = buffopt::DpWorkspace::new();
    loop {
        // Bleed off surplus capacity: if a stalled worker's replacement
        // outlived the stall, whichever worker reaches this check first
        // retires (threads are fungible).
        if shared.live.load(Ordering::SeqCst) > shared.target && shared.try_retire() {
            return;
        }
        // Hold the receiver lock only while dequeuing; contention here is
        // negligible next to per-net optimization time.
        let task = match shared.rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(t) => t,
            Err(_) => return, // engine dropped the sender: shut down
        };
        // Saturating: a task could race its own dequeue with the
        // submitter's post-send increment, so never underflow the gauge.
        let _ = shared
            .queued
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| q.checked_sub(1));
        let deadline = task.deadline;
        let cancel = task.cancel.clone();
        let mut guard = TaskGuard {
            shared,
            reply: task.reply,
            payload: Some((task.idx, task.attempt, task.job, task.cancel)),
            worker: wid,
        };
        // Drop tasks whose deadline expired while queued: the requester
        // is gone (or about to be), so computing would only stall the
        // pool for nobody. Trip the token too, so any racing retry of
        // the same request aborts instead of recomputing.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            if cancel.cancel(CancelReason::Deadline) {
                shared.metrics.record_cancelled(CancelReason::Deadline);
            }
            if !guard.complete(None, true) && shared.try_retire() {
                return;
            }
            continue;
        }
        // Worker-seam faults fire OUTSIDE the panic boundary: they model
        // defects in the worker machinery itself, which is exactly what
        // the supervisor exists to repair. Resource faults are the
        // exception — they resolve into this run's budget or token
        // rather than into worker death.
        let mut corrupt_output = false;
        let mut forced_cap: Option<usize> = None;
        match shared.plan.as_deref().and_then(|p| p.fire(Seam::Worker)) {
            Some(FaultAction::Panic) => panic!("injected worker panic"),
            // Exiting with the task in hand: the guard's drop reports
            // the death.
            Some(FaultAction::KillWorker) => return,
            Some(FaultAction::StallMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(FaultAction::WrongOutput) => corrupt_output = true,
            Some(FaultAction::IoError) => {
                let name = guard.input_name();
                let delivered = guard.complete(
                    Some(failed_record(name, "injected worker I/O error")),
                    false,
                );
                if !delivered && shared.try_retire() {
                    return;
                }
                continue;
            }
            Some(FaultAction::MemPressure { at_bytes }) => forced_cap = Some(at_bytes as usize),
            Some(FaultAction::CancelRun) => {
                let won = cancel.cancel(CancelReason::Supervisor);
                if won {
                    shared.metrics.record_cancelled(CancelReason::Supervisor);
                }
            }
            // State-corruption faults belong to the Store and Decode
            // seams; armed here they are plan misconfigurations and do
            // nothing.
            Some(FaultAction::CorruptJournalLine)
            | Some(FaultAction::BitFlipCacheEntry)
            | Some(FaultAction::BitFlipMemoEntry)
            | Some(FaultAction::TruncateFrame)
            | None => {}
        }
        let mut outcome = {
            let (_, _, job, _) = guard.payload.as_ref().expect("task in hand");
            let input = &job.input;
            // Optimize-seam faults fire INSIDE the panic boundary: they
            // model defects in per-net computation, which must stay
            // contained to one record.
            let mut fault = shared.plan.as_deref().and_then(|p| p.fire(Seam::Optimize));
            // Resolve resource faults at this seam the same way: into
            // the run's budget/token, then optimize normally under them.
            match fault {
                Some(FaultAction::MemPressure { at_bytes }) => {
                    forced_cap = Some(at_bytes as usize);
                    fault = None;
                }
                Some(FaultAction::CancelRun) => {
                    if cancel.cancel(CancelReason::Supervisor) {
                        shared.metrics.record_cancelled(CancelReason::Supervisor);
                    }
                    fault = None;
                }
                _ => {}
            }
            // An injected memory-pressure fault forces this one run under
            // a tiny arena cap (degrade-in-place turns on with it); the
            // shared config is untouched.
            let cfg_override = forced_cap.map(|cap| {
                let mut c = (*shared.cfg).clone();
                c.max_arena_bytes = Some(cap);
                c
            });
            let run_cfg: &PipelineConfig = cfg_override.as_ref().unwrap_or(&shared.cfg);
            // `optimize_input` contains per-rung panic boundaries
            // already; this outer guard turns even a bookkeeping panic
            // into a record, so the collector never waits on a dead slot.
            panic::catch_unwind(AssertUnwindSafe(|| match fault {
                Some(FaultAction::Panic) | Some(FaultAction::KillWorker) => {
                    panic!("injected optimizer panic")
                }
                Some(FaultAction::IoError) => failed_record(
                    input.name().to_string(),
                    "injected I/O error while optimizing",
                ),
                Some(FaultAction::StallMs(ms)) => {
                    std::thread::sleep(Duration::from_millis(ms));
                    optimize_input_with_cancel(&mut ws, input, run_cfg, &cancel)
                }
                Some(FaultAction::WrongOutput) => {
                    let mut r = optimize_input_with_cancel(&mut ws, input, run_cfg, &cancel);
                    r.name = format!("__fault__{}", r.name);
                    r
                }
                // Resource faults were folded into `run_cfg`/`cancel`
                // above; state-corruption faults belong to other seams.
                // Both take the normal path.
                Some(FaultAction::MemPressure { .. })
                | Some(FaultAction::CancelRun)
                | Some(FaultAction::CorruptJournalLine)
                | Some(FaultAction::BitFlipCacheEntry)
                | Some(FaultAction::BitFlipMemoEntry)
                | Some(FaultAction::TruncateFrame)
                | None => optimize_input_with_cancel(&mut ws, input, run_cfg, &cancel),
            }))
            .unwrap_or_else(|_| {
                failed_record(
                    input.name().to_string(),
                    "worker panicked outside the net boundary",
                )
            })
        };
        if corrupt_output {
            outcome.name = format!("__fault__{}", outcome.name);
        }
        let delivered = guard.complete(Some(outcome), false);
        if !delivered && shared.try_retire() {
            // The requester abandoned this reply (a deadline expiry
            // spawned a replacement); shrink the pool back to target.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_send_and_sync() {
        fn ok<T: Send + Sync>() {}
        ok::<Engine>();
        ok::<Job>();
        ok::<Served>();
    }

    #[test]
    fn key_for_separates_name_content_and_config() {
        let lib = buffopt_buffers::catalog::single_buffer();
        let e1 = Engine::new(
            PipelineConfig::new(lib.clone()),
            EngineOptions {
                jobs: 1,
                ..EngineOptions::default()
            },
        );
        let k = e1.key_for("a", "body");
        assert_eq!(k, e1.key_for("a", "body"), "stable");
        assert_ne!(k, e1.key_for("b", "body"), "name matters");
        assert_ne!(k, e1.key_for("a", "other"), "content matters");
        let mut cfg2 = PipelineConfig::new(lib);
        cfg2.conservative = true;
        let e2 = Engine::new(
            cfg2,
            EngineOptions {
                jobs: 1,
                ..EngineOptions::default()
            },
        );
        assert_ne!(k, e2.key_for("a", "body"), "config matters");
    }

    #[test]
    fn empty_batch_returns_empty_report() {
        let e = Engine::new(
            PipelineConfig::new(buffopt_buffers::catalog::single_buffer()),
            EngineOptions {
                jobs: 2,
                ..EngineOptions::default()
            },
        );
        let report = e.run_jobs(Vec::new());
        assert!(report.outcomes.is_empty());
        assert_eq!(e.metrics_snapshot().requests, 0);
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let e = Engine::new(
            PipelineConfig::new(buffopt_buffers::catalog::single_buffer()),
            EngineOptions {
                jobs: 1,
                ..EngineOptions::default()
            },
        );
        e.begin_shutdown();
        let r = e.try_optimize(Job {
            input: NetInput::Failed {
                name: "n".into(),
                error: "x".into(),
            },
            cache_key: None,
        });
        assert_eq!(r.unwrap_err(), Rejection::ShuttingDown);
        let snap = e.metrics_snapshot();
        assert_eq!(snap.rejections[2], 1, "shutdown rejection counted");
    }
}
