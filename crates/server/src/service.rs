//! Newline-delimited-JSON TCP service over one or more [`Engine`]s.
//!
//! # Protocol
//!
//! One request per line, one response line per request, on a plain TCP
//! connection. Requests are flat JSON objects with string values:
//!
//! * `{"cmd":"optimize","id":"bus7","net":"driver 300 2e-11\n..."}` —
//!   optimize one net (the `.net` text with newlines escaped). `cmd`
//!   may be omitted when `net` is present; `id` defaults to `"net"`.
//!   The response is the pipeline's per-net JSONL record with two extra
//!   fields: `"cache":"hit"|"miss"` and `"worker":<index>`.
//! * `{"cmd":"stats"}` — the engine's [`MetricsSnapshot`] as JSON; when
//!   serving runs across several per-shard engines the snapshot is the
//!   aggregated fleet view plus a per-shard breakdown.
//! * `{"cmd":"shutdown"}` — acknowledge with `{"ok":"shutdown"}` and
//!   stop the accept loop. Shutdown *drains*: every engine stops
//!   admitting new work first, in-flight requests finish and their
//!   responses are written, and requests that arrive during the drain
//!   get an explicit `{"error":"shutting_down"}` instead of a silently
//!   dropped line.
//!
//! With [`ServeOptions::frame_check`] on, a request line may be wrapped
//! in a length+CRC frame (`!F <len:8hex> <crc64:16hex> <json>`); the
//! response mirrors the framing, a damaged or truncated frame gets a
//! typed `{"error":"bad_frame","detail":...}`, and plain lines keep
//! working untouched on the same connection (per-request negotiation, so
//! old clients never see a frame).
//!
//! Malformed request lines get `{"error":"..."}` responses; a net that
//! fails to *parse* is not a protocol error — it produces a regular
//! `parse_error` record, so batch drivers see the same taxonomy the CLI
//! emits. Requests refused by admission control get
//! `{"error":"overloaded"}` / `{"error":"deadline_exceeded"}` responses
//! (see [`Rejection`]).
//!
//! # Front ends
//!
//! Two transports serve this protocol:
//!
//! * [`serve_sharded`](crate::serve_sharded) — the default: a
//!   readiness-driven event loop (`epoll` via `buffopt-netpoll`). One
//!   acceptor hands connections round-robin to N reactor shards; each
//!   shard owns its connections' state machines and its own [`Engine`],
//!   and optimize requests route to engines by a rendezvous hash of the
//!   net digest so cache and memo state shard cleanly. Client
//!   disconnects surface as readiness (`EPOLLRDHUP`) and trip the
//!   in-flight request's [`CancelToken`] — no
//!   polling monitor thread. [`serve`] and [`serve_with`] are the
//!   single-engine wrappers.
//! * [`serve_threaded`](crate::serve_threaded) — the original
//!   thread-per-connection implementation, kept as the benchmark
//!   baseline and for byte-identical differential tests against the
//!   reactor.
//!
//! # Hardening
//!
//! Connections are bounded in every dimension ([`ServeOptions`]): a
//! request line longer than `max_line_bytes` gets one structured error
//! response and the connection is closed — the cap is enforced
//! *incrementally*, so a half-written oversized line is refused as soon
//! as its bytes exceed the cap, newline or not; a connection that sends
//! no complete request within `read_timeout` is closed the same way
//! (trickling single bytes does not reset the clock, so a slow-loris
//! client cannot pin a shard); and with `max_conns` set, accepts beyond
//! the ceiling get one typed `{"error":"overloaded"}` refusal line and
//! are counted in `connections.rejected_max_conns`. A panic while
//! serving a request — injected via the [`Seam::Decode`] fault hook or
//! real — is contained to one `{"error":...}` response; the connection
//! and the server survive.
//!
//! The service does not link the text-format parser (that would make the
//! crate graph cyclic); callers inject a [`NetDecoder`] closure, which
//! the CLI builds from `buffopt_netlist::parse`.
//!
//! [`MetricsSnapshot`]: crate::metrics::MetricsSnapshot
//! [`Rejection`]: crate::Rejection
//! [`Seam::Decode`]: buffopt_pipeline::fault::Seam

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use buffopt::{CancelReason, CancelToken};
use buffopt_pipeline::fault::{FaultAction, Seam};
use buffopt_pipeline::NetInput;

use crate::engine::{Engine, Job, Rejection, Served};

/// Turns a request's `(id, net text)` into a [`NetInput`] — parsed, or a
/// `Failed` record carrying the parser's message.
pub type NetDecoder = Arc<dyn Fn(&str, &str) -> NetInput + Send + Sync>;

/// Per-connection hardening knobs for [`serve_with`] and
/// [`serve_sharded`](crate::serve_sharded).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Close a connection that sends no complete request for this long;
    /// `None` waits forever (not recommended outside tests). The clock
    /// arms when the connection starts waiting for a request and is NOT
    /// reset by partial bytes, so byte-trickling clients cannot evade it.
    pub read_timeout: Option<Duration>,
    /// Maximum accepted request-line length in bytes; longer lines get
    /// one structured error response and the connection is closed. The
    /// cap is enforced incrementally as bytes arrive, before any newline.
    pub max_line_bytes: usize,
    /// Accept length+CRC framed request lines (`!F <len> <crc> <json>`)
    /// and mirror the framing on their responses. Negotiated per
    /// request: plain lines keep working on the same connection, so old
    /// clients are unaffected. A truncated or damaged frame gets a typed
    /// `{"error":"bad_frame","detail":...}` response — never a parse
    /// guess — and is counted in `connections.bad_frames`.
    pub frame_check: bool,
    /// Maximum concurrently open client connections; `0` means
    /// unlimited. Accepts beyond the ceiling get one typed
    /// `{"error":"overloaded","detail":"max_conns"}` line and are closed
    /// immediately, counted in `connections.rejected_max_conns`.
    pub max_conns: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Some(Duration::from_secs(120)),
            max_line_bytes: 1 << 20,
            frame_check: false,
            max_conns: 0,
        }
    }
}

/// [`serve_with`] under [`ServeOptions::default`].
pub fn serve(
    listener: TcpListener,
    engine: Arc<Engine>,
    decode: NetDecoder,
) -> std::io::Result<()> {
    serve_with(listener, engine, decode, ServeOptions::default())
}

/// Serves the protocol on the readiness-driven reactor with a single
/// shard/engine, until a `shutdown` command arrives; then drains (every
/// in-flight response is written before this returns). This is
/// [`serve_sharded`](crate::serve_sharded) with one engine — see the
/// module docs for the transport's architecture.
pub fn serve_with(
    listener: TcpListener,
    engine: Arc<Engine>,
    decode: NetDecoder,
    opts: ServeOptions,
) -> std::io::Result<()> {
    crate::reactor::serve_sharded(listener, vec![engine], decode, opts)
}

/// The typed response for a frame that failed validation.
pub(crate) fn bad_frame_json(detail: &str) -> String {
    let mut s = String::from("{\"error\":\"bad_frame\",\"detail\":");
    push_json_str(&mut s, detail);
    s.push('}');
    s
}

/// A parsed, validated request — the protocol commands both front ends
/// execute.
#[derive(Debug)]
pub(crate) enum Command {
    /// Optimize one net.
    Optimize {
        /// The request's `id` field (default `"net"`).
        id: String,
        /// The `.net` text.
        net: String,
    },
    /// Report the metrics snapshot.
    Stats,
    /// Acknowledge and drain the server.
    Shutdown,
}

/// Parses and validates one request line into a [`Command`], or the
/// exact error-response line to send back.
pub(crate) fn classify_request(line: &str) -> Result<Command, String> {
    let fields = match parse_request(line) {
        Ok(f) => f,
        Err(e) => return Err(error_json(&format!("bad request: {e}"))),
    };
    let get = |k: &str| {
        fields
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    match get("cmd").unwrap_or("optimize") {
        "optimize" => match get("net") {
            None => Err(error_json("optimize request needs a \"net\" field")),
            Some(net_text) => Ok(Command::Optimize {
                id: get("id").unwrap_or("net").to_string(),
                net: net_text.to_string(),
            }),
        },
        "stats" => Ok(Command::Stats),
        "shutdown" => Ok(Command::Shutdown),
        other => Err(error_json(&format!("unknown cmd {other:?}"))),
    }
}

/// Serves one optimize request against `engine`: decodes the net, fires
/// the decode fault seam, and runs the engine call through `run` (the
/// front end wraps it with its own cancellation machinery — disconnect
/// monitor thread or readiness-driven token). Returns the response line.
pub(crate) fn serve_optimize(
    engine: &Engine,
    decode: &NetDecoder,
    id: &str,
    net_text: &str,
    cancel: &CancelToken,
    run: impl FnOnce(Job) -> Result<Served, Rejection>,
) -> String {
    let mut input = decode(id, net_text);
    // Decode-seam fault hook: models a defective decoder.
    match engine.fault_plan().and_then(|p| p.fire(Seam::Decode)) {
        None => {}
        Some(FaultAction::Panic) | Some(FaultAction::KillWorker) => {
            panic!("injected decode panic")
        }
        Some(FaultAction::StallMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(FaultAction::IoError) => return error_json("injected decode I/O error"),
        Some(FaultAction::WrongOutput) => {
            input = NetInput::Failed {
                name: id.to_string(),
                error: "injected decode corruption".to_string(),
            }
        }
        // Models a watchdog killing the request before it reaches a
        // worker: the run aborts at its first checkpoint.
        Some(FaultAction::CancelRun) => {
            let won = cancel.cancel(CancelReason::Supervisor);
            if won {
                engine.metrics().record_cancelled(CancelReason::Supervisor);
            }
        }
        // Memory pressure is a worker-seam behavior; nothing to squeeze
        // at decode time. State-corruption faults belong to the Store
        // seam or the framed read path.
        Some(FaultAction::MemPressure { .. })
        | Some(FaultAction::CorruptJournalLine)
        | Some(FaultAction::BitFlipCacheEntry)
        | Some(FaultAction::BitFlipMemoEntry)
        | Some(FaultAction::TruncateFrame) => {}
    }
    let key = engine.key_for(id, net_text);
    let job = Job {
        input,
        cache_key: Some(key),
    };
    match run(job) {
        Ok(served) => {
            // Splice the serving provenance into the record.
            let mut json = served.outcome.to_json();
            let closed = json.pop();
            debug_assert_eq!(closed, Some('}'));
            json.push_str(&format!(
                ",\"cache\":\"{}\",\"worker\":{}}}",
                served.cache.as_str(),
                served.worker
            ));
            json
        }
        Err(rejection) => error_json(rejection.as_str()),
    }
}

/// Test-only export of the request-line parser so the fuzz suite can
/// drive it directly; not part of the crate's API.
#[doc(hidden)]
pub fn parse_request_line(line: &str) -> Result<Vec<(String, String)>, String> {
    parse_request(line)
}

pub(crate) fn error_json(msg: &str) -> String {
    let mut s = String::from("{\"error\":");
    push_json_str(&mut s, msg);
    s.push('}');
    s
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one request line: a flat JSON object whose values are strings.
/// Returns the key/value pairs in document order. This is deliberately
/// the whole grammar the protocol needs — nested objects, arrays, and
/// non-string values are rejected with a descriptive error.
fn parse_request(line: &str) -> Result<Vec<(String, String)>, String> {
    let mut chars = line.chars().peekable();
    let mut out = Vec::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return finish(chars, out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        if chars.peek() != Some(&'"') {
            return Err(format!("value of {key:?} must be a JSON string"));
        }
        let value = parse_string(&mut chars)?;
        out.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return finish(chars, out),
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn finish(
    mut rest: std::iter::Peekable<std::str::Chars<'_>>,
    out: Vec<(String, String)>,
) -> Result<Vec<(String, String)>, String> {
    skip_ws(&mut rest);
    match rest.next() {
        None => Ok(out),
        Some(c) => Err(format!("trailing content after object: {c:?}")),
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{0008}'),
                Some('f') => out.push('\u{000c}'),
                Some('u') => out.push(parse_unicode_escape(chars)?),
                other => return Err(format!("bad escape \\{other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn hex4(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<u32, String> {
    let mut v = 0u32;
    for _ in 0..4 {
        let c = chars.next().ok_or("truncated \\u escape")?;
        v = v * 16
            + c.to_digit(16)
                .ok_or_else(|| format!("bad hex digit {c:?}"))?;
    }
    Ok(v)
}

fn parse_unicode_escape(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<char, String> {
    let hi = hex4(chars)?;
    if (0xD800..0xDC00).contains(&hi) {
        // High surrogate: a \uXXXX low surrogate must follow.
        if chars.next() != Some('\\') || chars.next() != Some('u') {
            return Err("high surrogate without a low surrogate".to_string());
        }
        let lo = hex4(chars)?;
        if !(0xDC00..0xE000).contains(&lo) {
            return Err(format!("invalid low surrogate {lo:04x}"));
        }
        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
        char::from_u32(cp).ok_or_else(|| format!("invalid code point {cp:x}"))
    } else {
        char::from_u32(hi).ok_or_else(|| format!("invalid code point {hi:x}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_string_objects() {
        let f = parse_request(r#" {"cmd":"stats"} "#).expect("parses");
        assert_eq!(f, vec![("cmd".to_string(), "stats".to_string())]);
        let f = parse_request(r#"{"id":"a","net":"line1\nline2\t\"x\""}"#).expect("parses");
        assert_eq!(f[0], ("id".to_string(), "a".to_string()));
        assert_eq!(f[1].1, "line1\nline2\t\"x\"");
        assert!(parse_request("{}").expect("empty object").is_empty());
    }

    #[test]
    fn unicode_escapes_decode() {
        let f = parse_request(r#"{"k":"µm 😀"}"#).expect("parses");
        assert_eq!(f[0].1, "µm 😀");
    }

    #[test]
    fn rejects_everything_else() {
        for bad in [
            "",
            "stats",
            "[1]",
            r#"{"k":1}"#,
            r#"{"k":["a"]}"#,
            r#"{"k":{"x":"y"}}"#,
            r#"{"k":"v"} trailing"#,
            r#"{"k":"unterminated"#,
            r#"{"k":"\ud800 lonely"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn error_json_escapes() {
        assert_eq!(
            error_json("a \"b\"\nc"),
            r#"{"error":"a \"b\"\nc"}"#.to_string()
        );
    }

    #[test]
    fn classify_preserves_the_error_taxonomy() {
        assert!(matches!(
            classify_request(r#"{"cmd":"stats"}"#),
            Ok(Command::Stats)
        ));
        assert!(matches!(
            classify_request(r#"{"cmd":"shutdown"}"#),
            Ok(Command::Shutdown)
        ));
        match classify_request(r#"{"net":"x","id":"a"}"#) {
            Ok(Command::Optimize { id, net }) => {
                assert_eq!(id, "a");
                assert_eq!(net, "x");
            }
            _ => panic!("implicit optimize"),
        }
        assert_eq!(
            classify_request(r#"{"cmd":"optimize"}"#).unwrap_err(),
            "{\"error\":\"optimize request needs a \\\"net\\\" field\"}"
        );
        assert_eq!(
            classify_request(r#"{"cmd":"dance"}"#).unwrap_err(),
            "{\"error\":\"unknown cmd \\\"dance\\\"\"}"
        );
        assert!(classify_request("not json")
            .unwrap_err()
            .starts_with("{\"error\":\"bad request:"));
    }
}
