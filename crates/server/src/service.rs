//! Newline-delimited-JSON TCP service over an [`Engine`].
//!
//! # Protocol
//!
//! One request per line, one response line per request, on a plain TCP
//! connection. Requests are flat JSON objects with string values:
//!
//! * `{"cmd":"optimize","id":"bus7","net":"driver 300 2e-11\n..."}` —
//!   optimize one net (the `.net` text with newlines escaped). `cmd`
//!   may be omitted when `net` is present; `id` defaults to `"net"`.
//!   The response is the pipeline's per-net JSONL record with two extra
//!   fields: `"cache":"hit"|"miss"` and `"worker":<index>`.
//! * `{"cmd":"stats"}` — the engine's [`MetricsSnapshot`] as JSON.
//! * `{"cmd":"shutdown"}` — acknowledge with `{"ok":"shutdown"}` and
//!   stop the accept loop (in-flight connections finish their current
//!   request).
//!
//! Malformed request lines get `{"error":"..."}` responses; a net that
//! fails to *parse* is not a protocol error — it produces a regular
//! `parse_error` record, so batch drivers see the same taxonomy the CLI
//! emits.
//!
//! The service does not link the text-format parser (that would make the
//! crate graph cyclic); callers inject a [`NetDecoder`] closure, which
//! the CLI builds from `buffopt_netlist::parse`.
//!
//! [`MetricsSnapshot`]: crate::metrics::MetricsSnapshot

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use buffopt_pipeline::NetInput;

use crate::engine::{Engine, Job};

/// Turns a request's `(id, net text)` into a [`NetInput`] — parsed, or a
/// `Failed` record carrying the parser's message.
pub type NetDecoder = Arc<dyn Fn(&str, &str) -> NetInput + Send + Sync>;

/// Runs the accept loop until a `shutdown` command arrives. One thread
/// per connection; every connection shares the engine's worker pool, so
/// concurrency is bounded by the pool no matter how many clients attach.
pub fn serve(
    listener: TcpListener,
    engine: Arc<Engine>,
    decode: NetDecoder,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                let engine = Arc::clone(&engine);
                let decode = Arc::clone(&decode);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let shutdown = handle_connection(stream, &engine, &decode);
                    if shutdown {
                        stop.store(true, Ordering::SeqCst);
                        // Wake the blocked accept() so the loop observes
                        // the flag.
                        let _ = TcpStream::connect(addr);
                    }
                });
            }
            Err(_) if stop.load(Ordering::SeqCst) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Serves one connection; returns true when the client asked for a
/// server shutdown.
fn handle_connection(stream: TcpStream, engine: &Engine, decode: &NetDecoder) -> bool {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return false,
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client gone
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = respond(&line, engine, decode);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown {
            return true;
        }
    }
    false
}

/// Computes the response line for one request line.
fn respond(line: &str, engine: &Engine, decode: &NetDecoder) -> (String, bool) {
    let fields = match parse_request(line) {
        Ok(f) => f,
        Err(e) => return (error_json(&format!("bad request: {e}")), false),
    };
    let get = |k: &str| {
        fields
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    let cmd = get("cmd").unwrap_or("optimize");
    match cmd {
        "optimize" => match get("net") {
            None => (error_json("optimize request needs a \"net\" field"), false),
            Some(net_text) => {
                let id = get("id").unwrap_or("net");
                let input = decode(id, net_text);
                let key = engine.key_for(id, net_text);
                let served = engine.optimize(Job {
                    input,
                    cache_key: Some(key),
                });
                // Splice the serving provenance into the record object.
                let mut json = served.outcome.to_json();
                let closed = json.pop();
                debug_assert_eq!(closed, Some('}'));
                json.push_str(&format!(
                    ",\"cache\":\"{}\",\"worker\":{}}}",
                    served.cache.as_str(),
                    served.worker
                ));
                (json, false)
            }
        },
        "stats" => (engine.metrics_snapshot().to_json(), false),
        "shutdown" => ("{\"ok\":\"shutdown\"}".to_string(), true),
        other => (error_json(&format!("unknown cmd {other:?}")), false),
    }
}

fn error_json(msg: &str) -> String {
    let mut s = String::from("{\"error\":");
    push_json_str(&mut s, msg);
    s.push('}');
    s
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one request line: a flat JSON object whose values are strings.
/// Returns the key/value pairs in document order. This is deliberately
/// the whole grammar the protocol needs — nested objects, arrays, and
/// non-string values are rejected with a descriptive error.
fn parse_request(line: &str) -> Result<Vec<(String, String)>, String> {
    let mut chars = line.chars().peekable();
    let mut out = Vec::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return finish(chars, out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        if chars.peek() != Some(&'"') {
            return Err(format!("value of {key:?} must be a JSON string"));
        }
        let value = parse_string(&mut chars)?;
        out.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return finish(chars, out),
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn finish(
    mut rest: std::iter::Peekable<std::str::Chars<'_>>,
    out: Vec<(String, String)>,
) -> Result<Vec<(String, String)>, String> {
    skip_ws(&mut rest);
    match rest.next() {
        None => Ok(out),
        Some(c) => Err(format!("trailing content after object: {c:?}")),
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{0008}'),
                Some('f') => out.push('\u{000c}'),
                Some('u') => out.push(parse_unicode_escape(chars)?),
                other => return Err(format!("bad escape \\{other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn hex4(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<u32, String> {
    let mut v = 0u32;
    for _ in 0..4 {
        let c = chars.next().ok_or("truncated \\u escape")?;
        v = v * 16
            + c.to_digit(16)
                .ok_or_else(|| format!("bad hex digit {c:?}"))?;
    }
    Ok(v)
}

fn parse_unicode_escape(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<char, String> {
    let hi = hex4(chars)?;
    if (0xD800..0xDC00).contains(&hi) {
        // High surrogate: a \uXXXX low surrogate must follow.
        if chars.next() != Some('\\') || chars.next() != Some('u') {
            return Err("high surrogate without a low surrogate".to_string());
        }
        let lo = hex4(chars)?;
        if !(0xDC00..0xE000).contains(&lo) {
            return Err(format!("invalid low surrogate {lo:04x}"));
        }
        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
        char::from_u32(cp).ok_or_else(|| format!("invalid code point {cp:x}"))
    } else {
        char::from_u32(hi).ok_or_else(|| format!("invalid code point {hi:x}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_string_objects() {
        let f = parse_request(r#" {"cmd":"stats"} "#).expect("parses");
        assert_eq!(f, vec![("cmd".to_string(), "stats".to_string())]);
        let f = parse_request(r#"{"id":"a","net":"line1\nline2\t\"x\""}"#).expect("parses");
        assert_eq!(f[0], ("id".to_string(), "a".to_string()));
        assert_eq!(f[1].1, "line1\nline2\t\"x\"");
        assert!(parse_request("{}").expect("empty object").is_empty());
    }

    #[test]
    fn unicode_escapes_decode() {
        let f = parse_request(r#"{"k":"µm 😀"}"#).expect("parses");
        assert_eq!(f[0].1, "µm 😀");
    }

    #[test]
    fn rejects_everything_else() {
        for bad in [
            "",
            "stats",
            "[1]",
            r#"{"k":1}"#,
            r#"{"k":["a"]}"#,
            r#"{"k":{"x":"y"}}"#,
            r#"{"k":"v"} trailing"#,
            r#"{"k":"unterminated"#,
            r#"{"k":"\ud800 lonely"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn error_json_escapes() {
        assert_eq!(
            error_json("a \"b\"\nc"),
            r#"{"error":"a \"b\"\nc"}"#.to_string()
        );
    }
}
