//! Newline-delimited-JSON TCP service over an [`Engine`].
//!
//! # Protocol
//!
//! One request per line, one response line per request, on a plain TCP
//! connection. Requests are flat JSON objects with string values:
//!
//! * `{"cmd":"optimize","id":"bus7","net":"driver 300 2e-11\n..."}` —
//!   optimize one net (the `.net` text with newlines escaped). `cmd`
//!   may be omitted when `net` is present; `id` defaults to `"net"`.
//!   The response is the pipeline's per-net JSONL record with two extra
//!   fields: `"cache":"hit"|"miss"` and `"worker":<index>`.
//! * `{"cmd":"stats"}` — the engine's [`MetricsSnapshot`] as JSON.
//! * `{"cmd":"shutdown"}` — acknowledge with `{"ok":"shutdown"}` and
//!   stop the accept loop. Shutdown *drains*: the engine stops admitting
//!   new work first, every connection's read side is closed, in-flight
//!   requests finish and their responses are written, and requests that
//!   arrive during the drain get an explicit
//!   `{"error":"shutting_down"}` instead of a silently dropped line.
//!
//! With [`ServeOptions::frame_check`] on, a request line may be wrapped
//! in a length+CRC frame (`!F <len:8hex> <crc64:16hex> <json>`); the
//! response mirrors the framing, a damaged or truncated frame gets a
//! typed `{"error":"bad_frame","detail":...}`, and plain lines keep
//! working untouched on the same connection (per-request negotiation, so
//! old clients never see a frame).
//!
//! Malformed request lines get `{"error":"..."}` responses; a net that
//! fails to *parse* is not a protocol error — it produces a regular
//! `parse_error` record, so batch drivers see the same taxonomy the CLI
//! emits. Requests refused by admission control get
//! `{"error":"overloaded"}` / `{"error":"deadline_exceeded"}` responses
//! (see [`Rejection`](crate::Rejection)).
//!
//! # Hardening
//!
//! Connections are bounded in both dimensions ([`ServeOptions`]): a
//! request line longer than `max_line_bytes` gets one structured error
//! response and the connection is closed (a client cannot make the
//! server buffer without limit), and a connection idle past
//! `read_timeout` is closed the same way (a stalled client cannot pin a
//! handler thread forever). Both terminations are counted in the metrics
//! snapshot's `connections.errors`. A panic while serving a request —
//! injected via the [`Seam::Decode`] fault hook or real — is contained
//! to one `{"error":...}` response; the connection and the server
//! survive.
//!
//! While an optimize request is in flight, a monitor thread probes the
//! client socket every 25 ms (`DISCONNECT_POLL`); if the client has hung
//! up,
//! the request's [`CancelToken`] trips with the `disconnect` reason and
//! the worker abandons the run at its next stride checkpoint instead of
//! computing an answer nobody will read. The cancellation is counted in
//! the snapshot's `resource.cancellations.disconnect`.
//!
//! The service does not link the text-format parser (that would make the
//! crate graph cyclic); callers inject a [`NetDecoder`] closure, which
//! the CLI builds from `buffopt_netlist::parse`.
//!
//! [`MetricsSnapshot`]: crate::metrics::MetricsSnapshot

use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use buffopt::{CancelReason, CancelToken};
use buffopt_integrity::{decode_frame, encode_frame, is_framed};
use buffopt_pipeline::fault::{FaultAction, Seam};
use buffopt_pipeline::NetInput;

use crate::engine::{Engine, Job};

/// How often the disconnect monitor probes the client socket while a
/// request is in flight. Small enough that a vanished client frees its
/// worker within tens of milliseconds; large enough that the probe is
/// noise next to per-net optimization.
const DISCONNECT_POLL: Duration = Duration::from_millis(25);

/// Turns a request's `(id, net text)` into a [`NetInput`] — parsed, or a
/// `Failed` record carrying the parser's message.
pub type NetDecoder = Arc<dyn Fn(&str, &str) -> NetInput + Send + Sync>;

/// Per-connection hardening knobs for [`serve_with`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Close a connection that sends no complete request for this long;
    /// `None` waits forever (not recommended outside tests).
    pub read_timeout: Option<Duration>,
    /// Maximum accepted request-line length in bytes; longer lines get
    /// one structured error response and the connection is closed.
    pub max_line_bytes: usize,
    /// Accept length+CRC framed request lines (`!F <len> <crc> <json>`)
    /// and mirror the framing on their responses. Negotiated per
    /// request: plain lines keep working on the same connection, so old
    /// clients are unaffected. A truncated or damaged frame gets a typed
    /// `{"error":"bad_frame","detail":...}` response — never a parse
    /// guess — and is counted in `connections.bad_frames`.
    pub frame_check: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Some(Duration::from_secs(120)),
            max_line_bytes: 1 << 20,
            frame_check: false,
        }
    }
}

/// [`serve_with`] under [`ServeOptions::default`].
pub fn serve(
    listener: TcpListener,
    engine: Arc<Engine>,
    decode: NetDecoder,
) -> std::io::Result<()> {
    serve_with(listener, engine, decode, ServeOptions::default())
}

/// Runs the accept loop until a `shutdown` command arrives, then drains:
/// stops admission, wakes idle connections, and joins every handler so
/// each in-flight response is written before this function returns. One
/// thread per connection; every connection shares the engine's worker
/// pool, so compute concurrency is bounded by the pool no matter how
/// many clients attach.
pub fn serve_with(
    listener: TcpListener,
    engine: Arc<Engine>,
    decode: NetDecoder,
    opts: ServeOptions,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    // The acceptor is the sole owner of the connection registry: a clone
    // of each stream (to close its read side at drain time) plus the
    // handler's join handle.
    let mut conns: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                // Finished connections need no drain bookkeeping.
                conns.retain(|(_, h)| !h.is_finished());
                let peer = stream.try_clone();
                let engine = Arc::clone(&engine);
                let decode = Arc::clone(&decode);
                let stop = Arc::clone(&stop);
                let opts = opts.clone();
                let handle = std::thread::spawn(move || {
                    let shutdown = handle_connection(stream, &engine, &decode, &opts);
                    if shutdown {
                        stop.store(true, Ordering::SeqCst);
                        // Wake the blocked accept() so the loop observes
                        // the flag.
                        let _ = TcpStream::connect(addr);
                    }
                });
                match peer {
                    Ok(peer) => conns.push((peer, handle)),
                    // Cannot reach this connection at drain time; let it
                    // run detached (its reads still time out).
                    Err(_) => drop(handle),
                }
            }
            Err(_) if stop.load(Ordering::SeqCst) => break,
            Err(e) => return Err(e),
        }
    }
    // Drain. Admission closes first, so a request racing the shutdown
    // gets an explicit `shutting_down` error, not a dropped line; then
    // the read sides close, waking handlers blocked in read() while
    // leaving write sides open for in-flight responses; then every
    // handler is joined so its last response reaches the wire.
    engine.begin_shutdown();
    for (stream, _) in &conns {
        let _ = stream.shutdown(Shutdown::Read);
    }
    for (_, handle) in conns {
        let _ = handle.join();
    }
    Ok(())
}

fn write_line(writer: &mut BufWriter<TcpStream>, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Writes one response wrapped in a length+CRC frame (mirroring a framed
/// request).
fn write_framed(writer: &mut BufWriter<TcpStream>, line: &str) -> std::io::Result<()> {
    writer.write_all(&encode_frame(line.as_bytes()))?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// The typed response for a frame that failed validation.
fn bad_frame_json(detail: &str) -> String {
    let mut s = String::from("{\"error\":\"bad_frame\",\"detail\":");
    push_json_str(&mut s, detail);
    s.push('}');
    s
}

/// Serves one connection; returns true when the client asked for a
/// server shutdown.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    decode: &NetDecoder,
    opts: &ServeOptions,
) -> bool {
    let _ = stream.set_read_timeout(opts.read_timeout);
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return false,
    };
    let mut reader = reader;
    let mut writer = BufWriter::new(stream);
    let shutdown_requested = serve_lines(&mut reader, &mut writer, engine, decode, opts);
    // The acceptor holds a clone of this stream for drain bookkeeping;
    // shutting the socket down (not just dropping our handles) makes the
    // close visible to the client *now* instead of at the next accept.
    let _ = writer.flush();
    let _ = writer.get_ref().shutdown(Shutdown::Both);
    shutdown_requested
}

/// The connection's request/response loop; returns true when the client
/// asked for a server shutdown.
fn serve_lines(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    engine: &Engine,
    decode: &NetDecoder,
    opts: &ServeOptions,
) -> bool {
    loop {
        let mut buf: Vec<u8> = Vec::new();
        // The +1 makes an over-limit line distinguishable from one that
        // is exactly at the limit.
        let read = reader
            .by_ref()
            .take(opts.max_line_bytes as u64 + 1)
            .read_until(b'\n', &mut buf);
        match read {
            Ok(0) => break, // client closed (or drain closed the read side)
            Ok(_) => {
                if !buf.ends_with(b"\n") && buf.len() > opts.max_line_bytes {
                    engine.metrics().record_conn_error();
                    let _ = write_line(
                        writer,
                        &error_json(&format!(
                            "request line exceeds {} bytes; closing connection",
                            opts.max_line_bytes
                        )),
                    );
                    break;
                }
                // Strip the line terminator at the byte level first: a
                // framed payload's CRC is checked over raw bytes, before
                // any UTF-8 assumption is made about damaged content.
                let mut bytes: &[u8] = &buf;
                while bytes.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
                    bytes = &bytes[..bytes.len() - 1];
                }
                let framed = opts.frame_check && is_framed(bytes);
                let payload_line: String;
                let line = if framed {
                    // Frame validation is a decode step of its own, with
                    // its own arming of the decode fault seam: a
                    // `TruncateFrame` fault chops the frame mid-payload,
                    // exactly like a sender that died mid-write. (Other
                    // actions are not meaningful at this arming.)
                    let torn: Vec<u8>;
                    let frame: &[u8] = match engine.fault_plan().and_then(|p| p.fire(Seam::Decode))
                    {
                        Some(FaultAction::TruncateFrame) => {
                            torn = bytes[..bytes.len() / 2].to_vec();
                            &torn
                        }
                        _ => bytes,
                    };
                    let payload = match decode_frame(frame) {
                        Ok(p) => p,
                        Err(e) => {
                            engine.metrics().record_bad_frame();
                            if write_framed(writer, &bad_frame_json(&e.to_string())).is_err() {
                                break;
                            }
                            continue;
                        }
                    };
                    match std::str::from_utf8(payload) {
                        Ok(p) => {
                            payload_line = p.to_string();
                            payload_line.trim()
                        }
                        Err(_) => {
                            engine.metrics().record_bad_frame();
                            let detail = "frame payload is not UTF-8";
                            if write_framed(writer, &bad_frame_json(detail)).is_err() {
                                break;
                            }
                            continue;
                        }
                    }
                } else {
                    payload_line = String::from_utf8_lossy(bytes).into_owned();
                    payload_line.trim()
                };
                if line.is_empty() {
                    continue;
                }
                // A panic while serving — injected at the decode seam or
                // real — costs one error response, not the connection or
                // the server.
                let served = panic::catch_unwind(AssertUnwindSafe(|| {
                    respond(line, engine, decode, Some(writer.get_ref()))
                }));
                let (response, shutdown) = served.unwrap_or_else(|_| {
                    engine.metrics().record_conn_error();
                    (
                        error_json("internal error while serving the request"),
                        false,
                    )
                });
                let wrote = if framed {
                    write_framed(writer, &response)
                } else {
                    write_line(writer, &response)
                };
                if wrote.is_err() {
                    break;
                }
                if shutdown {
                    return true;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                engine.metrics().record_conn_error();
                let _ = write_line(writer, &error_json("read timed out; closing connection"));
                break;
            }
            Err(_) => break, // client gone
        }
    }
    false
}

/// Runs `f` — one blocking engine call — while a monitor thread probes
/// the client socket for a hang-up; a disconnect trips `cancel` so the
/// worker abandons the run at its next stride checkpoint. `SO_RCVTIMEO`
/// is a property of the socket (shared with the connection's reader
/// through the clone), so the original read timeout is restored after
/// the scope joins — never concurrently with a monitor probe.
fn with_disconnect_monitor<T>(
    conn: Option<&TcpStream>,
    engine: &Engine,
    cancel: &CancelToken,
    f: impl FnOnce() -> T,
) -> T {
    let Some(probe) = conn.and_then(|c| c.try_clone().ok()) else {
        return f();
    };
    let original = probe.read_timeout().ok().flatten();
    if probe.set_read_timeout(Some(DISCONNECT_POLL)).is_err() {
        return f();
    }
    let done = AtomicBool::new(false);
    let result = std::thread::scope(|s| {
        s.spawn(|| {
            let mut buf = [0u8; 1];
            loop {
                if done.load(Ordering::Relaxed) {
                    return;
                }
                match probe.peek(&mut buf) {
                    // EOF: the client hung up mid-request.
                    Ok(0) => break,
                    // Pipelined bytes are waiting; the client is alive.
                    Ok(_) => std::thread::sleep(DISCONNECT_POLL),
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                    // Any other socket error: treat the client as gone.
                    Err(_) => break,
                }
            }
            // The shutdown drain closes every connection's read side,
            // which looks exactly like a client hang-up from here. The
            // drain contract is that admitted work completes and its
            // response is written, so EOF during shutdown never cancels.
            if !engine.is_shutting_down() && cancel.cancel(CancelReason::Disconnect) {
                engine.metrics().record_cancelled(CancelReason::Disconnect);
            }
        });
        let result = f();
        done.store(true, Ordering::Relaxed);
        result
    });
    let _ = probe.set_read_timeout(original);
    result
}

/// Computes the response line for one request line. `conn` is the
/// request's client socket, watched for disconnects while the engine
/// call is in flight (`None` leaves the run uncancellable).
fn respond(
    line: &str,
    engine: &Engine,
    decode: &NetDecoder,
    conn: Option<&TcpStream>,
) -> (String, bool) {
    let fields = match parse_request(line) {
        Ok(f) => f,
        Err(e) => return (error_json(&format!("bad request: {e}")), false),
    };
    let get = |k: &str| {
        fields
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    let cmd = get("cmd").unwrap_or("optimize");
    match cmd {
        "optimize" => match get("net") {
            None => (error_json("optimize request needs a \"net\" field"), false),
            Some(net_text) => {
                let id = get("id").unwrap_or("net");
                let mut input = decode(id, net_text);
                let cancel = CancelToken::new();
                // Decode-seam fault hook: models a defective decoder.
                match engine.fault_plan().and_then(|p| p.fire(Seam::Decode)) {
                    None => {}
                    Some(FaultAction::Panic) | Some(FaultAction::KillWorker) => {
                        panic!("injected decode panic")
                    }
                    Some(FaultAction::StallMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                    Some(FaultAction::IoError) => {
                        return (error_json("injected decode I/O error"), false)
                    }
                    Some(FaultAction::WrongOutput) => {
                        input = NetInput::Failed {
                            name: id.to_string(),
                            error: "injected decode corruption".to_string(),
                        }
                    }
                    // Models a watchdog killing the request before it
                    // reaches a worker: the run aborts at its first
                    // checkpoint.
                    Some(FaultAction::CancelRun) => {
                        let won = cancel.cancel(CancelReason::Supervisor);
                        if won {
                            engine.metrics().record_cancelled(CancelReason::Supervisor);
                        }
                    }
                    // Memory pressure is a worker-seam behavior; nothing
                    // to squeeze at decode time. State-corruption faults
                    // belong to the Store seam or the framed read path.
                    Some(FaultAction::MemPressure { .. })
                    | Some(FaultAction::CorruptJournalLine)
                    | Some(FaultAction::BitFlipCacheEntry)
                    | Some(FaultAction::BitFlipMemoEntry)
                    | Some(FaultAction::TruncateFrame) => {}
                }
                let key = engine.key_for(id, net_text);
                let job = Job {
                    input,
                    cache_key: Some(key),
                };
                let served = with_disconnect_monitor(conn, engine, &cancel, || {
                    engine.try_optimize_with(job, cancel.clone())
                });
                match served {
                    Ok(served) => {
                        // Splice the serving provenance into the record.
                        let mut json = served.outcome.to_json();
                        let closed = json.pop();
                        debug_assert_eq!(closed, Some('}'));
                        json.push_str(&format!(
                            ",\"cache\":\"{}\",\"worker\":{}}}",
                            served.cache.as_str(),
                            served.worker
                        ));
                        (json, false)
                    }
                    Err(rejection) => (error_json(rejection.as_str()), false),
                }
            }
        },
        "stats" => (engine.metrics_snapshot().to_json(), false),
        "shutdown" => {
            // Close admission before acknowledging, so requests racing
            // the shutdown are refused explicitly from this moment on.
            engine.begin_shutdown();
            ("{\"ok\":\"shutdown\"}".to_string(), true)
        }
        other => (error_json(&format!("unknown cmd {other:?}")), false),
    }
}

/// Test-only export of the request-line parser so the fuzz suite can
/// drive it directly; not part of the crate's API.
#[doc(hidden)]
pub fn parse_request_line(line: &str) -> Result<Vec<(String, String)>, String> {
    parse_request(line)
}

fn error_json(msg: &str) -> String {
    let mut s = String::from("{\"error\":");
    push_json_str(&mut s, msg);
    s.push('}');
    s
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one request line: a flat JSON object whose values are strings.
/// Returns the key/value pairs in document order. This is deliberately
/// the whole grammar the protocol needs — nested objects, arrays, and
/// non-string values are rejected with a descriptive error.
fn parse_request(line: &str) -> Result<Vec<(String, String)>, String> {
    let mut chars = line.chars().peekable();
    let mut out = Vec::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return finish(chars, out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        if chars.peek() != Some(&'"') {
            return Err(format!("value of {key:?} must be a JSON string"));
        }
        let value = parse_string(&mut chars)?;
        out.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return finish(chars, out),
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn finish(
    mut rest: std::iter::Peekable<std::str::Chars<'_>>,
    out: Vec<(String, String)>,
) -> Result<Vec<(String, String)>, String> {
    skip_ws(&mut rest);
    match rest.next() {
        None => Ok(out),
        Some(c) => Err(format!("trailing content after object: {c:?}")),
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{0008}'),
                Some('f') => out.push('\u{000c}'),
                Some('u') => out.push(parse_unicode_escape(chars)?),
                other => return Err(format!("bad escape \\{other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn hex4(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<u32, String> {
    let mut v = 0u32;
    for _ in 0..4 {
        let c = chars.next().ok_or("truncated \\u escape")?;
        v = v * 16
            + c.to_digit(16)
                .ok_or_else(|| format!("bad hex digit {c:?}"))?;
    }
    Ok(v)
}

fn parse_unicode_escape(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<char, String> {
    let hi = hex4(chars)?;
    if (0xD800..0xDC00).contains(&hi) {
        // High surrogate: a \uXXXX low surrogate must follow.
        if chars.next() != Some('\\') || chars.next() != Some('u') {
            return Err("high surrogate without a low surrogate".to_string());
        }
        let lo = hex4(chars)?;
        if !(0xDC00..0xE000).contains(&lo) {
            return Err(format!("invalid low surrogate {lo:04x}"));
        }
        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
        char::from_u32(cp).ok_or_else(|| format!("invalid code point {cp:x}"))
    } else {
        char::from_u32(hi).ok_or_else(|| format!("invalid code point {hi:x}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_string_objects() {
        let f = parse_request(r#" {"cmd":"stats"} "#).expect("parses");
        assert_eq!(f, vec![("cmd".to_string(), "stats".to_string())]);
        let f = parse_request(r#"{"id":"a","net":"line1\nline2\t\"x\""}"#).expect("parses");
        assert_eq!(f[0], ("id".to_string(), "a".to_string()));
        assert_eq!(f[1].1, "line1\nline2\t\"x\"");
        assert!(parse_request("{}").expect("empty object").is_empty());
    }

    #[test]
    fn unicode_escapes_decode() {
        let f = parse_request(r#"{"k":"µm 😀"}"#).expect("parses");
        assert_eq!(f[0].1, "µm 😀");
    }

    #[test]
    fn rejects_everything_else() {
        for bad in [
            "",
            "stats",
            "[1]",
            r#"{"k":1}"#,
            r#"{"k":["a"]}"#,
            r#"{"k":{"x":"y"}}"#,
            r#"{"k":"v"} trailing"#,
            r#"{"k":"unterminated"#,
            r#"{"k":"\ud800 lonely"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn error_json_escapes() {
        assert_eq!(
            error_json("a \"b\"\nc"),
            r#"{"error":"a \"b\"\nc"}"#.to_string()
        );
    }
}
