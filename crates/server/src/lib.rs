//! Concurrent serving engine for the buffer-insertion pipeline.
//!
//! The paper's production setting is a sweep over the 500 noisiest nets
//! of a PowerPC design; buffer insertion is embarrassingly parallel
//! across nets (each `(tree, scenario, library)` triple is independent).
//! This crate multiplies throughput on the hardware at hand without any
//! external runtime — `std::thread` and bounded `std::sync::mpsc`
//! channels only:
//!
//! * [`Engine`] — a supervised fixed-size worker pool that fans batches
//!   of [`NetInput`]s out to workers and reassembles the per-net records
//!   in **deterministic input order**, so `--jobs N` output is
//!   indistinguishable from serial output (modulo wall-clock timings).
//!   The pool detects workers that die outside their panic boundary,
//!   respawns them, retries the orphaned request a bounded number of
//!   times, and sheds load ([`Rejection`]) when the bounded queue hits
//!   its high-watermark or a per-request deadline expires;
//! * [`SolutionCache`] — a sharded LRU keyed by a content digest of
//!   `(net, scenario, library, budget)`, serving repeated nets (ECO-style
//!   re-runs) without re-optimizing, with hit/miss/eviction counters;
//! * [`Metrics`] — atomic request/outcome/rung counters plus a
//!   fixed-bucket latency histogram per degradation rung, aggregated
//!   across workers and snapshot as JSON;
//! * [`service`] — a long-running newline-delimited-JSON TCP front end:
//!   one request line per net, one response line per record (the
//!   pipeline's JSONL schema plus `cache` and `worker` fields), plus
//!   `stats` and `shutdown` commands. Two interchangeable transports
//!   speak that protocol: the sharded epoll reactor
//!   ([`serve_sharded`], the default) and the legacy
//!   thread-per-connection loop ([`serve_threaded`], kept as the
//!   baseline for differential tests and benchmarks).
//!
//! [`NetInput`]: buffopt_pipeline::NetInput
//! [`SolutionCache`]: cache::SolutionCache
//! [`Metrics`]: metrics::Metrics

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod metrics;
mod reactor;
pub mod service;
mod threaded;

pub use cache::{digest, SolutionCache};
pub use engine::{default_jobs, CacheStatus, Engine, EngineOptions, Job, Rejection, Served};
pub use metrics::{Metrics, MetricsSnapshot, ShardStat};
pub use reactor::serve_sharded;
pub use service::{serve, serve_with, NetDecoder, ServeOptions};
pub use threaded::serve_threaded;
