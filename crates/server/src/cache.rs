//! Sharded LRU solution cache.
//!
//! Production batches repeat themselves: ECO re-runs resubmit mostly
//! unchanged nets, and a serving deployment sees the same noisy nets
//! again after every re-extraction. Optimizing a net costs milliseconds
//! to seconds of DP; a cache lookup costs a hash. Entries are keyed by a
//! content digest of everything that determines the record —
//! `(net, scenario, library, budget/config)` — computed by the caller
//! via [`digest`] / [`Engine::key_for`], so a hit returns a record
//! *identical* to what re-optimizing would produce (including the stored
//! wall time, which is part of the record's provenance).
//!
//! The map is sharded to keep lock contention off the worker pool's hot
//! path; each shard is an independent LRU protected by its own mutex.
//!
//! [`Engine::key_for`]: crate::engine::Engine::key_for

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use buffopt_integrity::Crc64;
use buffopt_pipeline::NetOutcome;

/// FNV-1a 64-bit over a sequence of byte slices, with a length separator
/// between parts so `("ab", "c")` and `("a", "bc")` digest differently.
pub fn digest(parts: &[&[u8]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for part in parts {
        eat(&(part.len() as u64).to_le_bytes());
        eat(part);
    }
    h
}

/// One cached record: the outcome plus the worker that computed it (the
/// service reports the original worker on a hit) and a checksum of the
/// serialized record at insert time, re-verified on every hit.
#[derive(Clone)]
struct Entry {
    tick: u64,
    outcome: NetOutcome,
    worker: usize,
    crc: u64,
}

/// CRC-64 over everything a hit serves: the serialized record plus the
/// reported worker. (The in-memory `solution` is not covered here — it
/// never reaches a client directly; the sampled re-verification audit
/// is the layer that checks solutions semantically.)
fn entry_crc(outcome: &NetOutcome, worker: usize) -> u64 {
    let mut h = Crc64::new();
    h.update(outcome.to_json().as_bytes());
    h.update_u64(worker as u64);
    h.finish()
}

struct Shard {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// Counters published in the metrics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Total capacity across shards (0 = caching disabled).
    pub capacity: usize,
    /// Verify-on-hit checksum validations performed.
    pub integrity_checks: u64,
    /// Entries evicted because their checksum no longer matched (each
    /// is also a miss — a corrupt record is never served).
    pub corrupt_evictions: u64,
}

/// A sharded LRU cache from content digest to per-net outcome record.
pub struct SolutionCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    integrity_checks: AtomicU64,
    corrupt_evictions: AtomicU64,
}

impl SolutionCache {
    /// A cache holding at most `capacity` records spread over `shards`
    /// shards (both rounded up so every shard holds at least one entry).
    /// `capacity == 0` disables caching: every lookup misses and inserts
    /// are dropped.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        SolutionCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard,
            capacity: per_shard * shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            integrity_checks: AtomicU64::new(0),
            corrupt_evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // The digest's low bits are well mixed; pick a shard from them.
        &self.shards[(key as usize) % self.shards.len()]
    }

    /// Looks `key` up, refreshing its recency. Returns the stored record
    /// and the worker that originally computed it.
    pub fn get(&self, key: u64) -> Option<(NetOutcome, usize)> {
        if self.per_shard == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        let corrupt = match shard.map.get_mut(&key) {
            Some(entry) => {
                // Verify-on-hit: a record that fails its insert-time
                // checksum is evicted and reported as a miss, never
                // served.
                self.integrity_checks.fetch_add(1, Ordering::Relaxed);
                if entry_crc(&entry.outcome, entry.worker) == entry.crc {
                    entry.tick = tick;
                    let hit = (entry.outcome.clone(), entry.worker);
                    drop(shard);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(hit);
                }
                true
            }
            None => false,
        };
        if corrupt {
            shard.map.remove(&key);
            self.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
        }
        drop(shard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Drops `key` outright (used when a sampled re-verification finds
    /// the served solution inconsistent with its own audit). Returns
    /// whether an entry was present.
    pub fn remove(&self, key: u64) -> bool {
        if self.per_shard == 0 {
            return false;
        }
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.map.remove(&key).is_some()
    }

    /// Stores a record, evicting the least-recently-used entry of the
    /// shard if it is full. Inserting a key that is already present
    /// keeps the stored record and only refreshes its recency: when two
    /// concurrent requests for the same key both miss and both compute
    /// (their timing records differ even though the solutions agree),
    /// first-write-wins keeps every subsequent hit byte-identical
    /// instead of flapping between the racers' records.
    pub fn insert(&self, key: u64, outcome: NetOutcome, worker: usize) {
        if self.per_shard == 0 {
            return;
        }
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.tick = tick;
            return;
        }
        if shard.map.len() >= self.per_shard {
            // Shards are small (capacity / shards); a linear scan for the
            // oldest tick is cheaper than maintaining an intrusive list
            // and runs nowhere near the optimizer's hot path.
            if let Some(&oldest) = shard.map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k) {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let crc = entry_crc(&outcome, worker);
        shard.map.insert(
            key,
            Entry {
                tick,
                outcome,
                worker,
                crc,
            },
        );
    }

    /// Test hook: silently damages the stored record for `key` (flips a
    /// high mantissa bit of its slack). With `rehash` false the stored
    /// checksum is kept, so the next `get` must detect the mismatch;
    /// with `rehash` true the checksum is recomputed over the damaged
    /// record, modelling corruption that happened *before* insert —
    /// invisible to verify-on-hit and catchable only by the sampled
    /// re-verification audit. Returns false when the key is absent.
    #[doc(hidden)]
    pub fn corrupt(&self, key: u64, rehash: bool) -> bool {
        if self.per_shard == 0 {
            return false;
        }
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        let Some(entry) = shard.map.get_mut(&key) else {
            return false;
        };
        let slack = entry.outcome.slack.unwrap_or(0.0);
        entry.outcome.slack = Some(f64::from_bits(slack.to_bits() ^ (1 << 51)));
        if rehash {
            entry.crc = entry_crc(&entry.outcome, entry.worker);
        }
        true
    }

    /// Current counter values and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
                .sum(),
            capacity: self.capacity,
            integrity_checks: self.integrity_checks.load(Ordering::Relaxed),
            corrupt_evictions: self.corrupt_evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffopt_pipeline::{NetInput, Outcome};

    fn record(name: &str) -> NetOutcome {
        // A parse-error shell is the cheapest real record to make.
        buffopt_pipeline::optimize_input(
            &NetInput::Failed {
                name: name.into(),
                error: "synthetic".into(),
            },
            &buffopt_pipeline::PipelineConfig::new(buffopt_buffers::catalog::single_buffer()),
        )
    }

    #[test]
    fn digest_separates_parts() {
        assert_ne!(digest(&[b"ab", b"c"]), digest(&[b"a", b"bc"]));
        assert_ne!(digest(&[b"ab"]), digest(&[b"ab", b""]));
        assert_eq!(digest(&[b"ab", b"c"]), digest(&[b"ab", b"c"]));
    }

    #[test]
    fn hit_returns_identical_record_and_counts() {
        let c = SolutionCache::new(8, 2);
        assert!(c.get(1).is_none());
        c.insert(1, record("a"), 3);
        let (got, worker) = c.get(1).expect("hit");
        assert_eq!(worker, 3);
        assert_eq!(got.to_json(), record("a").to_json());
        assert_eq!(got.outcome, Outcome::ParseError);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_oldest_not_recently_used() {
        // One shard of 2 entries: touch `a`, insert `c` — `b` goes.
        let c = SolutionCache::new(2, 1);
        c.insert(10, record("a"), 0);
        c.insert(20, record("b"), 0);
        assert!(c.get(10).is_some(), "refresh a");
        c.insert(30, record("c"), 0);
        assert!(c.get(10).is_some(), "a survived");
        assert!(c.get(20).is_none(), "b evicted");
        assert!(c.get(30).is_some(), "c present");
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = SolutionCache::new(0, 4);
        c.insert(1, record("a"), 0);
        assert!(c.get(1).is_none());
        let s = c.stats();
        assert_eq!((s.capacity, s.entries, s.evictions), (0, 0, 0));
    }

    #[test]
    fn corrupt_entry_is_evicted_and_missed_never_served() {
        let c = SolutionCache::new(8, 2);
        c.insert(1, record("a"), 3);
        assert!(c.corrupt(1, false), "entry present to damage");
        assert!(c.get(1).is_none(), "a corrupt record is never served");
        let s = c.stats();
        assert_eq!(s.corrupt_evictions, 1);
        assert_eq!(s.entries, 0, "the damaged entry is gone");
        assert_eq!((s.hits, s.misses), (0, 1), "corruption is a miss");
        // The slot heals on re-insert.
        c.insert(1, record("a"), 3);
        assert!(c.get(1).is_some());
        assert_eq!(c.stats().corrupt_evictions, 1);
    }

    #[test]
    fn rehashed_corruption_slips_past_verify_on_hit() {
        // Corruption that predates the checksum (rehash=true) is the
        // case verify-on-hit cannot see — that's what the sampled
        // re-verification audit is for.
        let c = SolutionCache::new(8, 2);
        c.insert(1, record("a"), 3);
        assert!(c.corrupt(1, true));
        let (got, _) = c.get(1).expect("served: checksum matches the lie");
        assert_ne!(got.to_json(), record("a").to_json());
        assert_eq!(c.stats().corrupt_evictions, 0);
        assert!(c.remove(1), "explicit invalidation still works");
        assert!(c.get(1).is_none());
    }

    #[test]
    fn hits_count_integrity_checks() {
        let c = SolutionCache::new(8, 2);
        c.insert(1, record("a"), 0);
        c.get(1);
        c.get(1);
        c.get(2);
        let s = c.stats();
        assert_eq!(s.integrity_checks, 2, "only found entries are checked");
    }

    #[test]
    fn keys_spread_over_shards() {
        let c = SolutionCache::new(64, 8);
        for k in 0..64u64 {
            c.insert(k, record("x"), 0);
        }
        assert_eq!(c.stats().entries, 64, "no shard overflowed early");
    }
}
