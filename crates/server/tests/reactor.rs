//! Reactor front-end hardening: slow-loris starvation, half-written
//! oversized lines, the max-conns ceiling, multi-shard routing and
//! stats aggregation, and byte-parity with the threaded baseline.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use buffopt_buffers::catalog;
use buffopt_integrity::{decode_frame, encode_frame};
use buffopt_netlist::{parse, write as write_net, ParsedNet};
use buffopt_pipeline::{NetInput, PipelineConfig};
use buffopt_server::{
    serve_sharded, serve_threaded, serve_with, Engine, EngineOptions, NetDecoder, ServeOptions,
};
use buffopt_workload::{adversarial, WorkloadConfig};

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        max_tree_nodes: Some(70),
        time_limit: Some(Duration::from_secs(60)),
        ..PipelineConfig::new(catalog::ibm_like())
    }
}

fn decoder() -> NetDecoder {
    Arc::new(|name: &str, body: &str| match parse(body) {
        Ok(net) => NetInput::Parsed {
            name: name.to_string(),
            tree: net.tree,
            scenario: net.scenario,
        },
        Err(e) => NetInput::Failed {
            name: name.to_string(),
            error: e.to_string(),
        },
    })
}

fn healthy_net_request(id: &str) -> String {
    let (tree, scenario) = adversarial::valid_net(&WorkloadConfig::default());
    let node_names = (0..tree.len()).map(|_| None).collect();
    let text = write_net(&ParsedNet {
        name: None,
        tree,
        scenario,
        node_names,
    });
    let escaped = text
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!("{{\"id\":\"{id}\",\"net\":\"{escaped}\"}}")
}

fn new_engine(jobs: usize) -> Arc<Engine> {
    // A live Engine hushes the process-wide panic hook (so a panicking
    // net in a parallel batch doesn't spray backtraces); reinstall a
    // printing hook afterwards or assertion failures in these tests
    // vanish silently.
    let engine = Arc::new(Engine::new(
        pipeline_config(),
        EngineOptions {
            jobs,
            // Deep enough that the burst tests here exercise the
            // reactor, not the engine's admission shedding (which has
            // its own chaos coverage).
            queue_depth: 32,
            ..EngineOptions::default()
        },
    ));
    std::panic::set_hook(Box::new(|info| eprintln!("test panic: {info}")));
    engine
}

fn start_reactor(
    engines: Vec<Arc<Engine>>,
    opts: ServeOptions,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        serve_sharded(listener, engines, decoder(), opts).expect("serve runs");
    });
    (addr, handle)
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    (BufReader::new(stream.try_clone().expect("clone")), stream)
}

fn roundtrip(conn: &mut (BufReader<TcpStream>, TcpStream), request: &str) -> String {
    conn.1
        .write_all(format!("{request}\n").as_bytes())
        .expect("send");
    let mut line = String::new();
    conn.0.read_line(&mut line).expect("response");
    line.trim_end().to_string()
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn slow_loris_cannot_evade_the_read_timeout_or_pin_the_shard() {
    let engine = new_engine(1);
    let (addr, server) = start_reactor(
        vec![Arc::clone(&engine)],
        ServeOptions {
            read_timeout: Some(Duration::from_millis(300)),
            ..ServeOptions::default()
        },
    );

    // The loris trickles one byte at a time, always "active" but never
    // completing a line. The deadline arms when the connection starts
    // waiting and is NOT refreshed by partial bytes, so the trickle
    // cannot push it out.
    let loris = TcpStream::connect(addr).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let started = Instant::now();
    let writer = {
        let mut w = loris.try_clone().expect("clone");
        std::thread::spawn(move || {
            for _ in 0..100 {
                if w.write_all(b"x").is_err() {
                    return; // server already cut us off
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        })
    };

    // Meanwhile the same single shard keeps serving a healthy client:
    // the loris holds no thread, only a connection slot.
    let mut healthy = connect(addr);
    let served = roundtrip(&mut healthy, &healthy_net_request("alive"));
    assert!(
        served.contains("\"outcome\":\"optimized\""),
        "healthy client starved by the loris: {served}"
    );

    let mut line = String::new();
    BufReader::new(loris.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("loris gets a response");
    assert!(
        line.contains("read timed out; closing connection"),
        "loris got: {line}"
    );
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "timeout fired on schedule, not after the trickle ended: {elapsed:?}"
    );
    writer.join().expect("writer thread");
    wait_for("the timeout to be counted", || {
        engine.metrics_snapshot().conn_errors >= 1
    });

    // The healthy connection has been idle past the timeout too by now;
    // shut down from a fresh one.
    let mut admin = connect(addr);
    let ack = roundtrip(&mut admin, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("serve exits");
}

#[test]
fn half_written_oversized_line_gets_the_typed_error_not_a_hang() {
    let engine = new_engine(1);
    let (addr, server) = start_reactor(
        vec![engine],
        ServeOptions {
            max_line_bytes: 128,
            ..ServeOptions::default()
        },
    );

    // 500 bytes, no terminating newline: the cap must trip on the bytes
    // alone — a client that never finishes its line cannot park an
    // unbounded buffer or wait out the server.
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    conn.write_all(&[b'y'; 500]).expect("send");
    let mut line = String::new();
    BufReader::new(conn.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("typed error");
    assert!(
        line.contains("request line exceeds 128 bytes; closing connection"),
        "got: {line}"
    );
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty(), "connection closed after the error");

    let mut admin = connect(addr);
    let ack = roundtrip(&mut admin, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("serve exits");
}

#[test]
fn max_conns_ceiling_refuses_with_a_typed_line_and_recovers() {
    let engine = new_engine(1);
    let (addr, server) = start_reactor(
        vec![Arc::clone(&engine)],
        ServeOptions {
            max_conns: 2,
            ..ServeOptions::default()
        },
    );

    let mut first = connect(addr);
    let mut second = connect(addr);
    // Prove both slots are held (and force the accepts to happen).
    assert!(roundtrip(&mut first, &healthy_net_request("one")).contains("optimized"));
    assert!(roundtrip(&mut second, &healthy_net_request("two")).contains("optimized"));

    // The third accept is refused with the typed overload line, then EOF.
    let mut refused = TcpStream::connect(addr).expect("connect");
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut line = String::new();
    BufReader::new(refused.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("refusal line");
    assert_eq!(
        line.trim_end(),
        "{\"error\":\"overloaded\",\"detail\":\"max_conns\"}"
    );
    let mut rest = Vec::new();
    refused.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty());

    // The refusal is counted and visible from a held connection.
    let stats = roundtrip(&mut first, "{\"cmd\":\"stats\"}");
    assert!(stats.contains("\"rejected_max_conns\":1"), "got: {stats}");

    // Releasing a slot re-opens admission.
    drop(second);
    let mut third = loop {
        let mut c = connect(addr);
        let r = roundtrip(&mut c, "{\"cmd\":\"stats\"}");
        if r.contains("\"rejected_max_conns\":") && !r.starts_with("{\"error\":\"overloaded\"") {
            break c;
        }
        std::thread::sleep(Duration::from_millis(5));
    };

    let ack = roundtrip(&mut third, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("serve exits");
}

#[test]
fn sharded_serving_routes_consistently_and_aggregates_stats() {
    let engines: Vec<_> = (0..3).map(|_| new_engine(1)).collect();
    let (addr, server) = start_reactor(engines.clone(), ServeOptions::default());

    // Distinct nets from parallel clients: every response must carry its
    // own id, wherever it was routed.
    const CLIENTS: usize = 6;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                let first = roundtrip(&mut conn, &healthy_net_request(&format!("net{c}")));
                // A repeat of the same net must route to the same engine
                // and hit its cache.
                let again = roundtrip(&mut conn, &healthy_net_request(&format!("net{c}")));
                (first, again)
            })
        })
        .collect();
    let mut total_hits = 0;
    for (c, h) in handles.into_iter().enumerate() {
        let (first, again) = h.join().expect("client");
        assert!(
            first.contains(&format!("\"net\":\"net{c}\""))
                && first.contains("\"outcome\":\"optimized\""),
            "client {c}: {first}"
        );
        assert!(
            again.contains("\"cache\":\"hit\""),
            "repeat of net{c} missed its engine's cache: {again}"
        );
        total_hits += 1;
    }

    // The aggregated snapshot sums the engines and carries a per-shard
    // breakdown with one entry per shard.
    let mut conn = connect(addr);
    let stats = roundtrip(&mut conn, "{\"cmd\":\"stats\"}");
    let engine_requests: u64 = engines.iter().map(|e| e.metrics_snapshot().requests).sum();
    assert!(
        stats.contains(&format!("\"requests\":{engine_requests}")),
        "aggregate requests: {stats}"
    );
    assert!(
        stats.contains(&format!("\"hits\":{total_hits}")),
        "aggregate cache hits: {stats}"
    );
    for shard in 0..3 {
        assert!(
            stats.contains(&format!("{{\"shard\":{shard},")),
            "missing shard {shard} breakdown: {stats}"
        );
    }

    let ack = roundtrip(&mut conn, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("serve exits");
    // Shutdown closed admission on every engine, not just the routed one.
    for engine in &engines {
        assert!(engine.is_shutting_down());
    }
}

/// Blanks the volatile fields (`wall_ms` always; `worker` is stable at
/// jobs=1 but normalized anyway) so front ends can be compared bytewise.
fn normalize(line: &str) -> String {
    let mut out = line.to_string();
    for key in ["\"wall_ms\":", "\"worker\":"] {
        if let Some(start) = out.find(key) {
            let vstart = start + key.len();
            let vend = out[vstart..]
                .find([',', '}'])
                .map(|i| vstart + i)
                .unwrap_or(out.len());
            out.replace_range(vstart..vend, "_");
        }
    }
    out
}

#[test]
fn reactor_and_threaded_front_ends_serve_identical_bytes() {
    let run = |threaded: bool| -> Vec<String> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let engine = new_engine(1);
        let opts = ServeOptions {
            frame_check: true,
            max_line_bytes: 4096,
            ..ServeOptions::default()
        };
        let server = std::thread::spawn(move || {
            if threaded {
                serve_threaded(listener, engine, decoder(), opts).expect("serve runs");
            } else {
                serve_with(listener, engine, decoder(), opts).expect("serve runs");
            }
        });

        let mut conn = connect(addr);
        // One request per protocol path: healthy net (then its cache
        // hit), unparsable net, malformed JSON, missing net field,
        // unknown cmd, framed round-trip, oversize, shutdown ack.
        // (`stats` is deliberately absent: the reactor's snapshot adds
        // the per-shard breakdown, a documented extension.)
        let mut responses = vec![
            normalize(&roundtrip(&mut conn, &healthy_net_request("same"))),
            normalize(&roundtrip(&mut conn, &healthy_net_request("same"))),
            normalize(&roundtrip(
                &mut conn,
                "{\"id\":\"broken\",\"net\":\"tree{\\n\"}",
            )),
            roundtrip(&mut conn, "not json at all"),
            roundtrip(&mut conn, "{\"cmd\":\"optimize\",\"id\":\"x\"}"),
            roundtrip(&mut conn, "{\"cmd\":\"bogus\"}"),
        ];

        // A framed healthy request must come back framed, same payload.
        let framed = encode_frame(healthy_net_request("framed").as_bytes());
        conn.1.write_all(&framed).expect("send frame");
        conn.1.write_all(b"\n").expect("send newline");
        let mut line = Vec::new();
        conn.0
            .read_until(b'\n', &mut line)
            .expect("framed response");
        let payload = decode_frame(line.strip_suffix(b"\n").unwrap_or(&line))
            .expect("well-formed response frame");
        responses.push(normalize(
            std::str::from_utf8(payload).expect("utf8 payload"),
        ));

        let oversize = format!("{{\"id\":\"big\",\"net\":\"{}\"}}", "z".repeat(8192));
        let mut over = connect(addr);
        responses.push(roundtrip(&mut over, &oversize));

        responses.push(roundtrip(&mut conn, "{\"cmd\":\"shutdown\"}"));
        server.join().expect("serve exits");
        responses
    };

    let threaded = run(true);
    let reactor = run(false);
    assert_eq!(
        threaded.len(),
        reactor.len(),
        "same number of responses from both front ends"
    );
    for (i, (t, r)) in threaded.iter().zip(reactor.iter()).enumerate() {
        assert_eq!(t, r, "response {i} differs between front ends");
    }
}

#[test]
fn pipelined_requests_before_disconnect_are_still_served_in_order() {
    let engine = new_engine(1);
    let (addr, server) = start_reactor(vec![Arc::clone(&engine)], ServeOptions::default());

    // Write three requests back-to-back, then close the write half. The
    // reactor must collect the pipelined tail on RDHUP and serve all
    // three responses to the still-open read half, in order.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    let mut batch = String::new();
    for i in 0..3 {
        batch.push_str(&healthy_net_request(&format!("pipe{i}")));
        batch.push('\n');
    }
    w.write_all(batch.as_bytes()).expect("send");
    w.shutdown(std::net::Shutdown::Write).expect("half-close");

    let mut reader = BufReader::new(stream);
    for i in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        assert!(
            line.contains(&format!("\"net\":\"pipe{i}\"")),
            "response {i} out of order or dropped: {line}"
        );
    }
    let mut line = String::new();
    // After the pipelined tail the server closes its side too.
    match reader.read_line(&mut line) {
        Ok(0) => {}
        Ok(_) => panic!("unexpected extra response: {line}"),
        Err(e) => assert!(
            matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::TimedOut),
            "unexpected error {e}"
        ),
    }

    let mut admin = connect(addr);
    let ack = roundtrip(&mut admin, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("serve exits");
}
