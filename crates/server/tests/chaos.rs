//! Chaos suite: deterministic fault injection against the serving
//! stack's self-healing guarantees.
//!
//! Every test builds a small engine with a [`FaultPlan`] and asserts the
//! blast radius the design promises: a killed worker costs a respawn and
//! at most one request; an over-watermark burst is shed with explicit
//! `overloaded` errors while admitted work completes; optimizer-seam
//! faults stay inside one record; decode-seam faults cost one error line
//! on one connection; shutdown drains in-flight requests instead of
//! dropping them.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use buffopt_buffers::catalog;
use buffopt_integrity::{decode_frame, encode_frame};
use buffopt_netlist::{parse, write as write_net, ParsedNet};
use buffopt_pipeline::fault::{FaultAction, FaultPlan, Seam};
use buffopt_pipeline::{NetInput, NetOutcome, Outcome, PipelineConfig};
use buffopt_server::{
    serve_with, CacheStatus, Engine, EngineOptions, Job, NetDecoder, Rejection, ServeOptions,
};
use buffopt_tree::{Driver, SinkSpec, Technology, TreeBuilder};
use buffopt_workload::{adversarial, estimation_scenario, WorkloadConfig};

fn healthy(name: &str) -> NetInput {
    let (tree, scenario) = adversarial::valid_net(&WorkloadConfig::default());
    NetInput::Parsed {
        name: name.to_string(),
        tree,
        scenario,
    }
}

fn job(name: &str) -> Job {
    Job {
        input: healthy(name),
        cache_key: None,
    }
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        max_tree_nodes: Some(70),
        time_limit: Some(Duration::from_secs(60)),
        ..PipelineConfig::new(catalog::ibm_like())
    }
}

fn engine_with(plan: FaultPlan, opts: EngineOptions) -> (Engine, Arc<FaultPlan>) {
    let plan = Arc::new(plan);
    let engine = Engine::new(
        pipeline_config(),
        EngineOptions {
            fault_plan: Some(Arc::clone(&plan)),
            ..opts
        },
    );
    (engine, plan)
}

/// Spins until `cond` holds, failing the test after a generous timeout.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn killed_worker_is_respawned_and_the_request_retried_to_success() {
    let (engine, _plan) = engine_with(
        FaultPlan::new().on_nth(Seam::Worker, 1, FaultAction::KillWorker),
        EngineOptions {
            jobs: 2,
            max_retries: 1,
            ..EngineOptions::default()
        },
    );
    let served = engine.optimize(job("kill-me"));
    assert_eq!(served.outcome.name, "kill-me");
    assert_eq!(
        served.outcome.outcome,
        Outcome::Optimized,
        "the retry must succeed: {:?}",
        served.outcome.error
    );
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.worker_deaths, 1, "the death was detected");
    assert_eq!(snap.retries, 1, "the orphaned request was retried once");
    assert!(snap.respawns >= 1, "the supervisor repaired the pool");
    wait_for("pool back at target strength", || {
        engine.live_workers() == 2
    });
}

#[test]
fn injected_worker_panic_is_detected_like_a_death() {
    let (engine, _plan) = engine_with(
        FaultPlan::new().on_nth(Seam::Worker, 1, FaultAction::Panic),
        EngineOptions {
            jobs: 1,
            max_retries: 1,
            ..EngineOptions::default()
        },
    );
    let served = engine.optimize(job("panic-me"));
    assert_eq!(served.outcome.outcome, Outcome::Optimized);
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.worker_deaths, 1);
    assert_eq!(snap.retries, 1);
    wait_for("pool back at target strength", || {
        engine.live_workers() == 1
    });
}

#[test]
fn worker_kill_fails_only_the_request_it_held() {
    const NETS: usize = 6;
    let (engine, _plan) = engine_with(
        FaultPlan::new().on_nth(Seam::Worker, 3, FaultAction::KillWorker),
        EngineOptions {
            jobs: 2,
            max_retries: 0, // no retry: the orphaned request must fail alone
            ..EngineOptions::default()
        },
    );
    let jobs = (0..NETS).map(|i| job(&format!("net{i}"))).collect();
    let report = engine.run_jobs(jobs);

    assert_eq!(report.outcomes.len(), NETS, "no record lost");
    let failed: Vec<&str> = report
        .outcomes
        .iter()
        .filter(|o| o.outcome == Outcome::Failed)
        .map(|o| o.name.as_str())
        .collect();
    assert_eq!(failed.len(), 1, "exactly one request died: {failed:?}");
    let victim = report
        .outcomes
        .iter()
        .find(|o| o.outcome == Outcome::Failed)
        .expect("one failure");
    assert!(
        victim
            .error
            .as_deref()
            .unwrap_or_default()
            .contains("worker died while holding the request"),
        "failure names the cause: {:?}",
        victim.error
    );
    for o in report.outcomes.iter().filter(|o| o.name != victim.name) {
        assert_eq!(o.outcome, Outcome::Optimized, "{} suffered", o.name);
    }
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.worker_deaths, 1);
    assert_eq!(snap.retries, 0);
    assert!(snap.respawns >= 1);
    wait_for("pool back at target strength", || {
        engine.live_workers() == 2
    });
}

#[test]
fn mem_pressure_fault_degrades_in_place_with_a_feasible_record() {
    let (engine, _plan) = engine_with(
        FaultPlan::new().on_nth(
            Seam::Optimize,
            1,
            FaultAction::MemPressure { at_bytes: 512 },
        ),
        EngineOptions {
            jobs: 1,
            ..EngineOptions::default()
        },
    );
    let served = engine.optimize(job("squeezed"));
    assert!(
        matches!(
            served.outcome.outcome,
            Outcome::Optimized | Outcome::Degraded
        ),
        "pressure degrades, never fails: {:?} {:?}",
        served.outcome.outcome,
        served.outcome.error
    );
    assert_eq!(
        served.outcome.degraded_by,
        Some(buffopt::BudgetResource::ArenaBytes),
        "the record attributes the degradation to the memory cap"
    );
    assert!(
        served.outcome.arena_peak > 512,
        "the recorded peak shows the cap was actually hit: {}",
        served.outcome.arena_peak
    );

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.degraded_pressure, 1);
    assert!(snap.arena_peak_bytes > 512);
    assert_eq!(snap.worker_deaths, 0, "pressure is not a death");

    // The forced cap was one run's view, not the shared config: the next
    // request runs unsqueezed.
    let clean = engine.optimize(job("clean"));
    assert_eq!(clean.outcome.outcome, Outcome::Optimized);
    assert_eq!(clean.outcome.degraded_by, None);
}

#[test]
fn cancel_run_fault_fails_fast_with_the_supervisor_reason() {
    let (engine, _plan) = engine_with(
        FaultPlan::new().on_nth(Seam::Optimize, 1, FaultAction::CancelRun),
        EngineOptions {
            jobs: 1,
            ..EngineOptions::default()
        },
    );
    let served = engine.optimize(job("killed"));
    assert_eq!(served.outcome.outcome, Outcome::Failed);
    assert!(
        served
            .outcome
            .error
            .as_deref()
            .unwrap_or_default()
            .contains("cancelled: supervisor"),
        "the record names the cancellation reason: {:?}",
        served.outcome.error
    );
    let snap = engine.metrics_snapshot();
    assert_eq!(
        snap.cancellations,
        [0, 0, 0, 1],
        "attributed to the supervisor reason"
    );
    assert_eq!(snap.worker_deaths, 0, "a cancelled run is not a death");
    assert_eq!(snap.respawns, 0);

    let clean = engine.optimize(job("clean"));
    assert_eq!(clean.outcome.outcome, Outcome::Optimized);
}

#[test]
fn deadline_cancellation_aborts_the_stalled_run_and_is_counted() {
    let (engine, _plan) = engine_with(
        // Stall INSIDE the per-net boundary: when the sleep ends the
        // token is already tripped, so the optimizer aborts at its first
        // checkpoint instead of computing to completion for nobody.
        FaultPlan::new().on_nth(Seam::Optimize, 1, FaultAction::StallMs(600)),
        EngineOptions {
            jobs: 1,
            request_deadline: Some(Duration::from_millis(80)),
            ..EngineOptions::default()
        },
    );
    let r = engine.try_optimize(job("too-slow"));
    assert_eq!(r.unwrap_err(), Rejection::DeadlineExceeded);
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.cancellations, [1, 0, 0, 0], "deadline cancel counted");
    assert_eq!(snap.rejections[1], 1);

    // The cancelled worker aborts right after the stall and retires
    // against the surplus credit: back to one worker.
    wait_for("the cancelled worker to retire", || {
        engine.live_workers() == 1
    });
    let served = engine.optimize(job("after-recovery"));
    assert_eq!(served.outcome.outcome, Outcome::Optimized);
}

#[test]
fn optimizer_seam_faults_stay_inside_one_record() {
    let (engine, _plan) = engine_with(
        FaultPlan::new()
            .on_nth(Seam::Optimize, 1, FaultAction::Panic)
            .on_nth(Seam::Optimize, 2, FaultAction::IoError),
        EngineOptions {
            jobs: 1,
            ..EngineOptions::default()
        },
    );
    let panicked = engine.optimize(job("panics"));
    assert_eq!(panicked.outcome.outcome, Outcome::Failed);
    let io = engine.optimize(job("io-errors"));
    assert_eq!(io.outcome.outcome, Outcome::Failed);
    assert!(
        io.outcome
            .error
            .as_deref()
            .unwrap_or_default()
            .contains("injected I/O error"),
        "{:?}",
        io.outcome.error
    );
    let clean = engine.optimize(job("clean"));
    assert_eq!(clean.outcome.outcome, Outcome::Optimized);

    // Contained faults never look like deaths: the pool was untouched.
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.worker_deaths, 0);
    assert_eq!(snap.respawns, 0);
    assert_eq!(snap.retries, 0);
    assert_eq!(engine.live_workers(), 1);
}

#[test]
fn wrong_output_is_caught_by_the_integrity_check_and_retried() {
    let (engine, _plan) = engine_with(
        FaultPlan::new().on_nth(Seam::Worker, 1, FaultAction::WrongOutput),
        EngineOptions {
            jobs: 1,
            max_retries: 1,
            ..EngineOptions::default()
        },
    );
    let served = engine.optimize(job("verify-me"));
    assert_eq!(served.outcome.name, "verify-me", "corrupt record rejected");
    assert_eq!(served.outcome.outcome, Outcome::Optimized);
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.bad_outputs, 1);
    assert_eq!(snap.retries, 1);
    assert_eq!(snap.worker_deaths, 0, "corruption is not a thread death");
}

#[test]
fn wrong_output_with_retries_exhausted_fails_the_request() {
    let (engine, _plan) = engine_with(
        FaultPlan::new().on_nth(Seam::Worker, 1, FaultAction::WrongOutput),
        EngineOptions {
            jobs: 1,
            max_retries: 0,
            ..EngineOptions::default()
        },
    );
    let served = engine.optimize(job("doomed"));
    assert_eq!(served.outcome.name, "doomed");
    assert_eq!(served.outcome.outcome, Outcome::Failed);
    assert!(
        served
            .outcome
            .error
            .as_deref()
            .unwrap_or_default()
            .contains("wrong net"),
        "{:?}",
        served.outcome.error
    );
    assert_eq!(engine.metrics_snapshot().bad_outputs, 1);
}

#[test]
fn over_watermark_burst_is_shed_while_in_flight_completes() {
    const BURST: usize = 4;
    let (engine, plan) = engine_with(
        // The first dequeued task stalls its worker long enough for the
        // whole burst to arrive while the single queue slot is occupied.
        FaultPlan::new().on_nth(Seam::Worker, 1, FaultAction::StallMs(1500)),
        EngineOptions {
            jobs: 1,
            queue_depth: 1,
            ..EngineOptions::default()
        },
    );
    let engine = Arc::new(engine);

    let in_flight = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || engine.try_optimize(job("in-flight")))
    };
    // The worker has dequeued the in-flight request (arming the seam)
    // and is now stalled; the queue slot is free for exactly one more.
    wait_for("the stalled worker to hold the first request", || {
        plan.armed(Seam::Worker) >= 1
    });

    let burst: Vec<_> = (0..BURST)
        .map(|i| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || engine.try_optimize(job(&format!("burst{i}"))))
        })
        .collect();
    let results: Vec<Result<_, _>> = burst
        .into_iter()
        .map(|t| t.join().expect("burst thread"))
        .collect();

    let shed = results
        .iter()
        .filter(|r| matches!(r, Err(Rejection::Overloaded)))
        .count();
    let admitted = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(admitted, 1, "one burst request fit the queue: {results:?}");
    assert_eq!(shed, BURST - 1, "the rest were shed: {results:?}");
    for r in results.iter().flatten() {
        assert_eq!(r.outcome.outcome, Outcome::Optimized);
    }

    let served = in_flight
        .join()
        .expect("in-flight thread")
        .expect("in-flight request was admitted");
    assert_eq!(
        served.outcome.outcome,
        Outcome::Optimized,
        "shedding never touches admitted work"
    );
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.rejections[0], (BURST - 1) as u64, "overloaded counted");
    assert_eq!(snap.worker_deaths, 0);
}

#[test]
fn deadline_expiry_sheds_the_request_and_the_pool_recovers() {
    let (engine, _plan) = engine_with(
        FaultPlan::new().on_nth(Seam::Worker, 1, FaultAction::StallMs(600)),
        EngineOptions {
            jobs: 1,
            request_deadline: Some(Duration::from_millis(80)),
            ..EngineOptions::default()
        },
    );
    let r = engine.try_optimize(job("too-slow"));
    assert_eq!(r.unwrap_err(), Rejection::DeadlineExceeded);
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.rejections[1], 1, "deadline_exceeded counted");
    assert_eq!(
        snap.respawns, 1,
        "a surplus worker backfilled the stalled slot"
    );
    assert_eq!(snap.worker_deaths, 0, "a stall is not a death");

    // The stalled worker eventually finishes, finds its reply abandoned,
    // and retires against the surplus credit: back to one worker.
    wait_for("the stalled worker to retire", || {
        engine.live_workers() == 1
    });
    // The blocking path (no deadline) proves the pool serves again —
    // through the surplus worker that replaced the stalled slot.
    let served = engine.optimize(job("after-recovery"));
    assert_eq!(served.outcome.outcome, Outcome::Optimized);
}

// ---------------------------------------------------------------------
// TCP-level chaos: decode-seam faults, connection hardening, and the
// shutdown drain, exercised over a real socket.
// ---------------------------------------------------------------------

fn decoder() -> NetDecoder {
    Arc::new(|name: &str, body: &str| match parse(body) {
        Ok(net) => NetInput::Parsed {
            name: name.to_string(),
            tree: net.tree,
            scenario: net.scenario,
        },
        Err(e) => NetInput::Failed {
            name: name.to_string(),
            error: e.to_string(),
        },
    })
}

fn healthy_net_request(id: &str) -> String {
    let (tree, scenario) = adversarial::valid_net(&WorkloadConfig::default());
    let node_names = (0..tree.len()).map(|_| None).collect();
    let text = write_net(&ParsedNet {
        name: None,
        tree,
        scenario,
        node_names,
    });
    let escaped = text
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!("{{\"id\":\"{id}\",\"net\":\"{escaped}\"}}")
}

fn start_chaos_server(
    plan: FaultPlan,
    opts: ServeOptions,
) -> (
    std::net::SocketAddr,
    Arc<Engine>,
    Arc<FaultPlan>,
    std::thread::JoinHandle<()>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let plan = Arc::new(plan);
    let engine = Arc::new(Engine::new(
        pipeline_config(),
        EngineOptions {
            jobs: 1,
            fault_plan: Some(Arc::clone(&plan)),
            ..EngineOptions::default()
        },
    ));
    let server_engine = Arc::clone(&engine);
    let handle = std::thread::spawn(move || {
        serve_with(listener, server_engine, decoder(), opts).expect("serve runs");
    });
    (addr, engine, plan, handle)
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    (BufReader::new(stream.try_clone().expect("clone")), stream)
}

fn roundtrip(conn: &mut (BufReader<TcpStream>, TcpStream), request: &str) -> String {
    conn.1
        .write_all(format!("{request}\n").as_bytes())
        .expect("send");
    let mut line = String::new();
    conn.0.read_line(&mut line).expect("response");
    line.trim_end().to_string()
}

#[test]
fn decode_seam_faults_cost_one_error_line_each_and_the_server_survives() {
    let (addr, engine, _plan, server) = start_chaos_server(
        FaultPlan::new()
            .on_nth(Seam::Decode, 1, FaultAction::Panic)
            .on_nth(Seam::Decode, 2, FaultAction::IoError),
        ServeOptions::default(),
    );
    let mut conn = connect(addr);

    let panicked = roundtrip(&mut conn, &healthy_net_request("a"));
    assert_eq!(
        panicked, "{\"error\":\"internal error while serving the request\"}",
        "a decode panic is contained to one structured error"
    );
    let io = roundtrip(&mut conn, &healthy_net_request("b"));
    assert!(io.contains("injected decode I/O error"), "{io}");
    let clean = roundtrip(&mut conn, &healthy_net_request("c"));
    assert!(
        clean.contains("\"outcome\":\"optimized\""),
        "the connection and server outlive the faults: {clean}"
    );
    assert_eq!(engine.metrics_snapshot().conn_errors, 1, "panic counted");

    let ack = roundtrip(&mut conn, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("accept loop exits");
}

#[test]
fn oversized_lines_and_idle_connections_are_cut_with_structured_errors() {
    let (addr, engine, _plan, server) = start_chaos_server(
        FaultPlan::new(),
        ServeOptions {
            read_timeout: Some(Duration::from_millis(200)),
            max_line_bytes: 256,
            ..ServeOptions::default()
        },
    );

    // A request line over the limit: one error response, then EOF.
    let mut conn = connect(addr);
    let huge = format!("{{\"id\":\"x\",\"net\":\"{}\"}}", "a".repeat(1024));
    let resp = roundtrip(&mut conn, &huge);
    assert!(resp.contains("exceeds 256 bytes"), "{resp}");
    let mut rest = String::new();
    conn.0.read_line(&mut rest).expect("read");
    assert!(
        rest.is_empty(),
        "connection closed after the error: {rest:?}"
    );

    // An idle connection: timed out with an error line, then EOF.
    let mut idle = connect(addr);
    let mut line = String::new();
    idle.0.read_line(&mut line).expect("read");
    assert!(line.contains("read timed out"), "{line}");

    // The server itself is unharmed and counted both terminations.
    wait_for("both connection errors to be recorded", || {
        engine.metrics_snapshot().conn_errors == 2
    });
    let mut conn = connect(addr);
    let ok = roundtrip(&mut conn, "{\"cmd\":\"stats\"}");
    assert!(
        ok.contains("\"connections\":{\"errors\":2,\"bad_frames\":0,\"rejected_max_conns\":0}"),
        "{ok}"
    );
    let ack = roundtrip(&mut conn, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("accept loop exits");
}

#[test]
fn shutdown_drains_in_flight_requests_instead_of_dropping_them() {
    let (addr, _engine, plan, server) = start_chaos_server(
        // Stall the in-flight request long enough for the shutdown to
        // land squarely while it is being computed.
        FaultPlan::new().on_nth(Seam::Worker, 1, FaultAction::StallMs(400)),
        ServeOptions::default(),
    );

    let mut in_flight = connect(addr);
    in_flight
        .1
        .write_all(format!("{}\n", healthy_net_request("survivor")).as_bytes())
        .expect("send");
    wait_for("the worker to hold the in-flight request", || {
        plan.armed(Seam::Worker) >= 1
    });

    let mut admin = connect(addr);
    let ack = roundtrip(&mut admin, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");

    // The drain must deliver the stalled request's record, not cut it.
    let mut resp = String::new();
    in_flight.0.read_line(&mut resp).expect("drained response");
    assert!(
        resp.contains("\"net\":\"survivor\"") && resp.contains("\"outcome\":\"optimized\""),
        "in-flight request completed through the drain: {resp}"
    );
    server.join().expect("accept loop exits after the drain");
}

#[test]
fn client_disconnect_mid_optimize_cancels_the_run_and_frees_the_worker() {
    let (addr, engine, plan, server) = start_chaos_server(
        // Stall inside the per-net boundary so the request is reliably
        // in flight when the client vanishes; after the sleep the token
        // is tripped and the run aborts at its first checkpoint.
        FaultPlan::new().on_nth(Seam::Optimize, 1, FaultAction::StallMs(400)),
        ServeOptions::default(),
    );

    {
        let mut doomed = connect(addr);
        doomed
            .1
            .write_all(format!("{}\n", healthy_net_request("abandoned")).as_bytes())
            .expect("send");
        wait_for("the worker to hold the request", || {
            plan.armed(Seam::Optimize) >= 1
        });
        // Hang up mid-optimize: both handles drop here, closing the
        // socket while the worker is still grinding.
    }

    // The disconnect monitor trips the token and attributes it.
    wait_for("the disconnect cancellation to be recorded", || {
        engine.metrics_snapshot().cancellations[2] == 1
    });

    // The worker shook off the abandoned run and serves the next client.
    let mut conn = connect(addr);
    let clean = roundtrip(&mut conn, &healthy_net_request("next"));
    assert!(
        clean.contains("\"outcome\":\"optimized\""),
        "the freed worker serves the next request: {clean}"
    );
    let stats = roundtrip(&mut conn, "{\"cmd\":\"stats\"}");
    assert!(
        stats.contains(
            "\"cancellations\":{\"deadline\":0,\"shutdown\":0,\"disconnect\":1,\"supervisor\":0}"
        ),
        "{stats}"
    );
    assert!(stats.contains("\"cancelled\":1"), "{stats}");

    let ack = roundtrip(&mut conn, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("accept loop exits");
}

// ---------------------------------------------------------------------
// Integrity chaos: injected state corruption must be detected, counted,
// and answered with a recompute or a typed error — never served.
// ---------------------------------------------------------------------

/// The fields a recompute must reproduce bit-for-bit (everything except
/// wall-clock timings and serving provenance).
fn assert_same_record(a: &NetOutcome, b: &NetOutcome) {
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.rung, b.rung);
    assert_eq!(a.buffers, b.buffers);
    assert_eq!(a.slack.map(f64::to_bits), b.slack.map(f64::to_bits));
    assert_eq!(
        a.worst_headroom.map(f64::to_bits),
        b.worst_headroom.map(f64::to_bits)
    );
}

/// A branchy net (the memo only engages at 2-child merge points).
fn branchy(name: &str) -> NetInput {
    let tech = Technology::global_layer();
    let mut b = TreeBuilder::new(Driver::new(300.0, 10e-12));
    let j = b
        .add_internal(b.source(), tech.wire(6_000.0))
        .expect("trunk");
    b.add_sink(j, tech.wire(4_000.0), SinkSpec::new(20e-15, 2.5e-9, 0.8))
        .expect("far sink");
    b.add_sink(j, tech.wire(5_200.0), SinkSpec::new(15e-15, 2.5e-9, 0.8))
        .expect("near sink");
    let tree = b.build().expect("tree");
    let scenario = estimation_scenario(&tree, &WorkloadConfig::default());
    NetInput::Parsed {
        name: name.to_string(),
        tree,
        scenario,
    }
}

/// Sends a raw (already framed or deliberately damaged) request line and
/// decodes the framed response.
fn framed_roundtrip(conn: &mut (BufReader<TcpStream>, TcpStream), request: &[u8]) -> String {
    conn.1.write_all(request).expect("send");
    conn.1.write_all(b"\n").expect("send newline");
    let mut line = Vec::new();
    conn.0.read_until(b'\n', &mut line).expect("response");
    while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
        line.pop();
    }
    let payload = decode_frame(&line).expect("response frame is intact");
    String::from_utf8(payload.to_vec()).expect("utf-8 payload")
}

#[test]
fn cache_bit_flip_is_detected_evicted_and_recomputed_identically() {
    let (engine, plan) = engine_with(
        FaultPlan::new().on_nth(Seam::Store, 1, FaultAction::BitFlipCacheEntry),
        EngineOptions {
            jobs: 1,
            ..EngineOptions::default()
        },
    );
    let key = engine.key_for("victim", "same-body");
    let keyed = || Job {
        input: healthy("victim"),
        cache_key: Some(key),
    };

    let first = engine.optimize(keyed());
    assert_eq!(first.cache, CacheStatus::Miss);
    assert_eq!(plan.armed(Seam::Store), 1, "the store fault fired");

    // The flipped bit must never be served: verify-on-hit catches it,
    // evicts the entry, and the request recomputes from scratch.
    let second = engine.optimize(keyed());
    assert_eq!(second.cache, CacheStatus::Miss, "corrupt entry not served");
    assert_same_record(&first.outcome, &second.outcome);

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.cache.corrupt_evictions, 1);
    assert!(snap.cache.integrity_checks >= 1);

    // The recompute re-installed a good entry: the cache is healed.
    let third = engine.optimize(keyed());
    assert_eq!(third.cache, CacheStatus::Hit);
    assert_same_record(&first.outcome, &third.outcome);
}

#[test]
fn memo_bit_flip_is_detected_evicted_and_recomputed_identically() {
    let memo = Arc::new(buffopt::MemoTable::new(32 << 20, 4));
    let mut cfg = pipeline_config();
    cfg.memo = Some(Arc::clone(&memo));
    let plan = Arc::new(FaultPlan::new().on_nth(Seam::Store, 1, FaultAction::BitFlipMemoEntry));
    let engine = Engine::new(
        cfg,
        EngineOptions {
            jobs: 1,
            fault_plan: Some(Arc::clone(&plan)),
            ..EngineOptions::default()
        },
    );

    // Distinct cache keys so the second request re-runs the DP (which is
    // what consults the memo); the Store-seam fault flips a bit in a
    // stored frontier row right after the first request's insert.
    let first = engine.optimize(Job {
        input: branchy("y-one"),
        cache_key: Some(engine.key_for("y-one", "b1")),
    });
    assert!(
        memo.stats().stores > 0,
        "the branchy net stored frontiers: {:?}",
        memo.stats()
    );

    let second = engine.optimize(Job {
        input: branchy("y-two"),
        cache_key: Some(engine.key_for("y-two", "b2")),
    });
    let stats = memo.stats();
    assert_eq!(
        stats.corrupt_evictions, 1,
        "flipped row caught at lookup: {stats:?}"
    );
    assert!(stats.integrity_checks >= 1);
    // The poisoned frontier seeded nothing; the cold merge reproduces
    // the exact same record.
    assert_same_record(&first.outcome, &second.outcome);
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.memo.corrupt_evictions, 1, "surfaced in the snapshot");
}

#[test]
fn damaged_frames_get_typed_errors_and_the_connection_survives() {
    let (addr, engine, _plan, server) = start_chaos_server(
        FaultPlan::new(),
        ServeOptions {
            frame_check: true,
            ..ServeOptions::default()
        },
    );
    let mut conn = connect(addr);

    // An unframed client on the same socket is untouched by the option.
    let plain = roundtrip(&mut conn, &healthy_net_request("plain"));
    assert!(plain.contains("\"outcome\":\"optimized\""), "{plain}");

    // A framed request gets a framed response with the same schema.
    let ok = framed_roundtrip(
        &mut conn,
        &encode_frame(healthy_net_request("framed").as_bytes()),
    );
    assert!(
        ok.contains("\"net\":\"framed\"") && ok.contains("\"outcome\":\"optimized\""),
        "{ok}"
    );

    // Flip one payload byte: typed bad_frame error, connection lives.
    let mut bent = encode_frame(healthy_net_request("bent").as_bytes());
    let n = bent.len();
    bent[n - 3] ^= 0x01;
    let err = framed_roundtrip(&mut conn, &bent);
    assert!(err.contains("\"error\":\"bad_frame\""), "{err}");

    // Tear a frame in half: typed bad_frame error again.
    let torn = encode_frame(healthy_net_request("torn").as_bytes());
    let err = framed_roundtrip(&mut conn, &torn[..torn.len() / 2]);
    assert!(err.contains("\"error\":\"bad_frame\""), "{err}");

    assert_eq!(engine.metrics_snapshot().bad_frames, 2);
    // The connection survived both and the stats line reports the damage.
    let stats = framed_roundtrip(&mut conn, &encode_frame(b"{\"cmd\":\"stats\"}"));
    assert!(stats.contains("\"bad_frames\":2"), "{stats}");
    let ack = roundtrip(&mut conn, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("accept loop exits");
}

#[test]
fn truncate_frame_fault_is_caught_by_the_length_check_and_typed() {
    let (addr, engine, plan, server) = start_chaos_server(
        FaultPlan::new().on_nth(Seam::Decode, 1, FaultAction::TruncateFrame),
        ServeOptions {
            frame_check: true,
            ..ServeOptions::default()
        },
    );
    let mut conn = connect(addr);

    // The injected fault tears the first framed request mid-line, as a
    // half-written proxy or kernel buffer would.
    let err = framed_roundtrip(
        &mut conn,
        &encode_frame(healthy_net_request("torn").as_bytes()),
    );
    assert!(err.contains("\"error\":\"bad_frame\""), "{err}");
    assert_eq!(plan.armed(Seam::Decode), 1);

    // The retry goes through untouched on the same connection.
    let ok = framed_roundtrip(
        &mut conn,
        &encode_frame(healthy_net_request("retry").as_bytes()),
    );
    assert!(ok.contains("\"outcome\":\"optimized\""), "{ok}");
    assert_eq!(engine.metrics_snapshot().bad_frames, 1);

    let ack = roundtrip(&mut conn, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("accept loop exits");
}

#[test]
fn verify_sampling_audits_hits_and_misses_with_zero_failures() {
    let engine = Engine::new(
        pipeline_config(),
        EngineOptions {
            jobs: 1,
            verify_sample_rate: 1.0,
            ..EngineOptions::default()
        },
    );
    let key = engine.key_for("audited", "body");
    let keyed = || Job {
        input: healthy("audited"),
        cache_key: Some(key),
    };

    let first = engine.optimize(keyed());
    assert_eq!(first.cache, CacheStatus::Miss);
    let second = engine.optimize(keyed());
    assert_eq!(second.cache, CacheStatus::Hit, "hits are sampled too");

    wait_for("both responses to be audited", || {
        engine.metrics_snapshot().verify_samples == 2
    });
    assert_eq!(
        engine.metrics_snapshot().verify_failures,
        0,
        "honest records pass the audit"
    );
    // Nothing was invalidated: the entry still serves.
    assert_eq!(engine.optimize(keyed()).cache, CacheStatus::Hit);
}

#[test]
fn rehashed_corruption_slips_verify_on_hit_but_the_sampled_audit_catches_it() {
    let engine = Engine::new(
        pipeline_config(),
        EngineOptions {
            jobs: 1,
            verify_sample_rate: 1.0,
            ..EngineOptions::default()
        },
    );
    let key = engine.key_for("sneaky", "body");
    let keyed = || Job {
        input: healthy("sneaky"),
        cache_key: Some(key),
    };

    let honest = engine.optimize(keyed());
    assert_eq!(honest.cache, CacheStatus::Miss);
    wait_for("the honest record to be audited", || {
        engine.metrics_snapshot().verify_samples == 1
    });

    // An adversarial corruption that also recomputes the stored
    // checksum: verify-on-hit is blind to it by construction.
    assert!(
        engine.corrupt_cache_entry(key, true),
        "entry found and doctored"
    );
    let lied = engine.optimize(keyed());
    assert_eq!(lied.cache, CacheStatus::Hit, "the checksum matched the lie");
    assert_ne!(
        lied.outcome.slack.map(f64::to_bits),
        honest.outcome.slack.map(f64::to_bits),
        "the served record really was doctored"
    );

    // The off-path audit re-derives the summaries from the input,
    // catches the disagreement, and invalidates the entry.
    wait_for("the audit to flag the doctored record", || {
        engine.metrics_snapshot().verify_failures == 1
    });
    assert_eq!(
        engine.metrics_snapshot().cache.corrupt_evictions,
        0,
        "verify-on-hit never fired; only the audit saw through it"
    );

    // The poison is gone — the next request recomputes honestly.
    let healed = engine.optimize(keyed());
    assert_eq!(healed.cache, CacheStatus::Miss);
    assert_same_record(&honest.outcome, &healed.outcome);
}
