//! Fuzzing the service's flat-string JSON request parser and the
//! one-line-response protocol contract.
//!
//! Three parser generators — raw byte soup, escape soup (backslash/quote/
//! brace/surrogate fragments), and truncation of valid requests — assert
//! the parser never panics, plus a serialize→parse round-trip for
//! arbitrary key/value pairs. A fourth, TCP-level property drives random
//! request lines at a live server and asserts the protocol invariant:
//! every non-empty request line gets exactly one response line, whatever
//! the bytes were.

use buffopt_server::service::parse_request_line;
use proptest::prelude::*;

/// Serializes a string the way the protocol's own responses do.
fn escape_json(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(0u8..=255u8, 0..256)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        // Whatever comes back, it came back — no panic, no hang.
        let _ = parse_request_line(&line);
    }
}

/// A fragment alphabet tuned to hurt an escape-handling parser: lone
/// backslashes, quote boundaries, surrogate halves, braces, and colons.
fn arb_fragment() -> impl Strategy<Value = String> {
    (0u8..12).prop_map(|i| {
        match i {
            0 => "\\",
            1 => "\"",
            2 => "\\\"",
            3 => "\\u",
            4 => "\\ud800",
            5 => "\\udc00",
            6 => "\\u0041",
            7 => "{",
            8 => "}",
            9 => ":",
            10 => ",",
            _ => "key",
        }
        .to_string()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn escape_soup_never_panics(frags in prop::collection::vec(arb_fragment(), 0..32)) {
        let line = frags.concat();
        let _ = parse_request_line(&line);
    }
}

/// One arbitrary key/value pair over a compact but spicy char alphabet
/// (quotes, backslashes, control chars, astral-plane text).
fn arb_pair() -> impl Strategy<Value = (String, String)> {
    let arb_text = || {
        prop::collection::vec(0u8..10, 0..8).prop_map(|picks| {
            picks
                .into_iter()
                .map(|i| match i {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => '\t',
                    4 => '\u{0007}',
                    5 => 'µ',
                    6 => '😀',
                    7 => ' ',
                    8 => 'a',
                    _ => 'Z',
                })
                .collect::<String>()
        })
    };
    (arb_text(), arb_text())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// A request serialized with the protocol's own escaping parses back
    /// to exactly the pairs that went in.
    #[test]
    fn serialize_parse_round_trip(pairs in prop::collection::vec(arb_pair(), 0..6)) {
        let mut line = String::from("{");
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
        }
        line.push('}');
        let parsed = parse_request_line(&line);
        prop_assert_eq!(parsed.as_deref(), Ok(&pairs[..]), "line was {:?}", line);
    }

    /// Chopping a valid request anywhere never panics; the truncation is
    /// either rejected or (only when the cut removed zero-or-whole pairs
    /// plus the closing brace) parses to a prefix.
    #[test]
    fn truncations_never_panic(
        pairs in prop::collection::vec(arb_pair(), 1..4),
        cut in 0usize..200,
    ) {
        let mut line = String::from("{");
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
        }
        line.push('}');
        let chars: Vec<char> = line.chars().collect();
        let cut = cut % (chars.len() + 1);
        let truncated: String = chars[..cut].iter().collect();
        let _ = parse_request_line(&truncated);
    }
}

mod protocol {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    use buffopt_pipeline::{NetInput, PipelineConfig};
    use buffopt_server::{serve, Engine, EngineOptions, NetDecoder};
    use proptest::prelude::*;

    fn decoder() -> NetDecoder {
        Arc::new(
            |name: &str, body: &str| match buffopt_netlist::parse(body) {
                Ok(net) => NetInput::Parsed {
                    name: name.to_string(),
                    tree: net.tree,
                    scenario: net.scenario,
                },
                Err(e) => NetInput::Failed {
                    name: name.to_string(),
                    error: e.to_string(),
                },
            },
        )
    }

    /// One random request line: printable soup with protocol punctuation
    /// mixed in, newlines excluded by construction.
    fn arb_request_line() -> impl Strategy<Value = String> {
        prop::collection::vec(0u8..14, 1..64).prop_map(|picks| {
            let line: String = picks
                .into_iter()
                .map(|i| match i {
                    0 => '{',
                    1 => '}',
                    2 => '"',
                    3 => '\\',
                    4 => ':',
                    5 => ',',
                    6 => 'c',
                    7 => 'm',
                    8 => 'd',
                    9 => 'n',
                    10 => 'e',
                    11 => 't',
                    12 => ' ',
                    _ => '1',
                })
                .collect();
            // `shutdown` cannot be assembled from this alphabet, but keep
            // the guard explicit in case the alphabet grows.
            debug_assert!(!line.contains("shutdown"));
            if line.trim().is_empty() {
                "x".to_string()
            } else {
                line
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Protocol contract under fire: every non-empty request line —
        /// garbage or not — gets exactly one response line, and the
        /// connection stays usable for the next request.
        #[test]
        fn every_request_line_gets_exactly_one_response_line(
            lines in prop::collection::vec(arb_request_line(), 1..8),
        ) {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let engine = Arc::new(Engine::new(
                PipelineConfig::new(buffopt_buffers::catalog::single_buffer()),
                EngineOptions { jobs: 1, ..EngineOptions::default() },
            ));
            let server = std::thread::spawn(move || {
                serve(listener, engine, decoder()).expect("serve runs");
            });

            let stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            for line in &lines {
                (&stream)
                    .write_all(format!("{line}\n").as_bytes())
                    .expect("send");
                let mut resp = String::new();
                reader.read_line(&mut resp).expect("response");
                prop_assert!(
                    resp.ends_with('\n'),
                    "request {:?} got no complete response (connection died?)",
                    line
                );
                prop_assert!(
                    !resp.trim_end_matches('\n').contains('\n'),
                    "response is one line"
                );
                prop_assert!(
                    resp.trim().starts_with('{') && resp.trim().ends_with('}'),
                    "response {:?} is a JSON object",
                    resp
                );
            }
            (&stream)
                .write_all(b"{\"cmd\":\"shutdown\"}\n")
                .expect("send shutdown");
            server.join().expect("accept loop exits");
        }
    }
}
