//! The engine's headline guarantees, end to end: a parallel batch over
//! healthy, panicking, and budget-exploding nets yields exactly one
//! record per input, in input order, byte-identical to a serial run
//! modulo measured wall times; and repeated nets are served from the
//! cache as identical records.

use std::time::Duration;

use buffopt_buffers::catalog;
use buffopt_pipeline::{NetInput, Outcome, PipelineConfig};
use buffopt_server::{CacheStatus, Engine, EngineOptions, Job};
use buffopt_workload::{adversarial, estimation_scenario, WorkloadConfig};

fn healthy(name: &str, cfg: &WorkloadConfig) -> NetInput {
    let (tree, scenario) = adversarial::valid_net(cfg);
    NetInput::Parsed {
        name: name.to_string(),
        tree,
        scenario,
    }
}

/// A net whose optimization *panics*: the scenario was built for a
/// different (smaller) tree, so `for_segmented` indexes out of bounds.
/// The pipeline's guards must turn that into a record, and the pool must
/// not lose the slot.
fn panicking(name: &str, cfg: &WorkloadConfig) -> NetInput {
    let (big_tree, _) = adversarial::budget_busting_net(cfg, 10);
    let (small_tree, _) = adversarial::valid_net(cfg);
    let wrong_scenario = estimation_scenario(&small_tree, cfg);
    assert!(
        wrong_scenario.len() < big_tree.len(),
        "the mismatch must index out of bounds"
    );
    NetInput::Parsed {
        name: name.to_string(),
        tree: big_tree,
        scenario: wrong_scenario,
    }
}

/// A net that explodes every DP budget (caught by `max_tree_nodes`).
fn buster(name: &str, cfg: &WorkloadConfig) -> NetInput {
    let (tree, scenario) = adversarial::budget_busting_net(cfg, 60);
    NetInput::Parsed {
        name: name.to_string(),
        tree,
        scenario,
    }
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        max_tree_nodes: Some(70),
        time_limit: Some(Duration::from_secs(60)),
        ..PipelineConfig::new(catalog::ibm_like())
    }
}

/// Replaces every measured `"wall_ms":<n>` with a fixed placeholder so
/// two runs of the same batch can be compared byte-for-byte.
fn normalize_wall(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    let mut rest = jsonl;
    while let Some(at) = rest.find("\"wall_ms\":") {
        let after = at + "\"wall_ms\":".len();
        out.push_str(&rest[..after]);
        out.push('X');
        // The value is a float, possibly in scientific notation.
        rest = rest[after..]
            .trim_start_matches(|c: char| c.is_ascii_digit() || matches!(c, '.' | 'e' | '-' | '+'));
    }
    out.push_str(rest);
    out
}

fn mixed_batch(n_healthy: usize) -> Vec<Job> {
    let cfg = WorkloadConfig::default();
    let mut inputs = vec![panicking("panics", &cfg)];
    for i in 0..n_healthy {
        inputs.push(healthy(&format!("ok{i}"), &cfg));
    }
    inputs.push(buster("buster", &cfg));
    inputs
        .into_iter()
        .map(|input| Job {
            input,
            cache_key: None,
        })
        .collect()
}

#[test]
fn mixed_batch_yields_one_record_per_input_in_order() {
    const HEALTHY: usize = 8;
    let engine = Engine::new(
        pipeline_config(),
        EngineOptions {
            jobs: 4,
            ..EngineOptions::default()
        },
    );
    let report = engine.run_jobs(mixed_batch(HEALTHY));

    assert_eq!(report.outcomes.len(), HEALTHY + 2, "no record lost");
    let names: Vec<&str> = report.outcomes.iter().map(|o| o.name.as_str()).collect();
    let mut expected = vec!["panics".to_string()];
    expected.extend((0..HEALTHY).map(|i| format!("ok{i}")));
    expected.push("buster".to_string());
    assert_eq!(names, expected, "records come back in input order");

    // The panicking net got a record, not a hung slot, and did not take
    // the healthy nets down with it.
    let panicked = &report.outcomes[0];
    assert_ne!(panicked.outcome, Outcome::Optimized);
    for o in &report.outcomes[1..=HEALTHY] {
        assert_eq!(o.outcome, Outcome::Optimized, "{} suffered", o.name);
    }
    let buster = report.outcomes.last().unwrap();
    assert!(
        buster
            .attempts
            .iter()
            .any(|a| a.error.contains("tree nodes")),
        "budget rejection recorded: {:?}",
        buster.attempts
    );
    // Exit-code semantics are the pipeline's own.
    assert_eq!(report.exit_code(), 3);
}

#[test]
fn parallel_report_matches_serial_modulo_wall_times() {
    const HEALTHY: usize = 6;
    let serial = Engine::new(
        pipeline_config(),
        EngineOptions {
            jobs: 1,
            cache_capacity: 0,
            ..EngineOptions::default()
        },
    );
    let parallel = Engine::new(
        pipeline_config(),
        EngineOptions {
            jobs: 4,
            cache_capacity: 0,
            ..EngineOptions::default()
        },
    );
    let a = serial.run_jobs(mixed_batch(HEALTHY));
    let b = parallel.run_jobs(mixed_batch(HEALTHY));
    assert_eq!(
        normalize_wall(&a.to_jsonl()),
        normalize_wall(&b.to_jsonl()),
        "--jobs must not change the report"
    );
    assert_eq!(a.exit_code(), b.exit_code());
}

#[test]
fn repeated_nets_hit_the_cache_with_identical_records() {
    let cfg = WorkloadConfig::default();
    let engine = Engine::new(
        pipeline_config(),
        EngineOptions {
            jobs: 2,
            ..EngineOptions::default()
        },
    );
    let body = "synthetic-net-body";
    let job = || Job {
        input: healthy("repeat", &cfg),
        cache_key: Some(engine.key_for("repeat", body)),
    };

    let first = engine.optimize(job());
    assert_eq!(first.cache, CacheStatus::Miss);
    let second = engine.optimize(job());
    assert_eq!(second.cache, CacheStatus::Hit);
    assert_eq!(
        first.outcome.to_json(),
        second.outcome.to_json(),
        "a hit returns the record byte-for-byte, wall time included"
    );
    assert_eq!(
        first.worker, second.worker,
        "hit reports the original worker"
    );

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.requests, 2);
    assert_eq!(snap.cache.hits, 1);
    assert_eq!(snap.cache.misses, 1);
    assert_eq!(
        snap.outcomes.iter().sum::<u64>(),
        1,
        "cache hits are not recorded as fresh outcomes"
    );
}

#[test]
fn cached_batch_rerun_is_identical_and_all_hits() {
    let cfg = WorkloadConfig::default();
    let engine = Engine::new(pipeline_config(), EngineOptions::default());
    let batch = || -> Vec<Job> {
        (0..4)
            .map(|i| {
                let name = format!("net{i}");
                Job {
                    cache_key: Some(engine.key_for(&name, "same-content")),
                    input: healthy(&name, &cfg),
                }
            })
            .collect()
    };
    let first = engine.run_jobs(batch());
    let second = engine.run_jobs(batch());
    assert_eq!(
        first.to_jsonl(),
        second.to_jsonl(),
        "hits replay the stored records, wall times included"
    );
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.cache.misses, 4);
    assert_eq!(snap.cache.hits, 4);
}
