//! End-to-end exercise of the newline-JSON TCP service: concurrent
//! clients, cache hits across connections, stats, malformed requests,
//! and orderly shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use buffopt_buffers::catalog;
use buffopt_netlist::{parse, write as write_net, ParsedNet};
use buffopt_pipeline::{NetInput, PipelineConfig};
use buffopt_server::{serve, Engine, EngineOptions, NetDecoder};
use buffopt_workload::{adversarial, WorkloadConfig};

/// The text of a healthy net, as a client would hold it.
fn healthy_net_text() -> String {
    let (tree, scenario) = adversarial::valid_net(&WorkloadConfig::default());
    let node_names = (0..tree.len()).map(|_| None).collect();
    write_net(&ParsedNet {
        name: None,
        tree,
        scenario,
        node_names,
    })
}

fn decoder() -> NetDecoder {
    Arc::new(|name: &str, body: &str| match parse(body) {
        Ok(net) => NetInput::Parsed {
            name: name.to_string(),
            tree: net.tree,
            scenario: net.scenario,
        },
        Err(e) => NetInput::Failed {
            name: name.to_string(),
            error: e.to_string(),
        },
    })
}

fn start_server(jobs: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let engine = Arc::new(Engine::new(
        PipelineConfig::new(catalog::ibm_like()),
        EngineOptions {
            jobs,
            ..EngineOptions::default()
        },
    ));
    let handle = std::thread::spawn(move || {
        serve(listener, engine, decoder()).expect("serve runs");
    });
    (addr, handle)
}

/// Sends one request line and reads one response line.
fn roundtrip(conn: &mut (BufReader<TcpStream>, TcpStream), request: &str) -> String {
    conn.1
        .write_all(format!("{request}\n").as_bytes())
        .expect("send");
    let mut line = String::new();
    conn.0.read_line(&mut line).expect("response");
    line.trim_end().to_string()
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    (BufReader::new(stream.try_clone().expect("clone")), stream)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[test]
fn concurrent_clients_get_correct_answers_and_cache_works() {
    let (addr, server) = start_server(4);
    let net = healthy_net_text();
    let escaped = json_escape(&net);

    // Several client threads, each asking for its own net id plus one
    // shared id — the shared one must be computed once and then hit.
    const CLIENTS: usize = 4;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let escaped = escaped.clone();
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                let own = roundtrip(
                    &mut conn,
                    &format!("{{\"id\":\"client{c}\",\"net\":\"{escaped}\"}}"),
                );
                let shared = roundtrip(
                    &mut conn,
                    &format!("{{\"cmd\":\"optimize\",\"id\":\"shared\",\"net\":\"{escaped}\"}}"),
                );
                (own, shared)
            })
        })
        .collect();
    let responses: Vec<(String, String)> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    for (c, (own, shared)) in responses.iter().enumerate() {
        assert!(
            own.contains(&format!("\"net\":\"client{c}\""))
                && own.contains("\"outcome\":\"optimized\""),
            "client {c} got someone else's answer: {own}"
        );
        assert!(own.contains("\"cache\":\"miss\""), "distinct ids never hit");
        assert!(
            shared.contains("\"net\":\"shared\"") && shared.contains("\"outcome\":\"optimized\""),
            "shared answer wrong: {shared}"
        );
    }
    let shared_hits = responses
        .iter()
        .filter(|(_, s)| s.contains("\"cache\":\"hit\""))
        .count();
    let shared_misses = responses
        .iter()
        .filter(|(_, s)| s.contains("\"cache\":\"miss\""))
        .count();
    assert_eq!(shared_hits + shared_misses, CLIENTS);
    assert!(shared_misses >= 1, "someone computed it first");
    // All hits replay the original record byte-for-byte.
    let hit_bodies: Vec<&str> = responses
        .iter()
        .filter(|(_, s)| s.contains("\"cache\":\"hit\""))
        .map(|(_, s)| s.as_str())
        .collect();
    for pair in hit_bodies.windows(2) {
        assert_eq!(pair[0], pair[1], "cache hits are identical");
    }

    let mut conn = connect(addr);

    // Malformed request lines get an error object, not a dropped
    // connection; an unparsable net gets a parse_error record.
    let bad = roundtrip(&mut conn, "not json at all");
    assert!(bad.starts_with("{\"error\":"), "got {bad}");
    let unparsable = roundtrip(
        &mut conn,
        &format!(
            "{{\"id\":\"broken\",\"net\":\"{}\"}}",
            json_escape(adversarial::malformed_net_text())
        ),
    );
    assert!(
        unparsable.contains("\"outcome\":\"parse_error\""),
        "got {unparsable}"
    );

    // Stats reflect everything served on this engine so far.
    let stats = roundtrip(&mut conn, "{\"cmd\":\"stats\"}");
    let expect_requests = 2 * CLIENTS + 1; // per-client pairs + the parse error
    assert!(
        stats.contains(&format!("\"requests\":{expect_requests}")),
        "got {stats}"
    );
    assert!(stats.contains("\"workers\":4"), "got {stats}");
    assert!(
        stats.contains(&format!("\"hits\":{shared_hits}")),
        "got {stats}"
    );

    // Shutdown acknowledges, then the accept loop exits.
    let ack = roundtrip(&mut conn, "{\"cmd\":\"shutdown\"}");
    assert_eq!(ack, "{\"ok\":\"shutdown\"}");
    server.join().expect("accept loop exits cleanly");
}

#[test]
fn requests_without_a_net_field_are_rejected() {
    let (addr, server) = start_server(1);
    let mut conn = connect(addr);
    let r = roundtrip(&mut conn, "{\"cmd\":\"optimize\",\"id\":\"x\"}");
    assert!(r.contains("\"error\""), "got {r}");
    let r = roundtrip(&mut conn, "{\"cmd\":\"bogus\"}");
    assert!(r.contains("unknown cmd"), "got {r}");
    roundtrip(&mut conn, "{\"cmd\":\"shutdown\"}");
    server.join().expect("accept loop exits");
}
